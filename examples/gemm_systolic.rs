//! The GEMM multiplier grid (paper §7.3 and Table 5): nested `unroll_for`
//! builds an N×N array of processing elements, each multiplying and
//! accumulating every cycle, fed from banked buffers.
//!
//! Run with: `cargo run --release --example gemm_systolic`
//!
//! Pass `--vcd=PATH` to additionally run the generated RTL in the simulator
//! and dump a VCD waveform of the whole run (viewable in GTKWave).

use hir_suite::hir::interp::{ArgValue, Interpreter};
use hir_suite::kernels::gemm;

fn main() {
    let n = 8u64;
    let nn = (n * n) as usize;
    let a = hir_suite::kernels::workload::random_bounded(1, nn, 100);
    let b = hir_suite::kernels::workload::random_bounded(2, nn, 100);

    let module = gemm::hir_gemm(n, 32);
    let mut diags = hir_suite::ir::DiagnosticEngine::new();
    hir_suite::hir_verify::verify_schedule(&module, &mut diags).expect("verified");

    let r = Interpreter::new(&module)
        .run(
            gemm::FUNC,
            &[
                ArgValue::tensor_from(&a),
                ArgValue::tensor_from(&b),
                ArgValue::uninit_tensor(nn),
            ],
        )
        .expect("simulate");

    let expect = gemm::reference(n, &a, &b);
    for i in 0..nn {
        assert_eq!(r.tensors[&2][i], Some(expect[i]), "C[{i}]");
    }

    println!("{n}x{n} GEMM:");
    println!("  latency        : {} cycles", r.cycles);
    println!(
        "  load phase     : {} cycles (one element of A and B per cycle)",
        n * n
    );
    println!(
        "  compute phase  : {} cycles ({}x{} PEs run every cycle)",
        n, n, n
    );
    println!("  writeback      : {} cycles", n * n);
    let ideal = n * n + n + n * n;
    println!("  (ideal {ideal}; overhead is loop start/drain)");

    // Resource shape: one multiplier per PE; DSP count scales as N^2.
    let mut m2 = gemm::hir_gemm(n, 32);
    let (design, _) = hir_suite::kernels::compile_hir(&mut m2, true).expect("compile");
    let r = hir_suite::synth::estimate_design(
        &design,
        &hir_suite::kernels::hir_top(gemm::FUNC),
        &hir_suite::synth::CostModel::default(),
    );
    println!("\nestimated resources: {r}");
    println!(
        "(32x32-bit multiplies cost 3 DSP blocks each: {} PEs -> {} DSPs)",
        n * n,
        r.dsp
    );

    // Waveform dump: re-run the same workload through the RTL simulator.
    if let Some(path) =
        std::env::args().find_map(|arg| arg.strip_prefix("--vcd=").map(std::path::PathBuf::from))
    {
        use hir_suite::hir::types::MemrefInfo;
        use hir_suite::hir_codegen::testbench::to_bank_major;
        use hir_suite::hls::HarnessArg;
        let func = hir_suite::kernels::find_func(&m2, gemm::FUNC);
        let tys = func.arg_types(&m2);
        let mem = |data: &[i128], ty: &hir_suite::ir::Type| {
            let info = MemrefInfo::from_type(ty).expect("gemm args are memrefs");
            HarnessArg::Mem(to_bank_major(&info, data))
        };
        let sim = hir_suite::hls::simulate_with_vcd(
            &m2,
            &design,
            gemm::FUNC,
            &[
                mem(&a, &tys[0]),
                mem(&b, &tys[1]),
                mem(&vec![0; nn], &tys[2]),
            ],
            100_000,
            Some(&path),
        )
        .expect("RTL simulation");
        println!(
            "\nVCD waveform of the RTL run written to {} ({} cycles)",
            path.display(),
            sim.cycles
        );
    }
}
