//! Quickstart: build the paper's Listing 1 (matrix transpose) in HIR,
//! verify its schedule, generate Verilog, and validate the hardware by
//! simulation against the cycle-accurate interpreter.
//!
//! Run with: `cargo run --example quickstart`

use hir_suite::hir::interp::{ArgValue, Interpreter};
use hir_suite::hir::types::{MemKind, MemrefInfo, Port};
use hir_suite::hir::HirBuilder;
use hir_suite::hir_codegen::testbench::{Harness, HarnessArg};
use hir_suite::ir::Type;

fn main() {
    let n = 8u64;

    // ---- 1. Describe the design: the algorithm AND its schedule. -------
    let mut hb = HirBuilder::new();
    let a = MemrefInfo::packed(&[n, n], Type::int(32), Port::Read, MemKind::BlockRam);
    let c = a.with_port(Port::Write);
    let f = hb.func(
        "transpose",
        &[("Ai", a.to_type()), ("Co", c.to_type())],
        &[],
    );
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (c0, cn, c1) = (hb.const_val(0), hb.const_val(n as i64), hb.const_val(1));

    // Outer loop: sequential (next iteration after the inner loop's %tf).
    let i_loop = hb.for_loop(c0, cn, c1, t, 1, Type::int(32));
    hb.in_loop(i_loop, |hb, i, ti| {
        // Inner loop: pipelined at II=1 (the yield fires every cycle).
        let j_loop = hb.for_loop(c0, cn, c1, ti, 1, Type::int(32));
        hb.in_loop(j_loop, |hb, j, tj| {
            let v = hb.mem_read(args[0], &[i, j], tj, 0); // data valid at tj+1
            let j1 = hb.delay(j, 1, tj, 0); // align the address with the data
            hb.mem_write(v, args[1], &[j1, i], tj, 1);
            hb.yield_at(tj, 1);
        });
        let tf = j_loop.result_time(hb.module());
        hb.yield_at(tf, 1);
    });
    hb.return_(&[]);
    let module = hb.finish();

    // Paper Table 2: the dialect's operation inventory, straight from the
    // registry.
    println!("=== The HIR dialect (paper Table 2) ===\n");
    let registry = hir_suite::hir::hir_registry();
    for spec in registry.all_specs() {
        println!("  {:<18} {}", spec.name(), spec.summary());
    }
    println!();

    println!("=== The design in HIR (paper-style syntax) ===\n");
    println!("{}", hir_suite::hir::pretty_module(&module));

    // ---- 2. Verify: structure + schedule (paper §6.1). -----------------
    let mut diags = hir_suite::ir::DiagnosticEngine::new();
    hir_suite::ir::verify_module(&module, &hir_suite::hir::hir_registry(), &mut diags)
        .expect("structural verification");
    hir_suite::hir_verify::verify_schedule(&module, &mut diags).expect("schedule verification");
    println!("=== Schedule verified: every operand is consumed exactly when valid ===\n");

    // ---- 3. Generate synthesizable Verilog (paper §4.6). ---------------
    let design = hir_suite::hir_codegen::generate_design(
        &module,
        &hir_suite::hir_codegen::CodegenOptions::default(),
    )
    .expect("codegen");
    let text = hir_suite::verilog::print_design(&design);
    println!(
        "=== Generated Verilog ({} lines; first 25 shown) ===\n",
        text.lines().count()
    );
    for line in text.lines().take(25) {
        println!("{line}");
    }
    println!("...\n");

    // ---- 4. Validate: interpreter vs RTL simulation vs reference. ------
    let input: Vec<i128> = (0..(n * n) as i128).collect();
    let interp = Interpreter::new(&module);
    let sim = interp
        .run(
            "transpose",
            &[
                ArgValue::tensor_from(&input),
                ArgValue::uninit_tensor((n * n) as usize),
            ],
        )
        .expect("interpreter run");

    let func = hir_suite::kernels::find_func(&module, "transpose");
    let mut harness = Harness::new(
        &design,
        &module,
        func,
        &[
            HarnessArg::mem_from(&input),
            HarnessArg::zero_mem((n * n) as usize),
        ],
    )
    .expect("harness");
    let rtl = harness.run(100_000).expect("RTL simulation");

    let mut ok = true;
    for i in 0..n as usize {
        for j in 0..n as usize {
            let expect = input[i * n as usize + j];
            ok &= sim.tensors[&1][j * n as usize + i] == Some(expect);
            ok &= rtl.mems[&1][j * n as usize + i] == expect;
        }
    }
    assert!(ok, "outputs disagree");
    println!("=== Validation ===");
    println!("interpreter latency : {} cycles", sim.cycles);
    println!("RTL sim latency     : {} cycles", rtl.cycles);
    println!("both outputs match the software reference — the inner loop is");
    println!("pipelined (one element per cycle), the outer loop sequential.");

    // ---- 5. Estimate FPGA resources (the Vivado-synthesis stand-in). ---
    let r = hir_suite::synth::estimate_design(
        &design,
        "hir_transpose",
        &hir_suite::synth::CostModel::default(),
    );
    println!("\n=== Estimated resources === \n{r}");
}
