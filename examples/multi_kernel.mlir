// Multi-kernel module: four functions with cross-function calls, used by
// the CI determinism job to check that hirc --threads=1 and --threads=4
// produce byte-identical IR and diagnostics, and by the fuzz corpus to
// seed multi-function mutants.
"hir.func"() {arg_types = [i32, i32], external = unit, result_delays = [2 : index], result_types = [i32], sym_name = "mult"} : () -> ()
"hir.func"() ({
^bb(%0: i32, %1: i32, %2: i32, %3: !hir.time):
  %4 = "hir.call"(%0, %1, %3) {callee = @mult, offset = 0 : index} : (i32, i32, !hir.time) -> (i32)
  %5 = "hir.delay"(%2, %3) {by = 2 : index, offset = 0 : index} : (i32, !hir.time) -> (i32)
  %6 = "hir.add"(%4, %5) : (i32, i32) -> (i32)
  "hir.return"(%6) : (i32) -> ()
}) {arg_names = ["a", "b", "c"], result_delays = [2 : index], sym_name = "mac0"} : () -> ()
"hir.func"() ({
^bb(%0: i32, %1: i32, %2: i32, %3: !hir.time):
  %4 = "hir.call"(%0, %1, %2, %3) {callee = @mac0, offset = 0 : index} : (i32, i32, i32, !hir.time) -> (i32)
  %5 = "hir.delay"(%2, %3) {by = 2 : index, offset = 0 : index} : (i32, !hir.time) -> (i32)
  %6 = "hir.add"(%4, %5) : (i32, i32) -> (i32)
  "hir.return"(%6) : (i32) -> ()
}) {arg_names = ["a", "b", "c"], result_delays = [2 : index], sym_name = "mac1"} : () -> ()
"hir.func"() ({
^bb(%0: i32, %1: i32, %2: i32, %3: !hir.time):
  %4 = "hir.call"(%1, %0, %3) {callee = @mult, offset = 0 : index} : (i32, i32, !hir.time) -> (i32)
  %5 = "hir.delay"(%0, %3) {by = 2 : index, offset = 0 : index} : (i32, !hir.time) -> (i32)
  %6 = "hir.add"(%4, %5) : (i32, i32) -> (i32)
  "hir.return"(%6) : (i32) -> ()
}) {arg_names = ["a", "b", "c"], result_delays = [2 : index], sym_name = "mac2"} : () -> ()
