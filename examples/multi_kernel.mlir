// Multi-kernel module: five functions with cross-function calls, used by
// the CI determinism job to check that hirc --threads=1 and --threads=4
// produce byte-identical IR and diagnostics, and by the fuzz corpus to
// seed multi-function mutants. The trailing @alu function is deliberate
// remark fodder: it folds (3*4), strength-reduces (x*12), misses (x*y),
// and CSEs two identical adds, so --remarks output exercises every kind.
"hir.func"() {arg_types = [i32, i32], external = unit, result_delays = [2 : index], result_types = [i32], sym_name = "mult"} : () -> ()
"hir.func"() ({
^bb(%0: i32, %1: i32, %2: i32, %3: !hir.time):
  %4 = "hir.call"(%0, %1, %3) {callee = @mult, offset = 0 : index} : (i32, i32, !hir.time) -> (i32)
  %5 = "hir.delay"(%2, %3) {by = 2 : index, offset = 0 : index} : (i32, !hir.time) -> (i32)
  %6 = "hir.add"(%4, %5) : (i32, i32) -> (i32)
  "hir.return"(%6) : (i32) -> ()
}) {arg_names = ["a", "b", "c"], result_delays = [2 : index], sym_name = "mac0"} : () -> ()
"hir.func"() ({
^bb(%0: i32, %1: i32, %2: i32, %3: !hir.time):
  %4 = "hir.call"(%0, %1, %2, %3) {callee = @mac0, offset = 0 : index} : (i32, i32, i32, !hir.time) -> (i32)
  %5 = "hir.delay"(%2, %3) {by = 2 : index, offset = 0 : index} : (i32, !hir.time) -> (i32)
  %6 = "hir.add"(%4, %5) : (i32, i32) -> (i32)
  "hir.return"(%6) : (i32) -> ()
}) {arg_names = ["a", "b", "c"], result_delays = [2 : index], sym_name = "mac1"} : () -> ()
"hir.func"() ({
^bb(%0: i32, %1: i32, %2: i32, %3: !hir.time):
  %4 = "hir.call"(%1, %0, %3) {callee = @mult, offset = 0 : index} : (i32, i32, !hir.time) -> (i32)
  %5 = "hir.delay"(%0, %3) {by = 2 : index, offset = 0 : index} : (i32, !hir.time) -> (i32)
  %6 = "hir.add"(%4, %5) : (i32, i32) -> (i32)
  "hir.return"(%6) : (i32) -> ()
}) {arg_names = ["a", "b", "c"], result_delays = [2 : index], sym_name = "mac2"} : () -> ()
"hir.func"() ({
^bb(%0: i32, %1: i32, %2: !hir.time):
  %3 = "hir.constant"() {value = 3 : index} : () -> (!hir.const)
  %4 = "hir.constant"() {value = 4 : index} : () -> (!hir.const)
  %5 = "hir.mult"(%3, %4) : (!hir.const, !hir.const) -> (!hir.const)
  %6 = "hir.mult"(%0, %5) : (i32, !hir.const) -> (i32)
  %7 = "hir.mult"(%0, %1) : (i32, i32) -> (i32)
  %8 = "hir.add"(%6, %7) : (i32, i32) -> (i32)
  %9 = "hir.add"(%6, %7) : (i32, i32) -> (i32)
  %10 = "hir.add"(%8, %9) : (i32, i32) -> (i32)
  "hir.return"(%10) : (i32) -> ()
}) {arg_names = ["x", "y"], result_delays = [0 : index], sym_name = "alu"} : () -> ()
