//! A miniature DSL frontend targeting HIR (the paper's §1/§5.2 thesis):
//! a filter designer writes only the taps; the generator emits a verified,
//! fully pipelined FIR filter whose schedule and hardware follow from the
//! coefficients — including per-coefficient strength reduction.
//!
//! Run with: `cargo run --example fir_dsl`

use hir_suite::hir::interp::{ArgValue, Interpreter};
use hir_suite::kernels::fir;

fn main() {
    let n = 48u64;
    let x: Vec<i128> = (0..n as i128)
        .map(|v| if v % 8 < 4 { 100 } else { -100 })
        .collect();

    for (name, taps) in [
        ("moving average (4)", vec![1i64, 1, 1, 1]),
        ("binomial smoother", vec![1, 4, 6, 4, 1]),
        ("edge detector", vec![1, 0, -1]),
    ] {
        let module = fir::hir_fir(n, &taps, 32);
        let mut diags = hir_suite::ir::DiagnosticEngine::new();
        hir_suite::hir_verify::verify_schedule(&module, &mut diags).expect("generated & verified");

        let r = Interpreter::new(&module)
            .run(
                fir::FUNC,
                &[
                    ArgValue::tensor_from(&x),
                    ArgValue::uninit_tensor(n as usize),
                ],
            )
            .expect("simulate");
        let y: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(y, fir::reference(&taps, &x));

        let mut m2 = fir::hir_fir(n, &taps, 32);
        let (design, _) = hir_suite::kernels::compile_hir(&mut m2, true).expect("compile");
        let res = hir_suite::synth::estimate_design(
            &design,
            &hir_suite::kernels::hir_top(fir::FUNC),
            &hir_suite::synth::CostModel::default(),
        );
        println!(
            "{name:<20} taps {:?}: latency {} cycles (II=1), {res}",
            taps, r.cycles
        );
    }

    println!("\nEach filter was generated, schedule-verified, optimized and estimated");
    println!("from nothing but its tap vector — the DSL-to-hardware path of the paper.");
}
