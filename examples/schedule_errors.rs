//! The paper's Figures 1 and 2: what the schedule verifier catches.
//!
//! Two classic hardware bugs that HDLs cannot express and HLS hides:
//!
//! 1. a pipelined loop whose memory write consumes the induction variable a
//!    cycle after it incremented (Figure 1);
//! 2. a pipeline imbalance after swapping a 2-stage multiplier for a
//!    3-stage one (Figure 2).
//!
//! Run with: `cargo run --example schedule_errors`

use hir_suite::kernels::errors;

fn main() {
    println!("==================== Figure 1: stale address ====================\n");
    let broken = errors::figure1_array_add(false);
    println!("{}", hir_suite::hir::pretty_module(&broken));
    let mut diags = hir_suite::ir::DiagnosticEngine::new();
    let result = hir_suite::hir_verify::verify_schedule(&broken, &mut diags);
    assert!(result.is_err(), "the verifier must reject this design");
    println!("--- verifier output ---\n\n{}", diags.render());

    println!("With the address delayed one cycle (matching the data), the");
    println!("same design verifies:\n");
    let fixed = errors::figure1_array_add(true);
    let mut diags = hir_suite::ir::DiagnosticEngine::new();
    hir_suite::hir_verify::verify_schedule(&fixed, &mut diags).expect("fixed design verifies");
    println!("  ok — no schedule errors\n");

    println!("================== Figure 2: pipeline imbalance ==================\n");
    let broken = errors::figure2_mac(3);
    println!("{}", hir_suite::hir::pretty_module(&broken));
    let mut diags = hir_suite::ir::DiagnosticEngine::new();
    let result = hir_suite::hir_verify::verify_schedule(&broken, &mut diags);
    assert!(result.is_err());
    println!("--- verifier output ---\n\n{}", diags.render());

    println!("Because HIR function signatures embed the delay of every result");
    println!("(the multiplier declares `i32 delay 3`), the compiler catches the");
    println!("imbalance statically. Matching the delay to the adder's other");
    println!("input fixes it:\n");
    let fixed = errors::figure2_mac(2);
    let mut diags = hir_suite::ir::DiagnosticEngine::new();
    hir_suite::hir_verify::verify_schedule(&fixed, &mut diags).expect("fixed design verifies");
    println!("  ok — adder inputs arrive in the same cycle");
}
