//! Loop pipelining and deterministic task-level parallelism (paper §7.1,
//! §7.2, Listings 2 & 3).
//!
//! Runs the 1-d stencil twice: first as a single pipelined stage, then as
//! two chained stages whose execution *overlaps* — the second stage starts
//! as soon as the first has produced enough data, with no FIFOs and no
//! handshaking (the lock-step, synchronization-free parallelism of §5.3).
//!
//! Run with: `cargo run --example stencil_pipeline`

use hir_suite::hir::interp::{ArgValue, Interpreter};
use hir_suite::kernels::stencil;

fn main() {
    let n = 64u64;
    let input: Vec<i128> = (0..n as i128).map(|x| (x * x + 7) % 101).collect();

    // ---- Single stage, pipelined at II=1 (Listing 2). -------------------
    let single = stencil::hir_stencil(n, 32);
    let mut diags = hir_suite::ir::DiagnosticEngine::new();
    hir_suite::hir_verify::verify_schedule(&single, &mut diags).expect("verified");
    let r1 = Interpreter::new(&single)
        .run(
            stencil::FUNC,
            &[
                ArgValue::tensor_from(&input),
                ArgValue::uninit_tensor(n as usize),
            ],
        )
        .expect("simulate");
    println!(
        "single stage : {} cycles for {n} elements (II=1: ~1 elem/cycle)",
        r1.cycles
    );

    let expect1 = stencil::reference(n, &input);
    for i in 0..n as usize {
        assert_eq!(r1.tensors[&1][i], Some(expect1[i]));
    }

    // ---- Two overlapped stages (Listing 3). ------------------------------
    let tp = stencil::hir_stencil_task_parallel(n, 32);
    let mut diags = hir_suite::ir::DiagnosticEngine::new();
    hir_suite::hir_verify::verify_schedule(&tp, &mut diags).expect("verified");
    let r2 = Interpreter::new(&tp)
        .run(
            "task_parallel",
            &[
                ArgValue::tensor_from(&input),
                ArgValue::uninit_tensor(n as usize),
            ],
        )
        .expect("simulate");
    println!(
        "two stages   : {} cycles (overlapped, not {} = 2x single)",
        r2.cycles,
        2 * r1.cycles
    );

    let expect2 = stencil::reference(n, &expect1);
    for i in 0..n as usize {
        assert_eq!(r2.tensors[&1][i], Some(expect2[i]), "element {i}");
    }

    assert!(
        r2.cycles < r1.cycles + 24,
        "the stages must overlap: {} vs single {}",
        r2.cycles,
        r1.cycles
    );
    println!("\nStage B started only 8 cycles after stage A — both then run in");
    println!("lock-step, one element per cycle, with zero synchronization logic:");
    println!("the explicit schedules prove the producer is always ahead.");
}
