"hir.func"() ({
^bb(%0: !hir.memref<[16 : index, 16 : index], i32, "r", "bram">, %1: !hir.memref<[16 : index, 16 : index], i32, "w", "bram">, %2: !hir.time):
  %3 = "hir.constant"() {value = 0 : index} : () -> (!hir.const)
  %4 = "hir.constant"() {value = 1 : index} : () -> (!hir.const)
  %5 = "hir.constant"() {value = 16 : index} : () -> (!hir.const)
  %6 = "hir.for"(%3, %5, %4, %2) ({
  ^bb(%7: i32, %8: !hir.time):
    %9 = "hir.for"(%3, %5, %4, %8) ({
    ^bb(%10: i32, %11: !hir.time):
      %12 = "hir.mem_read"(%0, %7, %10, %11) {offset = 0 : index} : (!hir.memref<[16 : index, 16 : index], i32, "r", "bram">, i32, i32, !hir.time) -> (i32)
      %13 = "hir.delay"(%10, %11) {by = 1 : index, offset = 0 : index} : (i32, !hir.time) -> (i32)
      "hir.mem_write"(%12, %1, %13, %7, %11) {offset = 1 : index} : (i32, !hir.memref<[16 : index, 16 : index], i32, "w", "bram">, i32, i32, !hir.time) -> ()
      "hir.yield"(%11) {offset = 1 : index} : (!hir.time) -> ()
    }) {offset = 1 : index} : (!hir.const, !hir.const, !hir.const, !hir.time) -> (!hir.time)
    "hir.yield"(%9) {offset = 1 : index} : (!hir.time) -> ()
  }) {offset = 1 : index} : (!hir.const, !hir.const, !hir.const, !hir.time) -> (!hir.time)
  "hir.return"() : () -> ()
}) {arg_names = ["Ai", "Co"], sym_name = "transpose"} : () -> ()
