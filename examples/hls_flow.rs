//! The HLS baseline end to end (paper §9.2's vision in reverse): a C-like
//! kernel with pragmas is *automatically* scheduled — modulo scheduling
//! with port reservation tables and an SDC legalization solve — then
//! emitted as explicitly-scheduled HIR and compiled to Verilog through the
//! same backend as hand-written HIR.
//!
//! Run with: `cargo run --example hls_flow`

use hir_suite::hir::interp::{ArgValue, Interpreter};
use hir_suite::hls::{KExpr, KStmt, Kernel, LoopPragmas, SchedOptions};

fn main() {
    // A dot-product-style kernel: out[i] = a[i]*b[i] + bias.
    let n = 32u64;
    let mut k = Kernel::new("axpb");
    k.scalar_arg("bias", 32);
    k.in_array("a", 32, &[n])
        .in_array("b", 32, &[n])
        .out_array("out", 32, &[n]);
    k.body = vec![KStmt::For {
        var: "i".into(),
        lb: 0,
        ub: n as i64,
        step: 1,
        pragmas: LoopPragmas {
            pipeline_ii: Some(1),
            unroll: false,
        },
        body: vec![KStmt::Store {
            array: "out".into(),
            indices: vec![KExpr::var("i")],
            value: KExpr::add(
                KExpr::mul(
                    KExpr::read("a", vec![KExpr::var("i")]),
                    KExpr::read("b", vec![KExpr::var("i")]),
                ),
                KExpr::var("bias"),
            ),
        }],
    }];

    let compiled = hir_suite::hls::compile(&k, &SchedOptions::default()).expect("compile");
    println!("=== HLS compilation report ===");
    println!("loops scheduled      : {}", compiled.stats.loops);
    println!(
        "II search attempts   : {}",
        compiled.stats.schedule_attempts
    );
    println!("achieved IIs         : {:?}", compiled.stats.achieved_iis);
    println!("DFG nodes scheduled  : {}", compiled.stats.nodes_scheduled);
    println!("SDC schedule slack   : {}", compiled.stats.sdc_slack);
    println!("compile time         : {:?}", compiled.elapsed);

    println!("\n=== The schedule the compiler found, as HIR ===\n");
    println!("{}", hir_suite::hir::pretty_module(&compiled.hir_module));

    // Functional check through the interpreter.
    let a: Vec<i128> = (0..n as i128).collect();
    let b: Vec<i128> = (0..n as i128).map(|x| x + 1).collect();
    let r = Interpreter::new(&compiled.hir_module)
        .run(
            "hls_axpb",
            &[
                ArgValue::Int(7),
                ArgValue::tensor_from(&a),
                ArgValue::tensor_from(&b),
                ArgValue::uninit_tensor(n as usize),
            ],
        )
        .expect("simulate");
    for i in 0..n as usize {
        assert_eq!(r.tensors[&3][i], Some(a[i] * b[i] + 7), "out[{i}]");
    }
    println!("=== Functional check passed: out[i] = a[i]*b[i] + bias ===");
    println!("latency: {} cycles for {n} elements (pipelined)", r.cycles);
}
