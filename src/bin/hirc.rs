//! `hirc` — the HIR compiler driver.
//!
//! Reads a module in the generic textual IR format, verifies it
//! (structure + schedule), optionally runs the optimization pipeline, and
//! emits Verilog (default), pretty-printed HIR, or canonical IR.
//!
//! ```text
//! hirc design.mlir                      # verify + emit Verilog to stdout
//! hirc design.mlir --opt -o out.v       # optimize first
//! hirc design.mlir --emit=pretty        # paper-style HIR syntax
//! hirc design.mlir --verify-only        # exit 0/1 with diagnostics
//! hirc design.mlir --timing             # report per-pass wall time
//! hirc design.mlir --opt --stats        # counter table from all stages
//! hirc design.mlir --profile=t.json     # Chrome trace-event profile
//! hirc design.mlir --print-ir-after-all # dump IR between passes
//! ```

use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: hirc <input.mlir> [options]

options:
  --opt                  run the standard optimization pipeline
  --verify-only          stop after verification (exit 0/1)
  --emit=KIND            output kind: verilog (default), pretty, ir
  -o PATH                write output to PATH instead of stdout
  --timing               per-pass wall time and op-count deltas (stderr)
  --stats                counter/statistic table from every stage (stderr)
  --profile=PATH         write a Chrome trace-event JSON profile to PATH
  --print-ir-before-all  dump IR to stderr before each pass
  --print-ir-after-all   dump IR to stderr after each pass
  --help, -h             show this help
";

struct Options {
    input: String,
    output: Option<String>,
    emit: String,
    optimize: bool,
    verify_only: bool,
    timing: bool,
    stats: bool,
    profile: Option<String>,
    print_ir_before_all: bool,
    print_ir_after_all: bool,
}

/// `Ok(None)` means `--help`: usage has been printed to stdout, exit 0.
fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        input: String::new(),
        output: None,
        emit: "verilog".into(),
        optimize: false,
        verify_only: false,
        timing: false,
        stats: false,
        profile: None,
        print_ir_before_all: false,
        print_ir_after_all: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--opt" => opts.optimize = true,
            "--verify-only" => opts.verify_only = true,
            "--timing" => opts.timing = true,
            "--stats" => opts.stats = true,
            "--print-ir-before-all" => opts.print_ir_before_all = true,
            "--print-ir-after-all" => opts.print_ir_after_all = true,
            "-o" => opts.output = Some(args.next().ok_or("-o needs a path")?),
            _ if a.starts_with("--profile=") => {
                opts.profile = Some(a["--profile=".len()..].to_string());
                if opts.profile.as_deref() == Some("") {
                    return Err("--profile needs a path".into());
                }
            }
            _ if a.starts_with("--emit=") => {
                opts.emit = a["--emit=".len()..].to_string();
                if !["verilog", "pretty", "ir"].contains(&opts.emit.as_str()) {
                    return Err(format!("unknown --emit kind '{}'", opts.emit));
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            _ if !a.starts_with('-') && opts.input.is_empty() => opts.input = a,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.input.is_empty() {
        return Err("no input file (try --help)".into());
    }
    Ok(Some(opts))
}

/// Bound on the smoke simulation run under `--stats`/`--profile`: long enough
/// to exercise the datapath, short enough to stay negligible next to codegen.
const SMOKE_CYCLES: u64 = 64;

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hirc: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Recording costs nothing unless a reporting flag asks for it.
    let observing = opts.stats || opts.profile.is_some() || opts.timing;
    obs::set_enabled(observing);

    let source = match std::fs::read_to_string(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hirc: cannot read '{}': {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };

    let start = std::time::Instant::now();
    // Two surface syntaxes: the paper-style pretty form (starts with
    // `hir.func`) and the generic MLIR-like form (quoted op names).
    let pretty_input = source
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with("//"))
        .is_some_and(|l| l.starts_with("hir.func"));
    let parsed = {
        let mut s = obs::span_in("parse", "parse input");
        s.arg("file", &opts.input);
        if pretty_input {
            hir::parse_pretty(&source).map_err(|e| e.to_string())
        } else {
            ir::parse_module(&source).map_err(|e| e.to_string())
        }
    };
    let mut module = match parsed {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{}:{e}", opts.input);
            return ExitCode::FAILURE;
        }
    };
    obs::counter_add("parse", "ops_parsed", module.op_count() as u64);
    let t_parse = start.elapsed();

    let registry = hir::hir_registry();
    let mut diags = ir::DiagnosticEngine::new();
    let t0 = std::time::Instant::now();
    let verify_failed = {
        let _s = obs::span_in("verify", "verify module");
        ir::verify_module(&module, &registry, &mut diags).is_err()
            || hir_verify::verify_schedule(&module, &mut diags).is_err()
    };
    if verify_failed {
        eprintln!("{}", diags.render());
        return ExitCode::FAILURE;
    }
    let t_verify = t0.elapsed();

    let t0 = std::time::Instant::now();
    let mut pm = hir_opt::standard_pipeline();
    if opts.print_ir_before_all || opts.print_ir_after_all {
        pm.add_instrumentation(ir::IrPrintInstrumentation::to_stderr(
            opts.print_ir_before_all,
            opts.print_ir_after_all,
        ));
    }
    if opts.optimize {
        let run = {
            let _s = obs::span_in("opt", "optimization pipeline");
            let mut opt_diags = ir::DiagnosticEngine::new();
            pm.run(&mut module, &registry, &mut opt_diags)
        };
        if let Err(pass) = run {
            eprintln!("hirc: optimization pass '{pass}' failed");
            return ExitCode::FAILURE;
        }
        // Re-verify: passes must preserve schedule validity.
        let mut diags = ir::DiagnosticEngine::new();
        if hir_verify::verify_schedule(&module, &mut diags).is_err() {
            eprintln!("hirc: internal error — optimized module fails verification:");
            eprintln!("{}", diags.render());
            return ExitCode::FAILURE;
        }
    }
    let t_opt = t0.elapsed();

    if opts.verify_only {
        eprintln!("hirc: ok");
        return finish(
            &opts,
            t_parse,
            t_verify,
            t_opt,
            std::time::Duration::ZERO,
            &pm,
        );
    }

    let t0 = std::time::Instant::now();
    let mut design = None;
    let text = match opts.emit.as_str() {
        "pretty" => hir::pretty_module(&module),
        "ir" => ir::print_module(&module),
        _ => {
            let generated = {
                let _s = obs::span_in("codegen", "generate design");
                hir_codegen::generate_design(&module, &hir_codegen::CodegenOptions::default())
            };
            match generated {
                Ok(d) => {
                    let _s = obs::span_in("emit", "print verilog");
                    let text = verilog::print_design(&d);
                    design = Some(d);
                    text
                }
                Err(e) => {
                    eprintln!("hirc: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let t_emit = t0.elapsed();

    // Under --stats/--profile, exercise the emitted design in the simulator
    // for a bounded number of cycles so the report covers the sim stage too.
    if let Some(design) = design
        .as_ref()
        .filter(|_| opts.stats || opts.profile.is_some())
    {
        if let Some(top) = design.modules.last() {
            let mut s = obs::span_in("sim", "smoke simulation");
            s.arg("top", &top.name).arg("cycles", SMOKE_CYCLES);
            match verilog::sim::Simulator::new(design, &top.name) {
                Ok(mut sim) => {
                    // An assertion firing on an undriven design is not a
                    // compile error; the smoke run is best-effort.
                    let _ = sim.run(SMOKE_CYCLES);
                }
                Err(e) => eprintln!("hirc: smoke simulation skipped: {e}"),
            }
        }
    }

    let ok = match &opts.output {
        Some(path) => std::fs::write(path, &text).map_err(|e| format!("{path}: {e}")),
        None => std::io::stdout()
            .write_all(text.as_bytes())
            .map_err(|e| e.to_string()),
    };
    if let Err(e) = ok {
        eprintln!("hirc: {e}");
        return ExitCode::FAILURE;
    }
    finish(&opts, t_parse, t_verify, t_opt, t_emit, &pm)
}

/// Render the requested reports (timing, stats, profile) and exit.
fn finish(
    opts: &Options,
    t_parse: std::time::Duration,
    t_verify: std::time::Duration,
    t_opt: std::time::Duration,
    t_emit: std::time::Duration,
    pm: &ir::PassManager,
) -> ExitCode {
    if opts.timing {
        eprintln!(
            "hirc timing: parse {t_parse:?}, verify {t_verify:?}, optimize {t_opt:?}, emit {t_emit:?}"
        );
        if !pm.timings().is_empty() {
            eprint!("{}", pm.timing_report());
        }
    }
    if opts.stats {
        eprint!("{}", obs::stats_table());
    }
    if let Some(path) = &opts.profile {
        if let Err(e) = std::fs::write(path, obs::chrome_trace()) {
            eprintln!("hirc: cannot write profile '{path}': {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
