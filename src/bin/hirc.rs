//! `hirc` — the HIR compiler driver.
//!
//! Reads a module in the generic textual IR format, verifies it
//! (structure + schedule), optionally runs the optimization pipeline, and
//! emits Verilog (default), pretty-printed HIR, or canonical IR.
//!
//! ```text
//! hirc design.mlir                      # verify + emit Verilog to stdout
//! hirc design.mlir --opt -o out.v       # optimize first
//! hirc design.mlir --emit=pretty        # paper-style HIR syntax
//! hirc design.mlir --verify-only        # exit 0/1 with diagnostics
//! hirc design.mlir --timing             # report per-pass wall time
//! ```

use std::io::Write;
use std::process::ExitCode;

struct Options {
    input: String,
    output: Option<String>,
    emit: String,
    optimize: bool,
    verify_only: bool,
    timing: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        output: None,
        emit: "verilog".into(),
        optimize: false,
        verify_only: false,
        timing: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--opt" => opts.optimize = true,
            "--verify-only" => opts.verify_only = true,
            "--timing" => opts.timing = true,
            "-o" => opts.output = Some(args.next().ok_or("-o needs a path")?),
            _ if a.starts_with("--emit=") => {
                opts.emit = a["--emit=".len()..].to_string();
                if !["verilog", "pretty", "ir"].contains(&opts.emit.as_str()) {
                    return Err(format!("unknown --emit kind '{}'", opts.emit));
                }
            }
            "--help" | "-h" => {
                return Err("usage: hirc <input.mlir> [--opt] [--verify-only] \
                            [--emit=verilog|pretty|ir] [--timing] [-o out]"
                    .into())
            }
            _ if !a.starts_with('-') && opts.input.is_empty() => opts.input = a,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.input.is_empty() {
        return Err("no input file (try --help)".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hirc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hirc: cannot read '{}': {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };

    let start = std::time::Instant::now();
    // Two surface syntaxes: the paper-style pretty form (starts with
    // `hir.func`) and the generic MLIR-like form (quoted op names).
    let pretty_input = source
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with("//"))
        .is_some_and(|l| l.starts_with("hir.func"));
    let mut module = if pretty_input {
        match hir::parse_pretty(&source) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{}:{e}", opts.input);
                return ExitCode::FAILURE;
            }
        }
    } else {
        match ir::parse_module(&source) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{}:{e}", opts.input);
                return ExitCode::FAILURE;
            }
        }
    };
    let t_parse = start.elapsed();

    let registry = hir::hir_registry();
    let mut diags = ir::DiagnosticEngine::new();
    let t0 = std::time::Instant::now();
    if ir::verify_module(&module, &registry, &mut diags).is_err()
        || hir_verify::verify_schedule(&module, &mut diags).is_err()
    {
        eprintln!("{}", diags.render());
        return ExitCode::FAILURE;
    }
    let t_verify = t0.elapsed();

    let t0 = std::time::Instant::now();
    if opts.optimize {
        if let Err(pass) = hir_opt::optimize(&mut module) {
            eprintln!("hirc: optimization pass '{pass}' failed");
            return ExitCode::FAILURE;
        }
        // Re-verify: passes must preserve schedule validity.
        let mut diags = ir::DiagnosticEngine::new();
        if hir_verify::verify_schedule(&module, &mut diags).is_err() {
            eprintln!("hirc: internal error — optimized module fails verification:");
            eprintln!("{}", diags.render());
            return ExitCode::FAILURE;
        }
    }
    let t_opt = t0.elapsed();

    if opts.verify_only {
        eprintln!("hirc: ok");
        return ExitCode::SUCCESS;
    }

    let t0 = std::time::Instant::now();
    let text = match opts.emit.as_str() {
        "pretty" => hir::pretty_module(&module),
        "ir" => ir::print_module(&module),
        _ => match hir_codegen::generate_design(&module, &hir_codegen::CodegenOptions::default()) {
            Ok(design) => verilog::print_design(&design),
            Err(e) => {
                eprintln!("hirc: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let t_emit = t0.elapsed();

    let ok = match &opts.output {
        Some(path) => std::fs::write(path, &text).map_err(|e| format!("{path}: {e}")),
        None => std::io::stdout()
            .write_all(text.as_bytes())
            .map_err(|e| e.to_string()),
    };
    if let Err(e) = ok {
        eprintln!("hirc: {e}");
        return ExitCode::FAILURE;
    }
    if opts.timing {
        eprintln!(
            "hirc timing: parse {t_parse:?}, verify {t_verify:?}, optimize {t_opt:?}, emit {t_emit:?}"
        );
    }
    ExitCode::SUCCESS
}
