//! `hirc` — the HIR compiler driver.
//!
//! Reads a module in the generic textual IR format, verifies it
//! (structure + schedule), optionally runs the optimization pipeline, and
//! emits Verilog (default), pretty-printed HIR, or canonical IR.
//!
//! ```text
//! hirc design.mlir                      # verify + emit Verilog to stdout
//! hirc design.mlir --opt -o out.v       # optimize first
//! hirc design.mlir --emit=pretty        # paper-style HIR syntax
//! hirc design.mlir --verify-only        # exit 0/1 with diagnostics
//! hirc design.mlir --timing             # report per-pass wall time
//! hirc design.mlir --opt --stats        # counter table from all stages
//! hirc design.mlir --profile=t.json     # Chrome trace-event profile
//! hirc design.mlir --print-ir-after-all # dump IR between passes
//! hirc repro.mlir                       # crash reproducers re-run themselves
//! ```
//!
//! All diagnostics go to stderr; only the requested artifact goes to stdout.
//! Exit codes distinguish *user* errors (1) from *compiler* bugs (3) so that
//! scripts and the fuzz harness can triage failures mechanically.

use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: hirc <input.mlir> [options]

options:
  --opt                    run the standard optimization pipeline
  --pipeline=a,b,c         run an explicit comma-separated pass pipeline
  --threads=N              worker threads for the per-function pass pipeline
                           and schedule verification: a positive integer or
                           'max' (all cores). Default: HIRC_THREADS if set
                           to a positive integer, else all available cores.
                           Output is byte-identical at every thread count.
  --verify-only            stop after verification
  --verify-each            re-verify the module after every pass
  --crash-reproducer=PATH  on pass panic or verifier failure, write an
                           MLIR-style reproducer (pre-pass IR + remaining
                           pipeline) to PATH
  --error-limit=N          stop reporting parse errors after N (default 20)
  --emit=KIND              output kind: verilog (default), pretty, ir,
                           sim (generate the design, run it in the RTL
                           harness, and print a deterministic run summary),
                           or btor2 (word-level transition system of the
                           last function's generated design, BTOR2 format)
  -o PATH                  write output to PATH instead of stdout
  --sim-vcd=PATH           with --emit=sim, dump a VCD waveform of the whole
                           harness run to PATH
  --sim-max-cycles=N       cycle watchdog for simulation runs: the smoke run
                           under --stats/--profile (default 64) and the
                           harness run under --emit=sim (default 100000)
  --sim-engine=ENGINE      simulator engine: bytecode (default; flat
                           compiled tapes), treewalk (the reference
                           expression-tree evaluator), event (event-driven:
                           only cones whose inputs changed re-execute), or
                           batched (event-driven with N independent stimulus
                           lanes evaluated bit-parallel; see --sim-batch)
  --sim-batch=N            with --emit=sim, simulate N independent stimulus
                           lanes (1..=64) in one batched run; implies
                           --sim-engine=batched (default lanes: 8)
  --sim-telemetry[=PATH]   with --emit=sim, run with the simulator's
                           telemetry plane on: per-net toggle/activity
                           counters, per-cone quiescence, and per-unit
                           dynamic utilization. Human summary on stderr, or
                           strict JSON to PATH
  --sim-trace=PATH         with --emit=sim, write a Chrome trace-event JSON
                           of per-cone busy/quiescent periods to PATH
                           (open in a trace viewer; 1 µs = 1 cycle). With
                           --sched-stats also on, a per-cycle dirty-cone
                           counter track rides along
  --sched-stats[=FILE]     with --emit=sim, run with the simulator's
                           scheduler-statistics plane on: per-cycle dirty-set
                           occupancy, reader-list walk lengths, coalesced run
                           lengths, commit-compare outcomes (spurious-wake
                           rate), per-unit wake attribution, and a cycle-share
                           breakdown (interpreter vs wake walks vs commit
                           compares). Human summary on stderr, or strict JSON
                           to FILE. A pure observer: results, VCD, and
                           telemetry are unchanged, and the JSON is
                           byte-identical across runs and --threads values
  --verify-equiv[=K]       translation validation: bounded-model-check that
                           the optimized module is observably equivalent to
                           the pre-optimization module for K cycles
                           (default 16) on every function, via the in-house
                           SAT backend. Counterexamples are replay-confirmed
                           in the RTL simulator before being reported (exit
                           1); proof-budget exhaustion loudly degrades to a
                           sampled differential (remark on stderr), never a
                           silent pass. Requires --opt or --pipeline.
  --verify-equiv-report=F  write a strict-JSON proof report (per-function
                           status, conflicts, time, and solver statistics:
                           restarts, learnt-clause/decision-depth histograms,
                           blast-cache hit rate, per-frame CNF sizes,
                           per-phase timing) to F
  --equiv-conflicts=N      SAT conflict budget per function (default 500000)
  --equiv-time-ms=N        wall-clock budget per function in ms (default
                           60000; 0 disables the clock for deterministic
                           verdicts)
  --equiv-samples=N        stimulus vectors for the degraded differential
                           (default 8)
  --equiv-corpus-dir=DIR   on a confirmed counterexample, ddmin-reduce the
                           input to the smallest program that still
                           miscompiles and save it under DIR as a fuzz
                           regression
  --remarks=PATH           stream optimization remarks (applied AND missed)
                           from the pass pipeline as JSON lines to PATH
  --rpass=REGEX            echo remarks whose pass name matches REGEX as
                           `remark:` diagnostics on stderr
  --schedule-report[=PATH] per-function schedule timeline (each op's time
                           root, offset, latency, loop IIs, pipeline depth):
                           ASCII Gantt chart on stderr, or JSON to PATH
  --resource-report[=PATH] hardware resources tallied during Verilog
                           emission (registers, memory ports by kind,
                           arithmetic units, delay-line bits): table on
                           stderr, or JSON to PATH
  --timing                 per-pass wall time and op-count deltas (stderr)
  --stats                  counter/statistic table from every stage (stderr)
  --stats=PATH             machine-readable JSON counters/statistics to PATH
  --profile=PATH           write a Chrome trace-event JSON profile to PATH
  --print-ir-before-all    dump IR to stderr before each pass
  --print-ir-after-all     dump IR to stderr after each pass
  --help, -h               show this help

Inputs beginning with `// HIR crash reproducer` are detected automatically:
the pipeline recorded in the file is re-run on the embedded IR (an explicit
--pipeline= overrides it).

exit codes:
  0  success
  1  diagnostics reported (parse, verify, pass, or codegen errors)
  2  usage error (bad flags, unknown pass names)
  3  internal error (pass panic, or the module fails verification after a
     pass) -- always a compiler bug; please attach the crash reproducer
";

const EXIT_DIAGNOSTICS: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_INTERNAL: u8 = 3;

struct Options {
    input: String,
    output: Option<String>,
    emit: String,
    optimize: bool,
    pipeline: Option<Vec<String>>,
    threads: usize,
    verify_only: bool,
    verify_each: bool,
    crash_reproducer: Option<String>,
    error_limit: usize,
    sim_max_cycles: Option<u64>,
    /// `None` = unset: bytecode, or batched when `--sim-batch` is given.
    sim_engine: Option<verilog::Engine>,
    /// Stimulus lanes for the batched engine (implies `--sim-engine=batched`).
    sim_batch: Option<usize>,
    sim_vcd: Option<String>,
    /// `Some(None)` = summary to stderr, `Some(Some(path))` = JSON to file.
    sim_telemetry: Option<Option<String>>,
    sim_trace: Option<String>,
    /// `Some(None)` = summary to stderr, `Some(Some(path))` = JSON to file.
    sched_stats: Option<Option<String>>,
    remarks: Option<String>,
    rpass: Option<obs::rex::Regex>,
    /// `Some(None)` = report to stderr, `Some(Some(path))` = JSON to file.
    schedule_report: Option<Option<String>>,
    resource_report: Option<Option<String>>,
    timing: bool,
    stats: bool,
    stats_file: Option<String>,
    profile: Option<String>,
    print_ir_before_all: bool,
    print_ir_after_all: bool,
    /// `Some(K)` = prove optimized ≡ unoptimized for K cycles.
    verify_equiv: Option<u32>,
    verify_equiv_report: Option<String>,
    equiv_conflicts: u64,
    /// `None` = no wall clock (deterministic verdicts).
    equiv_time_ms: Option<u64>,
    equiv_samples: u32,
    equiv_corpus_dir: Option<String>,
}

impl Options {
    /// The engine the simulator should run: `--sim-engine` when given,
    /// otherwise batched if `--sim-batch` was requested, otherwise bytecode.
    fn resolved_sim_engine(&self) -> verilog::Engine {
        self.sim_engine.unwrap_or(if self.sim_batch.is_some() {
            verilog::Engine::Batched
        } else {
            verilog::Engine::default()
        })
    }
}

/// `Ok(None)` means `--help`: usage has been printed to stdout, exit 0.
fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        input: String::new(),
        output: None,
        emit: "verilog".into(),
        optimize: false,
        pipeline: None,
        threads: 0, // 0 = auto (HIRC_THREADS, then available cores)
        verify_only: false,
        verify_each: false,
        crash_reproducer: None,
        error_limit: 0, // 0 = parser default
        sim_max_cycles: None,
        sim_engine: None,
        sim_batch: None,
        sim_vcd: None,
        sim_telemetry: None,
        sim_trace: None,
        sched_stats: None,
        remarks: None,
        rpass: None,
        schedule_report: None,
        resource_report: None,
        timing: false,
        stats: false,
        stats_file: None,
        profile: None,
        print_ir_before_all: false,
        print_ir_after_all: false,
        verify_equiv: None,
        verify_equiv_report: None,
        equiv_conflicts: 500_000,
        equiv_time_ms: Some(60_000),
        equiv_samples: 8,
        equiv_corpus_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--opt" => opts.optimize = true,
            "--verify-equiv" => opts.verify_equiv = Some(16),
            "--verify-only" => opts.verify_only = true,
            "--verify-each" => opts.verify_each = true,
            "--timing" => opts.timing = true,
            "--stats" => opts.stats = true,
            "--schedule-report" => opts.schedule_report = Some(None),
            "--sim-telemetry" => opts.sim_telemetry = Some(None),
            "--sched-stats" => opts.sched_stats = Some(None),
            "--resource-report" => opts.resource_report = Some(None),
            "--print-ir-before-all" => opts.print_ir_before_all = true,
            "--print-ir-after-all" => opts.print_ir_after_all = true,
            "-o" => opts.output = Some(args.next().ok_or("-o needs a path")?),
            _ if a.starts_with("--pipeline=") => {
                let spec = &a["--pipeline=".len()..];
                let names: Vec<String> = spec
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if names.is_empty() {
                    return Err("--pipeline needs at least one pass name".into());
                }
                opts.pipeline = Some(names);
            }
            _ if a.starts_with("--threads=") => {
                let n = &a["--threads=".len()..];
                opts.threads = if n == "max" {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                } else {
                    let v = n.parse::<usize>().map_err(|_| {
                        format!("--threads needs a positive integer or 'max', got '{n}'")
                    })?;
                    if v == 0 {
                        return Err("--threads must be at least 1 (or 'max')".into());
                    }
                    v
                };
            }
            _ if a.starts_with("--crash-reproducer=") => {
                let path = &a["--crash-reproducer=".len()..];
                if path.is_empty() {
                    return Err("--crash-reproducer needs a path".into());
                }
                opts.crash_reproducer = Some(path.to_string());
            }
            _ if a.starts_with("--error-limit=") => {
                let n = &a["--error-limit=".len()..];
                opts.error_limit = n
                    .parse::<usize>()
                    .map_err(|_| format!("--error-limit needs a number, got '{n}'"))?;
                if opts.error_limit == 0 {
                    return Err("--error-limit must be at least 1".into());
                }
            }
            _ if a.starts_with("--verify-equiv=") => {
                let n = &a["--verify-equiv=".len()..];
                let k = n
                    .parse::<u32>()
                    .map_err(|_| format!("--verify-equiv needs a cycle count, got '{n}'"))?;
                if k == 0 {
                    return Err("--verify-equiv needs at least 1 cycle".into());
                }
                opts.verify_equiv = Some(k);
            }
            _ if a.starts_with("--verify-equiv-report=") => {
                let path = &a["--verify-equiv-report=".len()..];
                if path.is_empty() {
                    return Err("--verify-equiv-report needs a path".into());
                }
                opts.verify_equiv_report = Some(path.to_string());
            }
            _ if a.starts_with("--equiv-conflicts=") => {
                let n = &a["--equiv-conflicts=".len()..];
                opts.equiv_conflicts = n
                    .parse::<u64>()
                    .map_err(|_| format!("--equiv-conflicts needs a number, got '{n}'"))?;
                if opts.equiv_conflicts == 0 {
                    return Err("--equiv-conflicts must be at least 1".into());
                }
            }
            _ if a.starts_with("--equiv-time-ms=") => {
                let n = &a["--equiv-time-ms=".len()..];
                let ms = n
                    .parse::<u64>()
                    .map_err(|_| format!("--equiv-time-ms needs a number, got '{n}'"))?;
                opts.equiv_time_ms = if ms == 0 { None } else { Some(ms) };
            }
            _ if a.starts_with("--equiv-samples=") => {
                let n = &a["--equiv-samples=".len()..];
                opts.equiv_samples = n
                    .parse::<u32>()
                    .map_err(|_| format!("--equiv-samples needs a number, got '{n}'"))?;
                if opts.equiv_samples == 0 {
                    return Err("--equiv-samples must be at least 1".into());
                }
            }
            _ if a.starts_with("--equiv-corpus-dir=") => {
                let dir = &a["--equiv-corpus-dir=".len()..];
                if dir.is_empty() {
                    return Err("--equiv-corpus-dir needs a path".into());
                }
                opts.equiv_corpus_dir = Some(dir.to_string());
            }
            _ if a.starts_with("--sim-max-cycles=") => {
                let n = &a["--sim-max-cycles=".len()..];
                opts.sim_max_cycles = Some(
                    n.parse::<u64>()
                        .map_err(|_| format!("--sim-max-cycles needs a number, got '{n}'"))?,
                );
            }
            _ if a.starts_with("--sim-engine=") => {
                let name = &a["--sim-engine=".len()..];
                opts.sim_engine = Some(match name {
                    "bytecode" => verilog::Engine::Bytecode,
                    "treewalk" => verilog::Engine::TreeWalk,
                    "event" => verilog::Engine::Event,
                    "batched" => verilog::Engine::Batched,
                    _ => {
                        return Err(format!(
                            "unknown --sim-engine '{name}' (expected bytecode, treewalk, \
                             event, or batched)"
                        ))
                    }
                });
            }
            _ if a.starts_with("--sim-batch=") => {
                let n = &a["--sim-batch=".len()..];
                let lanes = n
                    .parse::<usize>()
                    .map_err(|_| format!("--sim-batch needs a lane count, got '{n}'"))?;
                if lanes == 0 || lanes > 64 {
                    return Err(format!("--sim-batch accepts 1..=64 lanes, got {lanes}"));
                }
                opts.sim_batch = Some(lanes);
            }
            _ if a.starts_with("--profile=") => {
                opts.profile = Some(a["--profile=".len()..].to_string());
                if opts.profile.as_deref() == Some("") {
                    return Err("--profile needs a path".into());
                }
            }
            _ if a.starts_with("--stats=") => {
                let path = &a["--stats=".len()..];
                if path.is_empty() {
                    return Err("--stats= needs a path (or use bare --stats)".into());
                }
                opts.stats_file = Some(path.to_string());
            }
            _ if a.starts_with("--remarks=") => {
                let path = &a["--remarks=".len()..];
                if path.is_empty() {
                    return Err("--remarks needs a path".into());
                }
                opts.remarks = Some(path.to_string());
            }
            _ if a.starts_with("--rpass=") => {
                let pattern = &a["--rpass=".len()..];
                opts.rpass = Some(
                    obs::rex::Regex::new(pattern)
                        .map_err(|e| format!("--rpass: bad regex '{pattern}': {e}"))?,
                );
            }
            _ if a.starts_with("--schedule-report=") => {
                let path = &a["--schedule-report=".len()..];
                if path.is_empty() {
                    return Err("--schedule-report= needs a path".into());
                }
                opts.schedule_report = Some(Some(path.to_string()));
            }
            _ if a.starts_with("--resource-report=") => {
                let path = &a["--resource-report=".len()..];
                if path.is_empty() {
                    return Err("--resource-report= needs a path".into());
                }
                opts.resource_report = Some(Some(path.to_string()));
            }
            _ if a.starts_with("--sim-telemetry=") => {
                let path = &a["--sim-telemetry=".len()..];
                if path.is_empty() {
                    return Err(
                        "--sim-telemetry= needs a path (or use bare --sim-telemetry)".into(),
                    );
                }
                opts.sim_telemetry = Some(Some(path.to_string()));
            }
            _ if a.starts_with("--sim-trace=") => {
                let path = &a["--sim-trace=".len()..];
                if path.is_empty() {
                    return Err("--sim-trace needs a path".into());
                }
                opts.sim_trace = Some(path.to_string());
            }
            _ if a.starts_with("--sched-stats=") => {
                let path = &a["--sched-stats=".len()..];
                if path.is_empty() {
                    return Err("--sched-stats= needs a path (or use bare --sched-stats)".into());
                }
                opts.sched_stats = Some(Some(path.to_string()));
            }
            _ if a.starts_with("--sim-vcd=") => {
                let path = &a["--sim-vcd=".len()..];
                if path.is_empty() {
                    return Err("--sim-vcd needs a path".into());
                }
                opts.sim_vcd = Some(path.to_string());
            }
            _ if a.starts_with("--emit=") => {
                opts.emit = a["--emit=".len()..].to_string();
                if !["verilog", "pretty", "ir", "sim", "btor2"].contains(&opts.emit.as_str()) {
                    return Err(format!("unknown --emit kind '{}'", opts.emit));
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            _ if !a.starts_with('-') && opts.input.is_empty() => opts.input = a,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.input.is_empty() {
        return Err("no input file (try --help)".into());
    }
    // Every flag that only makes sense for a simulation run is validated
    // through one helper so the exit-2 usage errors stay uniform.
    let sim_only: [(&str, bool); 5] = [
        ("--sim-vcd", opts.sim_vcd.is_some()),
        ("--sim-telemetry", opts.sim_telemetry.is_some()),
        ("--sim-trace", opts.sim_trace.is_some()),
        ("--sched-stats", opts.sched_stats.is_some()),
        ("--sim-batch", opts.sim_batch.is_some()),
    ];
    for (flag, given) in sim_only {
        if given && opts.emit != "sim" {
            return Err(format!("{flag} requires --emit=sim"));
        }
    }
    if opts.sim_batch.is_some()
        && opts
            .sim_engine
            .is_some_and(|e| e != verilog::Engine::Batched)
    {
        return Err(
            "--sim-batch requires --sim-engine=batched (or leave --sim-engine unset)".into(),
        );
    }
    if opts.verify_equiv.is_some() && !(opts.optimize || opts.pipeline.is_some()) {
        return Err("--verify-equiv requires --opt or --pipeline (nothing to validate)".into());
    }
    if opts.verify_equiv.is_none() {
        if opts.verify_equiv_report.is_some() {
            return Err("--verify-equiv-report requires --verify-equiv".into());
        }
        if opts.equiv_corpus_dir.is_some() {
            return Err("--equiv-corpus-dir requires --verify-equiv".into());
        }
    }
    Ok(Some(opts))
}

/// Bound on the smoke simulation run under `--stats`/`--profile`: long enough
/// to exercise the datapath, short enough to stay negligible next to codegen.
const SMOKE_CYCLES: u64 = 64;

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hirc: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // Recording costs nothing unless a reporting flag asks for it.
    let observing =
        opts.stats || opts.stats_file.is_some() || opts.profile.is_some() || opts.timing;
    obs::set_enabled(observing);
    // Remark recording is gated separately so --remarks/--rpass work without
    // paying for span/counter instrumentation (and vice versa).
    obs::set_remarks_enabled(opts.remarks.is_some() || opts.rpass.is_some());

    let source = match std::fs::read_to_string(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hirc: cannot read '{}': {e}", opts.input);
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    };

    // A crash reproducer carries its own pipeline; re-run it faithfully so a
    // bare `hirc repro.mlir` re-triggers the recorded crash.
    let reproducer_pipeline: Option<Vec<String>> = ir::parse_reproducer(&source).map(|r| {
        eprintln!(
            "hirc: input is a crash reproducer (error: {}); re-running pipeline [{}]",
            r.error,
            r.pipeline.join(",")
        );
        r.pipeline
    });

    let start = std::time::Instant::now();
    // Two surface syntaxes: the paper-style pretty form (starts with
    // `hir.func`) and the generic MLIR-like form (quoted op names).
    let pretty_input = source
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with("//"))
        .is_some_and(|l| l.starts_with("hir.func"));
    // Recovering parse: collect every syntax error in one run instead of
    // stopping at the first.
    let (module, parse_errors, hit_limit) = {
        let mut s = obs::span_in("parse", "parse input");
        s.arg("file", &opts.input);
        if pretty_input {
            let r = hir::parse_pretty_recover(&source, opts.error_limit);
            let errs: Vec<(u32, u32, String)> = r
                .errors
                .into_iter()
                .map(|e| (e.line, e.col, e.message))
                .collect();
            (r.module, errs, r.hit_error_limit)
        } else {
            let r = ir::parse_module_recover(&source, opts.error_limit);
            let errs: Vec<(u32, u32, String)> = r
                .errors
                .into_iter()
                .map(|e| (e.line, e.col, e.message))
                .collect();
            (r.module, errs, r.hit_error_limit)
        }
    };
    if !parse_errors.is_empty() {
        for (line, col, message) in &parse_errors {
            eprintln!("{}:{line}:{col}: error: {message}", opts.input);
        }
        if hit_limit {
            eprintln!(
                "hirc: stopped after {} errors (raise with --error-limit=N)",
                parse_errors.len()
            );
        }
        eprintln!("hirc: {} parse error(s)", parse_errors.len());
        return ExitCode::from(EXIT_DIAGNOSTICS);
    }
    let mut module = module;
    obs::counter_add("parse", "ops_parsed", module.op_count() as u64);
    let t_parse = start.elapsed();

    let registry = hir::hir_registry();
    let mut diags = ir::DiagnosticEngine::new();
    let t0 = std::time::Instant::now();
    let verify_failed = {
        let _s = obs::span_in("verify", "verify module");
        ir::verify_module(&module, &registry, &mut diags).is_err()
            || hir_verify::verify_schedule_with_threads(&module, &mut diags, opts.threads).is_err()
    };
    if verify_failed {
        eprintln!("{}", diags.render());
        return ExitCode::from(EXIT_DIAGNOSTICS);
    }
    let t_verify = t0.elapsed();

    // Pipeline selection: an explicit --pipeline wins, then a reproducer's
    // recorded pipeline, then the standard pipeline under --opt. The passes
    // run through the per-function parallel pipeline unless --print-ir-*-all
    // asks for the serial pass manager's instrumentation hooks.
    let explicit = opts.pipeline.clone().or(reproducer_pipeline);
    let run_passes = opts.optimize || explicit.is_some();
    let serial = opts.print_ir_before_all || opts.print_ir_after_all;
    let t0 = std::time::Instant::now();
    let mut pipeline = if serial {
        let mut pm = match &explicit {
            Some(names) => match hir_opt::pipeline_from_names(names) {
                Ok(pm) => pm,
                Err(e) => {
                    eprintln!("hirc: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            None => hir_opt::standard_pipeline(),
        };
        pm.verify_each = opts.verify_each;
        pm.crash_reproducer = opts.crash_reproducer.clone().map(Into::into);
        pm.add_instrumentation(ir::IrPrintInstrumentation::to_stderr(
            opts.print_ir_before_all,
            opts.print_ir_after_all,
        ));
        Pipeline::Serial(pm)
    } else {
        let mut fp = match &explicit {
            Some(names) => match hir_opt::function_pipeline_from_names(names, opts.threads) {
                Ok(fp) => fp,
                Err(e) => {
                    eprintln!("hirc: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            None => hir_opt::standard_function_pipeline(opts.threads),
        };
        fp.verify_each = opts.verify_each;
        fp.crash_reproducer = opts.crash_reproducer.clone().map(Into::into);
        Pipeline::PerFunction(fp)
    };
    // Snapshot for translation validation: the proof must compare the exact
    // pre-pipeline module against the exact artifact being emitted.
    let pre_opt = opts.verify_equiv.map(|_| module.clone());
    if run_passes {
        let mut opt_diags = ir::DiagnosticEngine::new();
        let run = {
            let _s = obs::span_in("opt", "optimization pipeline");
            pipeline.run(&mut module, &registry, &mut opt_diags)
        };
        if !opt_diags.diagnostics().is_empty() {
            eprintln!("{}", opt_diags.render());
        }
        if let Err(err) = run {
            eprintln!("hirc: {err}");
            if let Some(path) = pipeline.reproducer_path() {
                eprintln!("hirc: crash reproducer written to {}", path.display());
            }
            let code = if err.is_internal() {
                EXIT_INTERNAL
            } else {
                EXIT_DIAGNOSTICS
            };
            return ExitCode::from(code);
        }
        // Re-verify: passes must preserve schedule validity.
        let mut diags = ir::DiagnosticEngine::new();
        if hir_verify::verify_schedule_with_threads(&module, &mut diags, opts.threads).is_err() {
            eprintln!("hirc: internal error — optimized module fails verification:");
            eprintln!("{}", diags.render());
            return ExitCode::from(EXIT_INTERNAL);
        }
    }
    let t_opt = t0.elapsed();

    // Translation validation: prove the optimized module equivalent to the
    // snapshot. A confirmed counterexample is a diagnostic (exit 1); an
    // exhausted proof budget degrades loudly to sampling but still exits 0.
    if let Some(k) = opts.verify_equiv {
        let pre = pre_opt
            .as_ref()
            .expect("snapshot exists under --verify-equiv");
        match run_verify_equiv(&opts, pre, &module, k, &source, explicit.as_deref()) {
            Ok(true) => {}
            Ok(false) => return ExitCode::from(EXIT_DIAGNOSTICS),
            Err(e) => {
                eprintln!("hirc: error: {e}");
                return ExitCode::from(EXIT_DIAGNOSTICS);
            }
        }
    }

    // Optimization remarks: stream as JSONL and/or echo the passes the user
    // asked about. The pipeline merged per-function remarks in module order,
    // so both outputs are byte-identical at every --threads value.
    if opts.remarks.is_some() || opts.rpass.is_some() {
        let remarks = pipeline.take_remarks();
        if let Some(path) = &opts.remarks {
            let mut out = String::with_capacity(remarks.len() * 96);
            for r in &remarks {
                out.push_str(&r.to_json());
                out.push('\n');
            }
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("hirc: cannot write remarks '{path}': {e}");
                return ExitCode::from(EXIT_DIAGNOSTICS);
            }
        }
        if let Some(re) = &opts.rpass {
            let mut engine = ir::DiagnosticEngine::new();
            for r in remarks.iter().filter(|r| re.is_match(&r.pass)) {
                let mut msg = format!("[{}] {}", r.pass, r.message);
                if !r.args.is_empty() {
                    let rendered: Vec<String> = r
                        .args
                        .iter()
                        .map(|(k, v)| match v {
                            obs::RemarkValue::Int(i) => format!("{k}={i}"),
                            obs::RemarkValue::Str(s) => format!("{k}={s}"),
                        })
                        .collect();
                    msg.push_str(&format!(" ({})", rendered.join(", ")));
                }
                engine.emit(ir::Diagnostic::remark(parse_loc(&r.loc), msg));
            }
            if !engine.diagnostics().is_empty() {
                eprintln!("{}", engine.render());
            }
        }
    }

    if opts.verify_only {
        eprintln!("hirc: ok");
        return finish(
            &opts,
            t_parse,
            t_verify,
            t_opt,
            std::time::Duration::ZERO,
            &pipeline,
        );
    }

    // Schedule report: recomputed from the (verified, possibly optimized)
    // module, so offsets agree with what codegen will implement.
    if let Some(dest) = &opts.schedule_report {
        let report = hir_verify::schedule_report(&module);
        match dest {
            Some(path) => {
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    eprintln!("hirc: cannot write schedule report '{path}': {e}");
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            }
            None => eprint!("{}", report.gantt()),
        }
    }

    let t0 = std::time::Instant::now();
    let mut design = None;
    let mut resources: Option<hir_codegen::ResourceReport> = None;
    let text = match opts.emit.as_str() {
        "pretty" => hir::pretty_module(&module),
        "ir" => ir::print_module(&module),
        "btor2" => {
            let func = module
                .top_ops()
                .iter()
                .filter_map(|&t| hir::ops::FuncOp::wrap(&module, t))
                .rfind(|f| !f.is_external(&module));
            let Some(func) = func else {
                eprintln!("hirc: nothing to export: module has no non-external functions");
                return ExitCode::from(EXIT_DIAGNOSTICS);
            };
            let _s = obs::span_in("emit", "export btor2");
            match bmc::export_btor2(&module, &func.name(&module)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("hirc: {e}");
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            }
        }
        "sim" => match run_sim(&opts, &module) {
            Ok((summary, report)) => {
                resources = Some(report);
                summary
            }
            Err(e) => {
                eprintln!("hirc: {e}");
                return ExitCode::from(EXIT_DIAGNOSTICS);
            }
        },
        _ => {
            let generated = {
                let _s = obs::span_in("codegen", "generate design");
                hir_codegen::generate_design_with_report(
                    &module,
                    &hir_codegen::CodegenOptions::default(),
                )
            };
            match generated {
                Ok((d, report)) => {
                    let _s = obs::span_in("emit", "print verilog");
                    let text = verilog::print_design(&d);
                    design = Some(d);
                    resources = Some(report);
                    text
                }
                Err(e) => {
                    eprintln!("hirc: {e}");
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            }
        }
    };
    let t_emit = t0.elapsed();

    // Resource report: reuse the tallies from the emission above, or run
    // codegen just for the report when emitting pretty/ir.
    if let Some(dest) = &opts.resource_report {
        let report = match resources.take() {
            Some(r) => r,
            None => match hir_codegen::generate_design_with_report(
                &module,
                &hir_codegen::CodegenOptions::default(),
            ) {
                Ok((_, r)) => r,
                Err(e) => {
                    eprintln!("hirc: {e}");
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            },
        };
        match dest {
            Some(path) => {
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    eprintln!("hirc: cannot write resource report '{path}': {e}");
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            }
            None => eprint!("{}", report.table()),
        }
    }

    // Under --stats/--profile, exercise the emitted design in the simulator
    // for a bounded number of cycles so the report covers the sim stage too.
    if let Some(design) = design
        .as_ref()
        .filter(|_| opts.stats || opts.profile.is_some())
    {
        if let Some(top) = design.modules.last() {
            let cycles = opts.sim_max_cycles.unwrap_or(SMOKE_CYCLES);
            let mut s = obs::span_in("sim", "smoke simulation");
            s.arg("top", &top.name).arg("cycles", cycles);
            match verilog::sim::Simulator::new(design, &top.name) {
                Ok(mut sim) => {
                    sim.set_engine(opts.resolved_sim_engine());
                    // The watchdog guards the run even if the step loop is
                    // ever replaced by an open-ended one.
                    sim.set_cycle_budget(Some(cycles));
                    // An assertion firing on an undriven design is not a
                    // compile error; the smoke run is best-effort.
                    let _ = sim.run(cycles);
                }
                Err(e) => eprintln!("hirc: smoke simulation skipped: {e}"),
            }
        }
    }

    let ok = match &opts.output {
        Some(path) => std::fs::write(path, &text).map_err(|e| format!("{path}: {e}")),
        None => std::io::stdout()
            .write_all(text.as_bytes())
            .map_err(|e| e.to_string()),
    };
    if let Err(e) = ok {
        eprintln!("hirc: {e}");
        return ExitCode::from(EXIT_DIAGNOSTICS);
    }
    finish(&opts, t_parse, t_verify, t_opt, t_emit, &pipeline)
}

/// The driver's pass-running strategy: the serial [`ir::PassManager`] when
/// `--print-ir-*-all` instrumentation is requested, otherwise the parallel
/// per-function [`ir::FunctionPipeline`].
enum Pipeline {
    Serial(ir::PassManager),
    PerFunction(ir::FunctionPipeline),
}

impl Pipeline {
    fn run(
        &mut self,
        module: &mut ir::Module,
        registry: &ir::DialectRegistry,
        diags: &mut ir::DiagnosticEngine,
    ) -> Result<(), ir::PipelineError> {
        match self {
            Pipeline::Serial(pm) => pm.run(module, registry, diags),
            Pipeline::PerFunction(fp) => fp.run(module, registry, diags),
        }
    }

    fn reproducer_path(&self) -> Option<&std::path::Path> {
        match self {
            Pipeline::Serial(pm) => pm.reproducer_path(),
            Pipeline::PerFunction(fp) => fp.reproducer_path(),
        }
    }

    fn timings_empty(&self) -> bool {
        match self {
            Pipeline::Serial(pm) => pm.timings().is_empty(),
            Pipeline::PerFunction(fp) => fp.timings().is_empty(),
        }
    }

    fn timing_report(&self) -> String {
        match self {
            Pipeline::Serial(pm) => pm.timing_report(),
            Pipeline::PerFunction(fp) => fp.timing_report(),
        }
    }

    fn take_remarks(&mut self) -> Vec<obs::Remark> {
        match self {
            Pipeline::Serial(pm) => pm.take_remarks(),
            Pipeline::PerFunction(fp) => fp.take_remarks(),
        }
    }
}

/// Recover an [`ir::Location`] from a remark's rendered `file:line:col`
/// string (remarks store locations as text so `obs` stays IR-agnostic).
fn parse_loc(s: &str) -> ir::Location {
    let mut parts = s.rsplitn(3, ':');
    if let (Some(col), Some(line), Some(file)) = (parts.next(), parts.next(), parts.next()) {
        if let (Ok(line), Ok(col)) = (line.parse(), col.parse()) {
            return ir::Location::file_line_col(file, line, col);
        }
    }
    ir::Location::unknown()
}

/// `--verify-equiv`: prove `optimized` observably equivalent to `pre` for
/// `k` cycles per function. Prints per-function verdicts to stderr, writes
/// the machine-readable report if requested, harvests reduced regressions
/// on confirmed counterexamples. Returns `Ok(false)` when a counterexample
/// was confirmed (caller exits 1).
fn run_verify_equiv(
    opts: &Options,
    pre: &ir::Module,
    optimized: &ir::Module,
    k: u32,
    source: &str,
    explicit_pipeline: Option<&[String]>,
) -> Result<bool, String> {
    let eopts = bmc::EquivOptions {
        k_cycles: k,
        conflict_budget: opts.equiv_conflicts,
        time_budget_ms: opts.equiv_time_ms,
        samples: opts.equiv_samples,
        replay_max_cycles: opts
            .sim_max_cycles
            .unwrap_or(hir_codegen::testbench::DEFAULT_SIM_MAX_CYCLES),
    };
    let reports = {
        let _s = obs::span_in("equiv", "verify equivalence");
        hir_opt::verify_equivalence_with(pre, optimized, &eopts).map_err(|e| e.to_string())?
    };

    let mut all_equivalent = true;
    for r in &reports {
        match &r.status {
            bmc::EquivStatus::Proved => {
                obs::counter_add("equiv", "functions_proved", 1);
                eprintln!(
                    "hirc: verify-equiv @{}: proved equivalent for K={} cycles \
                     ({} conflicts, {} ms)",
                    r.func, r.k, r.conflicts, r.time_ms
                );
            }
            bmc::EquivStatus::Sampled { samples, reason } => {
                obs::counter_add("equiv", "functions_sampled", 1);
                eprintln!(
                    "hirc: remark: verify-equiv @{}: {reason}; degraded to a \
                     {samples}-sample differential (all samples agree, but \
                     equivalence is NOT proved)",
                    r.func
                );
            }
            bmc::EquivStatus::Counterexample(cex) => {
                obs::counter_add("equiv", "counterexamples_confirmed", 1);
                all_equivalent = false;
                eprintln!(
                    "hirc: error: verify-equiv @{}: optimized design diverges \
                     from the unoptimized design (replay-confirmed): {}",
                    r.func, cex.detail
                );
                eprintln!(
                    "hirc: counterexample stimulus for @{}: {}",
                    r.func,
                    render_stimulus(&cex.stimulus)
                );
                if let Some(dir) = &opts.equiv_corpus_dir {
                    match harvest_regression(source, explicit_pipeline, &eopts, dir) {
                        Ok(path) => {
                            eprintln!("hirc: reduced miscompile regression written to {path}");
                        }
                        Err(e) => eprintln!("hirc: regression harvesting failed: {e}"),
                    }
                }
            }
        }
    }

    if let Some(path) = &opts.verify_equiv_report {
        std::fs::write(path, equiv_report_json(k, &reports))
            .map_err(|e| format!("cannot write equivalence report '{path}': {e}"))?;
    }
    Ok(all_equivalent)
}

fn render_stimulus(stimulus: &[bmc::StimulusArg]) -> String {
    let parts: Vec<String> = stimulus
        .iter()
        .map(|s| match s {
            bmc::StimulusArg::Int(v) => v.to_string(),
            bmc::StimulusArg::Mem(words) => format!(
                "[{}]",
                words
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        })
        .collect();
    parts.join(", ")
}

/// Strict-JSON proof report for `--verify-equiv-report` (validated by the
/// `jsonv` parser in CI).
fn equiv_report_json(k: u32, reports: &[bmc::FuncReport]) -> String {
    let mut proved = 0u32;
    let mut sampled = 0u32;
    let mut counterexamples = 0u32;
    let mut funcs = Vec::with_capacity(reports.len());
    for r in reports {
        let detail = match &r.status {
            bmc::EquivStatus::Proved => String::new(),
            bmc::EquivStatus::Sampled { reason, .. } => reason.clone(),
            bmc::EquivStatus::Counterexample(cex) => cex.detail.clone(),
        };
        match &r.status {
            bmc::EquivStatus::Proved => proved += 1,
            bmc::EquivStatus::Sampled { .. } => sampled += 1,
            bmc::EquivStatus::Counterexample(_) => counterexamples += 1,
        }
        funcs.push(format!(
            "{{\"func\":\"{}\",\"status\":\"{}\",\"k\":{},\"conflicts\":{},\
             \"vars\":{},\"time_ms\":{},\"detail\":\"{}\",\"solver\":{}}}",
            obs::json::escape(&r.func),
            r.status.label(),
            r.k,
            r.conflicts,
            r.vars,
            r.time_ms,
            obs::json::escape(&detail),
            r.solver.to_json(),
        ));
    }
    format!(
        "{{\"k\":{k},\"proved\":{proved},\"sampled\":{sampled},\
         \"counterexamples\":{counterexamples},\"functions\":[{}]}}\n",
        funcs.join(",")
    )
}

/// Shrink a confirmed-miscompiling input with ddmin (reusing the fuzzer's
/// reducer) and save it as a fuzz regression. The oracle re-runs the same
/// pipeline and BMC check on every candidate, so the reduced program still
/// miscompiles by construction.
fn harvest_regression(
    source: &str,
    explicit_pipeline: Option<&[String]>,
    eopts: &bmc::EquivOptions,
    dir: &str,
) -> Result<String, String> {
    // Cheaper per-candidate budget: reduction runs the check many times.
    let oracle_opts = bmc::EquivOptions {
        conflict_budget: eopts.conflict_budget.min(50_000),
        time_budget_ms: eopts.time_budget_ms.map(|ms| ms.min(5_000)),
        ..eopts.clone()
    };
    let still = |candidate: &str| candidate_miscompiles(candidate, explicit_pipeline, &oracle_opts);
    if !still(source) {
        return Err("original input no longer reproduces under the reduction oracle".into());
    }
    let reduced = hir_fuzz::reduce_lines(source, still);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create '{dir}': {e}"))?;
    let path = format!(
        "{dir}/equiv_miscompile_{:016x}.mlir",
        fnv1a(reduced.as_bytes())
    );
    let mut text = reduced;
    if !text.ends_with('\n') {
        text.push('\n');
    }
    std::fs::write(&path, text).map_err(|e| format!("cannot write '{path}': {e}"))?;
    Ok(path)
}

/// Reduction oracle: does the pipeline still miscompile this candidate?
/// Any failure along the way (parse, verify, pass, check) means "no".
fn candidate_miscompiles(
    source: &str,
    explicit_pipeline: Option<&[String]>,
    eopts: &bmc::EquivOptions,
) -> bool {
    let pretty = source
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with("//"))
        .is_some_and(|l| l.starts_with("hir.func"));
    let module = if pretty {
        let r = hir::parse_pretty_recover(source, 1);
        if !r.errors.is_empty() {
            return false;
        }
        r.module
    } else {
        let r = ir::parse_module_recover(source, 1);
        if !r.errors.is_empty() {
            return false;
        }
        r.module
    };
    let registry = hir::hir_registry();
    let mut diags = ir::DiagnosticEngine::new();
    if ir::verify_module(&module, &registry, &mut diags).is_err()
        || hir_verify::verify_schedule(&module, &mut diags).is_err()
    {
        return false;
    }
    let mut optimized = module.clone();
    let mut pm = match explicit_pipeline {
        Some(names) => match hir_opt::pipeline_from_names(names) {
            Ok(pm) => pm,
            Err(_) => return false,
        },
        None => hir_opt::standard_pipeline(),
    };
    let mut diags = ir::DiagnosticEngine::new();
    if pm.run(&mut optimized, &registry, &mut diags).is_err() {
        return false;
    }
    matches!(
        hir_opt::verify_equivalence_with(&module, &optimized, eopts),
        Ok(reports) if reports
            .iter()
            .any(|r| matches!(r.status, bmc::EquivStatus::Counterexample(_)))
    )
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `--emit=sim`: generate the design, add behavioral stubs for external
/// functions, and run the last non-external function under the RTL harness
/// with deterministic arguments. Returns the run summary (the stdout
/// artifact) and the resource report tallied during generation.
fn run_sim(
    opts: &Options,
    module: &ir::Module,
) -> Result<(String, hir_codegen::ResourceReport), String> {
    use hir_codegen::testbench::{Harness, HarnessArg, DEFAULT_SIM_MAX_CYCLES};
    let (mut design, report) = {
        let _s = obs::span_in("codegen", "generate design");
        hir_codegen::generate_design_with_report(module, &hir_codegen::CodegenOptions::default())
            .map_err(|e| e.to_string())?
    };
    for stub in hir_codegen::extern_stubs(module).map_err(|e| e.to_string())? {
        design.add(stub);
    }
    let func = module
        .top_ops()
        .iter()
        .filter_map(|&t| hir::ops::FuncOp::wrap(module, t))
        .rfind(|f| !f.is_external(module))
        .ok_or("nothing to simulate: module has no non-external functions")?;
    let name = func.name(module);
    // Deterministic stimulus: scalars count up from 3 in steps of 3, and
    // memories hold a small repeating ramp, so waveforms and results are
    // byte-identical across runs and thread counts.
    let mut args = Vec::new();
    for (i, v) in func.args(module).iter().enumerate() {
        let ty = module.value_type(*v);
        if let Some(info) = hir::types::MemrefInfo::from_type(&ty) {
            let n = info.num_elements() as usize;
            args.push(HarnessArg::Mem(
                (0..n).map(|k| (k % 17) as i128 + 1).collect(),
            ));
        } else {
            args.push(HarnessArg::Int(3 * (i as i128 + 1)));
        }
    }
    let engine = opts.resolved_sim_engine();
    let mut harness = if engine == verilog::Engine::Batched {
        // Deterministic per-lane stimulus: lane 0 carries exactly the scalar
        // stimulus above (so its results match a non-batched run bit for
        // bit), later lanes offset every scalar and memory word by the lane
        // index.
        let lanes = opts.sim_batch.unwrap_or(8);
        let lane_args: Vec<Vec<HarnessArg>> = (0..lanes)
            .map(|lane| {
                args.iter()
                    .map(|a| match a {
                        HarnessArg::Mem(d) => {
                            HarnessArg::Mem(d.iter().map(|v| v + lane as i128).collect())
                        }
                        HarnessArg::Int(v) => HarnessArg::Int(v + lane as i128),
                        other => other.clone(),
                    })
                    .collect()
            })
            .collect();
        Harness::new_batched(&design, module, func, &lane_args).map_err(|e| e.to_string())?
    } else {
        let mut h = Harness::new(&design, module, func, &args).map_err(|e| e.to_string())?;
        h.set_engine(engine);
        h
    };
    // Enable telemetry before any cycle runs so counters cover the whole run
    // and both engines report identical counts.
    let telemetry_on = opts.sim_telemetry.is_some() || opts.sim_trace.is_some();
    if telemetry_on {
        harness.enable_telemetry(opts.sim_trace.is_some());
    }
    // Scheduler stats are a pure observer: enabled before any cycle runs so
    // histograms cover the whole run; results/VCD/telemetry are unchanged.
    if opts.sched_stats.is_some() {
        harness.enable_sched_stats();
    }
    if let Some(path) = &opts.sim_vcd {
        harness
            .dump_vcd(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
    }
    let max = opts.sim_max_cycles.unwrap_or(DEFAULT_SIM_MAX_CYCLES);
    let reps = {
        // The cycle-stamped span lands on the same Chrome-trace timeline as
        // the compiler passes, correlating sim activity with compile stages.
        let mut s = obs::span_in("sim", "harness run");
        s.arg("top", hir_codegen::module_name(&name))
            .arg("max_cycles", max)
            .arg("lanes", harness.lanes() as u64);
        harness.run_batched(max).map_err(|e| e.to_string())?
    };
    let rep = &reps[0];
    obs::counter_add("sim", "cycles", rep.cycles);
    obs::set_stat("sim", "top", hir_codegen::module_name(&name));
    if telemetry_on {
        // Join the static unit→net map of the simulated function into the
        // counters so the report carries per-unit dynamic utilization.
        let func_resources = report.functions.iter().find(|f| f.function == name);
        let t = harness
            .telemetry_report(func_resources)
            .ok_or("internal: telemetry enabled but no report produced")?;
        match &opts.sim_telemetry {
            Some(Some(path)) => std::fs::write(path, t.to_json())
                .map_err(|e| format!("cannot write telemetry '{path}': {e}"))?,
            Some(None) => eprint!("{}", t.summary()),
            None => {}
        }
        if let Some(path) = &opts.sim_trace {
            let trace = harness
                .telemetry_trace()
                .ok_or("internal: trace requested but not recorded")?;
            std::fs::write(path, trace)
                .map_err(|e| format!("cannot write sim trace '{path}': {e}"))?;
        }
    }
    if opts.sched_stats.is_some() {
        let s = harness
            .sched_stats_report()
            .ok_or("internal: sched stats enabled but no report produced")?;
        obs::counter_add(
            "sim",
            "sched_commit_compares",
            s.commit_net_compares + s.commit_mem_compares,
        );
        match &opts.sched_stats {
            Some(Some(path)) => std::fs::write(path, s.to_json())
                .map_err(|e| format!("cannot write sched stats '{path}': {e}"))?,
            Some(None) => eprint!("{}", s.summary()),
            None => {}
        }
    }
    let mut summary = format!("sim @{name}: quiescent after cycle {}\n", rep.cycles);
    for (i, r) in rep.results.iter().enumerate() {
        summary.push_str(&format!("result{i} = {r}\n"));
    }
    // Further batched lanes, each a full independent stimulus set.
    for (lane, lrep) in reps.iter().enumerate().skip(1) {
        summary.push_str(&format!(
            "lane {lane}: quiescent after cycle {}\n",
            lrep.cycles
        ));
        for (i, r) in lrep.results.iter().enumerate() {
            summary.push_str(&format!("lane {lane} result{i} = {r}\n"));
        }
    }
    Ok((summary, report))
}

/// Render the requested reports (timing, stats, profile) and exit.
fn finish(
    opts: &Options,
    t_parse: std::time::Duration,
    t_verify: std::time::Duration,
    t_opt: std::time::Duration,
    t_emit: std::time::Duration,
    pipeline: &Pipeline,
) -> ExitCode {
    if opts.timing {
        eprintln!(
            "hirc timing: parse {t_parse:?}, verify {t_verify:?}, optimize {t_opt:?}, emit {t_emit:?}"
        );
        if !pipeline.timings_empty() {
            eprint!("{}", pipeline.timing_report());
        }
    }
    if opts.stats {
        eprint!("{}", obs::stats_table());
    }
    if let Some(path) = &opts.stats_file {
        if let Err(e) = std::fs::write(path, obs::stats_json()) {
            eprintln!("hirc: cannot write stats '{path}': {e}");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    }
    if let Some(path) = &opts.profile {
        if let Err(e) = std::fs::write(path, obs::chrome_trace()) {
            eprintln!("hirc: cannot write profile '{path}': {e}");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    }
    ExitCode::SUCCESS
}
