//! HIR suite: umbrella crate re-exporting the whole toolchain.
pub use hir;
pub use hir_codegen;
pub use hir_opt;
pub use hir_verify;
pub use hls;
pub use ir;
pub use kernels;
pub use synth;
pub use verilog;
