// Several independent syntax/semantic errors: the recovering parser must
// report ALL of them in one run, not stop at the first.
%0 = "test.a"() : () -> (i32)
%1 = "test.b"(%99) : (i32) -> (i32)
%2 = "test.c"( : () -> (i32)
%3 = "test.d"() : () -> (i32)
%4 = "test.e"(%98) : (i32) -> (i32)
%5 = "test.f"(%0) : (i32) -> (i32)
