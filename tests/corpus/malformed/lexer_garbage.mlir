// Bytes the lexer itself rejects, mixed with recoverable op syntax.
%0 = "test.a"() : () -> (i32)
$$$ ??? @@@
%1 = "test.b"(%0) : (i32) -> (i32)
