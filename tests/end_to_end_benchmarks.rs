//! Full-stack validation of every paper benchmark: the hand-scheduled HIR
//! design is verified, optimized, compiled to Verilog, simulated as RTL,
//! and compared against both the cycle-accurate interpreter and a software
//! reference. The HLS-baseline form is compiled and checked the same way.

use hir_suite::hir::interp::{ArgValue, Interpreter};
use hir_suite::hir_codegen::testbench::{Harness, HarnessArg};
use hir_suite::kernels::{self, conv, fifo, gemm, histogram, stencil, transpose, workload};

/// Compile an HIR module (optimized) and run its RTL with the harness.
fn run_rtl(
    module: &mut ir::Module,
    func: &str,
    args: &[HarnessArg],
    max_cycles: u64,
) -> hir_suite::hir_codegen::testbench::HarnessReport {
    let (design, _) = kernels::compile_hir(module, true).expect("HIR compile");
    let f = kernels::find_func(module, func);
    let mut h = Harness::new(&design, module, f, args).expect("harness");
    h.run(max_cycles).expect("RTL simulation")
}

#[test]
fn transpose_full_stack() {
    let n = 8u64;
    let nn = (n * n) as usize;
    let input = workload::random_i32s(11, nn);
    let expect = transpose::reference(n, &input);

    let m = transpose::hir_transpose(n, 32);
    let interp = Interpreter::new(&m)
        .run(
            transpose::FUNC,
            &[ArgValue::tensor_from(&input), ArgValue::uninit_tensor(nn)],
        )
        .expect("interp");
    let got: Vec<i128> = interp.tensors[&1].iter().map(|v| v.unwrap()).collect();
    assert_eq!(got, expect, "interpreter");

    let mut m = transpose::hir_transpose(n, 32);
    let rtl = run_rtl(
        &mut m,
        transpose::FUNC,
        &[HarnessArg::mem_from(&input), HarnessArg::zero_mem(nn)],
        50_000,
    );
    assert_eq!(rtl.mems[&1], expect, "RTL after optimization");
}

#[test]
fn stencil_full_stack() {
    let n = 32u64;
    let input = workload::random_bounded(12, n as usize, 1 << 20);
    let expect = stencil::reference(n, &input);

    let m = stencil::hir_stencil(n, 32);
    let interp = Interpreter::new(&m)
        .run(
            stencil::FUNC,
            &[
                ArgValue::tensor_from(&input),
                ArgValue::uninit_tensor(n as usize),
            ],
        )
        .expect("interp");
    let got: Vec<i128> = interp.tensors[&1].iter().map(|v| v.unwrap()).collect();
    assert_eq!(got, expect, "interpreter");

    let mut m = stencil::hir_stencil(n, 32);
    let rtl = run_rtl(
        &mut m,
        stencil::FUNC,
        &[
            HarnessArg::mem_from(&input),
            HarnessArg::zero_mem(n as usize),
        ],
        50_000,
    );
    assert_eq!(rtl.mems[&1], expect, "RTL after optimization");
}

#[test]
fn histogram_full_stack() {
    let (pixels, bins) = (64u64, 16u64);
    let img = workload::random_bounded(13, pixels as usize, bins as i128);
    let expect = histogram::reference(bins, &img);

    let mut m = histogram::hir_histogram(pixels, bins, 32);
    let rtl = run_rtl(
        &mut m,
        histogram::FUNC,
        &[
            HarnessArg::mem_from(&img),
            HarnessArg::zero_mem(bins as usize),
        ],
        50_000,
    );
    assert_eq!(rtl.mems[&1], expect, "RTL");
}

#[test]
fn gemm_full_stack() {
    let n = 4u64;
    let nn = (n * n) as usize;
    let a = workload::random_bounded(14, nn, 50);
    let b = workload::random_bounded(15, nn, 50);
    let expect = gemm::reference(n, &a, &b);

    let mut m = gemm::hir_gemm(n, 32);
    let rtl = run_rtl(
        &mut m,
        gemm::FUNC,
        &[
            HarnessArg::mem_from(&a),
            HarnessArg::mem_from(&b),
            HarnessArg::zero_mem(nn),
        ],
        50_000,
    );
    assert_eq!(rtl.mems[&2], expect, "RTL");
}

#[test]
fn conv_full_stack() {
    let (h, w) = (8u64, 8u64);
    let img = workload::random_bounded(16, (h * w) as usize, 256);
    let expect = conv::reference(h, w, &img);

    let mut m = conv::hir_conv(h, w, 32);
    let rtl = run_rtl(
        &mut m,
        conv::FUNC,
        &[
            HarnessArg::mem_from(&img),
            HarnessArg::zero_mem((h * w) as usize),
        ],
        50_000,
    );
    assert_eq!(rtl.mems[&1], expect, "RTL");
}

#[test]
fn fifo_full_stack() {
    let (depth, n) = (16u64, 32u64);
    let cmds = workload::random_fifo_commands(17, n as usize, depth as usize);
    let din: Vec<i128> = (0..n as i128).map(|x| x * 3 + 1).collect();
    let expect = fifo::reference(n, &cmds, &din);

    let mut m = fifo::hir_fifo(depth, n, 32);
    let rtl = run_rtl(
        &mut m,
        fifo::FUNC,
        &[
            HarnessArg::mem_from(&cmds),
            HarnessArg::mem_from(&din),
            HarnessArg::zero_mem(n as usize),
        ],
        50_000,
    );
    for i in 0..n as usize {
        if let Some(v) = expect[i] {
            assert_eq!(rtl.mems[&2][i], v, "dout[{i}]");
        }
    }
}

#[test]
fn hls_compiled_benchmarks_match_references_in_rtl() {
    // The HLS baseline's output is real RTL too: simulate the transpose.
    let n = 8u64;
    let nn = (n * n) as usize;
    let k = transpose::hls_transpose(n, false);
    let c = hir_suite::hls::compile(&k, &hir_suite::hls::SchedOptions::default()).expect("hls");
    let input = workload::random_i32s(18, nn);
    let expect = transpose::reference(n, &input);
    let f = kernels::find_func(&c.hir_module, "hls_transpose");
    let mut h = Harness::new(
        &c.design,
        &c.hir_module,
        f,
        &[HarnessArg::mem_from(&input), HarnessArg::zero_mem(nn)],
    )
    .expect("harness");
    let rtl = h.run(50_000).expect("RTL simulation");
    assert_eq!(rtl.mems[&1], expect);
}

#[test]
fn interpreter_and_rtl_latencies_agree_when_unoptimized() {
    // Latency agreement (within a small constant) across substrates.
    for (name, mut m, args) in [
        (
            "transpose",
            transpose::hir_transpose(8, 32),
            vec![
                HarnessArg::mem_from(&[1; 64].map(i128::from)),
                HarnessArg::zero_mem(64),
            ],
        ),
        (
            "stencil_1d",
            stencil::hir_stencil(32, 32),
            vec![
                HarnessArg::mem_from(&[2; 32].map(i128::from)),
                HarnessArg::zero_mem(32),
            ],
        ),
    ] {
        let interp_args: Vec<ArgValue> = args
            .iter()
            .map(|a| match a {
                HarnessArg::Mem(d) => ArgValue::Tensor(d.iter().map(|&v| Some(v)).collect()),
                HarnessArg::Int(v) => ArgValue::Int(*v),
                HarnessArg::SharedWith(i) => ArgValue::SharedWith(*i),
            })
            .collect();
        let i_report = Interpreter::new(&m)
            .run(name, &interp_args)
            .expect("interp");
        let (design, _) = kernels::compile_hir(&mut m, false).expect("compile");
        let f = kernels::find_func(&m, name);
        let mut h = Harness::new(&design, &m, f, &args).expect("harness");
        let rtl = h.run(50_000).expect("RTL");
        let diff = (rtl.cycles as i64 - i_report.cycles as i64).abs();
        assert!(
            diff <= 4,
            "{name}: RTL {} vs interp {}",
            rtl.cycles,
            i_report.cycles
        );
    }
}
