//! End-to-end tests of the observability surface: optimization remarks,
//! schedule/resource reports, machine-readable stats, and simulator VCD
//! waveforms, all driven through the `hirc` binary.

use std::path::PathBuf;
use std::process::Command;

fn hirc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hirc"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hirc_obs_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Satellite (c): golden VCD for `examples/mac.mlir`. The simulated design
/// is fully deterministic, so two runs must produce byte-identical
/// waveforms with the expected structure and the known result value.
#[test]
fn mac_example_dumps_golden_vcd() {
    let dir = tmp("vcd");
    let run = |path: &PathBuf| {
        let out = hirc()
            .arg(example("mac.mlir"))
            .arg("--emit=sim")
            .arg(format!("--sim-vcd={}", path.display()))
            .output()
            .expect("run hirc");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let (w1, w2) = (dir.join("w1.vcd"), dir.join("w2.vcd"));
    let stdout = run(&w1);
    // mac(3, 6, 0): call @mult(3, 6) -> 18, + c delayed = 18.
    assert!(stdout.contains("sim @mac"), "{stdout}");
    assert!(stdout.contains("result0 = 18"), "{stdout}");

    let vcd = std::fs::read_to_string(&w1).unwrap();
    assert!(vcd.contains("$timescale 1ns $end"), "missing timescale");
    assert!(vcd.contains("$var wire 1"), "missing 1-bit vars (clk)");
    assert!(vcd.contains(" clk "), "clk not declared:\n{vcd}");
    assert!(
        vcd.contains("$enddefinitions $end"),
        "missing enddefinitions"
    );
    assert!(vcd.contains("\n#0\n"), "missing time-zero marker");
    // 18 = 0b10010 must appear as a bus value change once the result lands.
    assert!(
        vcd.contains("b10010 "),
        "result value 18 never appears:\n{vcd}"
    );

    run(&w2);
    let a = std::fs::read(&w1).unwrap();
    let b = std::fs::read(&w2).unwrap();
    assert_eq!(a, b, "VCD dumps must be byte-identical across runs");
}

/// Satellite (c): `--remarks` JSONL is byte-identical whether the pass
/// pipeline runs serially or across four worker threads, every line is
/// strict JSON, and the multi_kernel example produces at least one applied
/// remark from each of CSE, constant folding, and strength reduction.
#[test]
fn remarks_jsonl_is_deterministic_across_threads() {
    let dir = tmp("remarks");
    let run = |threads: u32, path: &PathBuf| {
        let out = hirc()
            .arg(example("multi_kernel.mlir"))
            .arg("--opt")
            .arg(format!("--threads={threads}"))
            .arg(format!("--remarks={}", path.display()))
            .arg("--emit=ir")
            .output()
            .expect("run hirc");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let (r1, r4) = (dir.join("t1.jsonl"), dir.join("t4.jsonl"));
    run(1, &r1);
    run(4, &r4);
    let t1 = std::fs::read_to_string(&r1).unwrap();
    let t4 = std::fs::read_to_string(&r4).unwrap();
    assert_eq!(t1, t4, "remark stream must not depend on --threads");

    let mut applied_cse = 0;
    let mut applied_fold = 0;
    let mut applied_strength = 0;
    let mut missed = 0;
    for line in t1.lines() {
        let v = obs::json::parse(line).unwrap_or_else(|e| panic!("bad JSONL: {e}\n{line}"));
        let o = v.as_object().expect("remark is an object");
        let pass = o.get("pass").and_then(|p| p.as_str()).expect("pass field");
        let status = o
            .get("status")
            .and_then(|s| s.as_str())
            .expect("status field");
        assert!(
            status == "applied" || status == "missed",
            "unknown status {status}"
        );
        match (pass, status) {
            ("hir-cse", "applied") => applied_cse += 1,
            ("hir-fold-constants", "applied") => applied_fold += 1,
            ("hir-strength-reduce", "applied") => applied_strength += 1,
            _ => {}
        }
        if status == "missed" {
            missed += 1;
        }
    }
    assert!(applied_cse >= 1, "no applied CSE remark:\n{t1}");
    assert!(applied_fold >= 1, "no applied fold remark:\n{t1}");
    assert!(applied_strength >= 1, "no applied strength remark:\n{t1}");
    assert!(missed >= 1, "no missed remark:\n{t1}");
}

/// The full acceptance invocation: all three report artifacts in one run,
/// each strict-JSON-parseable, with the expected shape.
#[test]
fn report_flags_write_strict_json_artifacts() {
    let dir = tmp("reports");
    let (r, s, u, st, v) = (
        dir.join("r.jsonl"),
        dir.join("s.json"),
        dir.join("u.json"),
        dir.join("stats.json"),
        dir.join("out.v"),
    );
    let out = hirc()
        .arg(example("multi_kernel.mlir"))
        .arg("--opt")
        .arg(format!("--remarks={}", r.display()))
        .arg(format!("--schedule-report={}", s.display()))
        .arg(format!("--resource-report={}", u.display()))
        .arg(format!("--stats={}", st.display()))
        .arg("--emit=verilog")
        .arg("-o")
        .arg(&v)
        .output()
        .expect("run hirc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read_to_string(&v).unwrap().contains("module "));

    // Schedule report: one entry per non-external function, each op row
    // carrying root/offset/latency.
    let sched = obs::json::parse(&std::fs::read_to_string(&s).unwrap()).expect("schedule JSON");
    let funcs = sched
        .as_object()
        .unwrap()
        .get("functions")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(funcs.len(), 4, "mac0..mac2 + alu (extern mult excluded)");
    for f in funcs {
        let f = f.as_object().unwrap();
        assert!(f.get("pipeline_depth").unwrap().as_f64().is_some());
        for op in f.get("ops").unwrap().as_array().unwrap() {
            let op = op.as_object().unwrap();
            for key in ["op", "root"] {
                assert!(op.get(key).unwrap().as_str().is_some(), "missing {key}");
            }
            for key in ["offset", "latency"] {
                assert!(op.get(key).unwrap().as_f64().is_some(), "missing {key}");
            }
        }
    }

    // Resource report: same function set, with register and arithmetic
    // counts; the alu function keeps at least one adder after CSE.
    let res = obs::json::parse(&std::fs::read_to_string(&u).unwrap()).expect("resource JSON");
    let rfuncs = res
        .as_object()
        .unwrap()
        .get("functions")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(rfuncs.len(), 4);
    let alu = rfuncs
        .iter()
        .find(|f| {
            f.as_object()
                .and_then(|o| o.get("function"))
                .and_then(|n| n.as_str())
                == Some("alu")
        })
        .expect("alu in resource report");
    let alu = alu.as_object().unwrap();
    let arith = alu.get("arith").unwrap().as_object().unwrap();
    assert!(arith.get("add").unwrap().as_f64().unwrap() >= 1.0);
    // x*12 strength-reduces to shift-adds, visible as shifter units.
    assert!(arith.get("shl").unwrap().as_f64().unwrap() >= 1.0);
    // The mac functions register their delayed operands and call results.
    let mac0 = rfuncs[0].as_object().unwrap();
    assert!(mac0.get("registers").unwrap().as_f64().unwrap() >= 1.0);
    assert!(mac0.get("delay_lines").unwrap().as_f64().unwrap() >= 1.0);

    // Stats file: strict JSON from the obs layer.
    let stats = obs::json::parse(&std::fs::read_to_string(&st).unwrap()).expect("stats JSON");
    assert!(stats.as_object().is_some());

    // Remarks: at least one line, all parseable (detail covered above).
    let remarks = std::fs::read_to_string(&r).unwrap();
    assert!(remarks.lines().count() >= 3, "{remarks}");
    for line in remarks.lines() {
        obs::json::parse(line).expect("remark line");
    }
}

/// Satellite (a): `--rpass=REGEX` echoes matching remarks through the
/// diagnostic engine with `remark:` severity.
#[test]
fn rpass_echoes_matching_remarks_as_diagnostics() {
    let out = hirc()
        .arg(example("multi_kernel.mlir"))
        .arg("--opt")
        .arg("--rpass=strength")
        .arg("--emit=ir")
        .output()
        .expect("run hirc");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("remark:"), "no remark diagnostics:\n{err}");
    assert!(err.contains("hir-strength-reduce"), "{err}");
    assert!(
        !err.contains("hir-cse"),
        "--rpass=strength must filter out CSE remarks:\n{err}"
    );

    // Without --rpass (and without --remarks) nothing is echoed.
    let out = hirc()
        .arg(example("multi_kernel.mlir"))
        .arg("--opt")
        .arg("--emit=ir")
        .output()
        .expect("run hirc");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("remark:"), "{err}");
}

/// Acceptance: the schedule report's per-op offsets agree with the validity
/// analysis on the `examples/schedule_errors.rs` fixtures (the valid
/// variants of the paper's Figure 1 and Figure 2 designs).
#[test]
fn schedule_report_agrees_with_validity_on_figure_fixtures() {
    for m in [
        kernels::errors::figure1_array_add(true),
        kernels::errors::figure2_mac(2),
    ] {
        let report = hir_verify::schedule_report(&m);
        let symbols = ir::SymbolTable::build(&m);
        for &top in m.top_ops() {
            let Some(func) = hir::ops::FuncOp::wrap(&m, top) else {
                continue;
            };
            if func.is_external(&m) {
                continue;
            }
            let mut diags = ir::DiagnosticEngine::new();
            let info = hir_verify::analyze_function(&m, func, &symbols, &mut diags);
            assert!(!diags.has_errors(), "{}", diags.render());
            let fr = report
                .functions
                .iter()
                .find(|f| f.name == func.name(&m))
                .expect("function in report");
            assert!(!fr.ops.is_empty(), "no rows for {}", fr.name);
            for row in &fr.ops {
                // Only ops that produce a value whose validity the analysis
                // tracks at a known latency.
                if row.op != hir::opname::DELAY
                    && row.op != hir::opname::MEM_READ
                    && row.op != hir::opname::CALL
                {
                    continue;
                }
                let op = m
                    .collect_all_ops()
                    .into_iter()
                    .find(|&o| {
                        m.is_live(o)
                            && m.op(o).name().as_str() == row.op
                            && m.op(o).loc().to_string() == row.loc
                            && hir::ops::time_operand(&m, o) == Some(row.root_value)
                            && hir::ops::time_offset(&m, o) == row.offset
                    })
                    .expect("report row corresponds to a live op");
                let result = m.op(op).results()[0];
                match info.validity.get(&result) {
                    Some(hir_verify::Validity::At { root, offset }) => {
                        assert_eq!(*root, row.root_value, "root mismatch on {}", row.op);
                        assert_eq!(
                            *offset,
                            row.offset + row.latency,
                            "offset mismatch on {} at {}",
                            row.op,
                            row.loc
                        );
                    }
                    other => panic!("unexpected validity {other:?} for {}", row.op),
                }
            }
        }
    }
}

/// Flag validation: `--sim-vcd` is meaningless without the simulator
/// backend and must be rejected as a usage error (exit code 2).
#[test]
fn sim_vcd_requires_sim_emit() {
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--sim-vcd=/tmp/never.vcd")
        .output()
        .expect("run hirc");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--sim-vcd requires --emit=sim"), "{err}");
}

/// Golden telemetry counts for the mac example: the design and stimulus are
/// fully deterministic, so the counter values are exact, and two runs must
/// produce byte-identical JSON.
#[test]
fn mac_example_emits_golden_telemetry() {
    let dir = tmp("telemetry");
    let run = |path: &PathBuf| {
        let out = hirc()
            .arg(example("mac.mlir"))
            .arg("--emit=sim")
            .arg(format!("--sim-telemetry={}", path.display()))
            .output()
            .expect("run hirc");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let (t1, t2) = (dir.join("t1.json"), dir.join("t2.json"));
    run(&t1);
    run(&t2);
    assert_eq!(
        std::fs::read(&t1).unwrap(),
        std::fs::read(&t2).unwrap(),
        "telemetry JSON must be byte-identical across runs"
    );

    let text = std::fs::read_to_string(&t1).unwrap();
    let doc = obs::json::parse(&text).expect("strict telemetry JSON");
    let num = |key: &str| doc.get(key).and_then(|v| v.as_f64()).expect(key);
    // mac latency is 2, the harness runs 8 drain cycles past quiescence.
    assert_eq!(num("cycles"), 11.0, "{text}");
    // Every net except the two clocks toggles during the mult(3,6)+9 run.
    assert!(num("toggle_coverage") >= 0.9, "{text}");
    let insns = |key: &str, field: &str| {
        doc.get(key)
            .and_then(|v| v.get(field))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("{key}.{field}"))
    };
    // Golden instruction counters: 23 settle insns × 11 cycles (+ 3 warm-up
    // evaluations at t=0), 15 step insns × 11 cycles.
    assert_eq!(insns("settle_insns", "len"), 23.0, "{text}");
    assert_eq!(insns("settle_insns", "executed"), 299.0, "{text}");
    assert_eq!(insns("settle_insns", "changed"), 29.0, "{text}");
    assert_eq!(insns("step_insns", "len"), 15.0, "{text}");
    assert_eq!(insns("step_insns", "executed"), 165.0, "{text}");
    assert_eq!(insns("step_insns", "changed"), 19.0, "{text}");

    // Dynamic utilization joins the resource report's units to nets: the
    // mac adder produces exactly one new sum in the whole run.
    let units = doc.get("units").and_then(|u| u.as_array()).expect("units");
    let adder = units
        .iter()
        .find(|u| u.get("unit").and_then(|v| v.as_str()) == Some("arith.add"))
        .unwrap_or_else(|| panic!("no arith.add unit: {text}"));
    assert_eq!(adder.get("mode").and_then(|v| v.as_str()), Some("toggle"));
    assert_eq!(
        adder.get("active_cycles").and_then(|v| v.as_f64()),
        Some(1.0),
        "{text}"
    );
    // The result lands once: result0 toggles in exactly one cycle.
    let nets = doc.get("nets").and_then(|n| n.as_array()).expect("nets");
    let result0 = nets
        .iter()
        .find(|n| n.get("name").and_then(|v| v.as_str()) == Some("result0"))
        .expect("result0 net");
    assert_eq!(
        result0.get("toggle_cycles").and_then(|v| v.as_f64()),
        Some(1.0),
        "{text}"
    );
    // Per-cone quiescence fractions are present and sane.
    let cones = doc
        .get("settle_cones")
        .and_then(|c| c.as_array())
        .expect("settle_cones");
    assert!(!cones.is_empty(), "{text}");
    for c in cones {
        let f = c
            .get("quiescent_fraction")
            .and_then(|v| v.as_f64())
            .expect("fraction");
        assert!((0.0..=1.0).contains(&f), "{text}");
    }
}

/// The differential check behind the telemetry plane: the bytecode
/// interpreter and the tree-walk oracle must report identical counters and
/// identical traces on the paper's Figure 1 and Figure 2 designs.
#[test]
fn engines_report_identical_telemetry_on_figure_fixtures() {
    use hir_codegen::testbench::{Harness, HarnessArg};
    let a: Vec<i128> = (0..128).map(|x| x % 23 - 11).collect();
    let b: Vec<i128> = (0..128).map(|x| 3 * x % 17 - 8).collect();
    let fixtures: Vec<(ir::Module, &str, Vec<HarnessArg>)> = vec![
        (
            kernels::errors::figure1_array_add(true),
            "Array_Add",
            vec![
                HarnessArg::mem_from(&a),
                HarnessArg::mem_from(&b),
                HarnessArg::zero_mem(128),
            ],
        ),
        (
            kernels::errors::figure2_mac(2),
            "mac",
            vec![HarnessArg::Int(3), HarnessArg::Int(6), HarnessArg::Int(9)],
        ),
    ];
    for (mut m, name, args) in fixtures {
        let (mut design, _) = kernels::compile_hir(&mut m, true).expect("compile");
        for stub in hir_codegen::extern_stubs(&m).expect("stubs") {
            design.add(stub);
        }
        let run = |engine: verilog::Engine| {
            let func = kernels::find_func(&m, name);
            let mut h = Harness::new(&design, &m, func, &args).expect("harness");
            h.set_engine(engine);
            h.enable_telemetry(true);
            let rep = h.run(100_000).expect("run");
            (
                rep,
                h.telemetry_report(None).expect("report"),
                h.telemetry_trace().expect("trace"),
            )
        };
        let (rep_b, telem_b, trace_b) = run(verilog::Engine::Bytecode);
        let (rep_t, telem_t, trace_t) = run(verilog::Engine::TreeWalk);
        assert_eq!(rep_b.results, rep_t.results, "{name}: results differ");
        assert_eq!(telem_b, telem_t, "{name}: engines must count identically");
        assert_eq!(trace_b, trace_t, "{name}: traces must be identical");
        assert_eq!(
            telem_b.to_json(),
            telem_t.to_json(),
            "{name}: JSON must match"
        );
    }
}

/// Telemetry is a pure observer: a combined telemetry+VCD run must produce
/// a waveform byte-identical to a VCD-only run.
#[test]
fn telemetry_does_not_perturb_vcd_waveforms() {
    let dir = tmp("telem_vcd");
    let (plain, combined, telem, trace) = (
        dir.join("plain.vcd"),
        dir.join("combined.vcd"),
        dir.join("telem.json"),
        dir.join("trace.json"),
    );
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--emit=sim")
        .arg(format!("--sim-vcd={}", plain.display()))
        .output()
        .expect("run hirc");
    assert!(out.status.success());
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--emit=sim")
        .arg(format!("--sim-vcd={}", combined.display()))
        .arg(format!("--sim-telemetry={}", telem.display()))
        .arg(format!("--sim-trace={}", trace.display()))
        .output()
        .expect("run hirc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&plain).unwrap(),
        std::fs::read(&combined).unwrap(),
        "telemetry must not change the waveform"
    );
    obs::json::parse(&std::fs::read_to_string(&telem).unwrap()).expect("telemetry JSON");
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let doc = obs::json::parse(&trace_text).expect("trace JSON");
    assert!(doc.get("traceEvents").is_some(), "{trace_text}");
    assert!(trace_text.contains("\"busy\""), "{trace_text}");
    assert!(trace_text.contains("\"quiescent\""), "{trace_text}");
}

/// Flag validation: the telemetry flags are meaningless without the
/// simulator backend and must be rejected as usage errors (exit code 2).
#[test]
fn sim_telemetry_flags_require_sim_emit() {
    for flag in ["--sim-telemetry", "--sim-telemetry=/tmp/never.json"] {
        let out = hirc()
            .arg(example("mac.mlir"))
            .arg(flag)
            .output()
            .expect("run hirc");
        assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--sim-telemetry requires --emit=sim"), "{err}");
    }
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--sim-trace=/tmp/never.json")
        .output()
        .expect("run hirc");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--sim-trace requires --emit=sim"), "{err}");
}

/// Flag validation: scheduler statistics ride the simulator, so both forms
/// of `--sched-stats` are usage errors (exit 2) without `--emit=sim`.
#[test]
fn sched_stats_requires_sim_emit() {
    for flag in ["--sched-stats", "--sched-stats=/tmp/never.json"] {
        let out = hirc()
            .arg(example("mac.mlir"))
            .arg(flag)
            .output()
            .expect("run hirc");
        assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--sched-stats requires --emit=sim"), "{err}");
    }
}

/// Golden scheduler statistics for the mac example: the report is derived
/// purely from deterministic event counts, so for each engine two runs must
/// be byte-identical; the bytecode engine must report the trivially-full
/// dirty set (every cone runs every cycle, no wake walks); and the event
/// engine's dirty set must be bounded by it.
#[test]
fn mac_example_emits_golden_sched_stats() {
    let dir = tmp("sched_stats");
    let run = |engine: &str, threads: u32, path: &PathBuf| {
        let out = hirc()
            .arg(example("mac.mlir"))
            .arg("--emit=sim")
            .arg(format!("--sim-engine={engine}"))
            .arg(format!("--threads={threads}"))
            .arg(format!("--sched-stats={}", path.display()))
            .output()
            .expect("run hirc");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let mut docs = Vec::new();
    for engine in ["bytecode", "event"] {
        let (p1, p2, p4) = (
            dir.join(format!("{engine}_1.json")),
            dir.join(format!("{engine}_2.json")),
            dir.join(format!("{engine}_t4.json")),
        );
        run(engine, 1, &p1);
        run(engine, 1, &p2);
        run(engine, 4, &p4);
        let text = std::fs::read_to_string(&p1).unwrap();
        assert_eq!(
            text,
            std::fs::read_to_string(&p2).unwrap(),
            "{engine}: sched stats must be byte-identical across runs"
        );
        assert_eq!(
            text,
            std::fs::read_to_string(&p4).unwrap(),
            "{engine}: sched stats must not depend on --threads"
        );
        let doc = obs::json::parse(&text).expect("strict sched-stats JSON");
        assert_eq!(
            doc.get("engine").and_then(|v| v.as_str()),
            Some(engine),
            "{text}"
        );
        // Same deterministic run the telemetry test pins: 11 cycles.
        assert_eq!(doc.get("cycles").and_then(|v| v.as_f64()), Some(11.0));
        let num = |path: &[&str]| {
            let mut v = &doc;
            for key in path {
                v = v.get(key).unwrap_or_else(|| panic!("{}: {text}", key));
            }
            v.as_f64()
                .unwrap_or_else(|| panic!("{}: {text}", path.join(".")))
        };
        // The 2ns/event cost model must account for all engine work.
        let share = num(&["cycle_share", "interpreter", "share"])
            + num(&["cycle_share", "wake_walks", "share"])
            + num(&["cycle_share", "commit_compares", "share"]);
        assert!((share - 1.0).abs() < 1e-4, "shares must sum to 1: {text}");
        // Wake attribution covers both planes of the design.
        for plane in ["settle", "step"] {
            let cones = doc
                .get("wakes")
                .and_then(|w| w.get(plane))
                .and_then(|v| v.as_array())
                .unwrap_or_else(|| panic!("wakes.{plane}: {text}"));
            assert!(!cones.is_empty(), "wakes.{plane} empty: {text}");
        }
        docs.push((engine, doc, text));
    }
    let (_, bc, bc_text) = &docs[0];
    let (_, ev, ev_text) = &docs[1];
    let hist = |doc: &obs::json::Value, text: &str, field: &str| {
        let h = doc.get("dirty_cones").unwrap_or_else(|| panic!("{text}"));
        h.get(field)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("dirty_cones.{field}: {text}"))
    };
    // Full-tape engines re-run every step cone every cycle: the per-cycle
    // dirty-set occupancy histogram is a spike at the total cone count.
    let total = bc
        .get("step_cones")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("{bc_text}"));
    assert!(total > 0.0, "{bc_text}");
    assert_eq!(hist(bc, bc_text, "min"), total, "{bc_text}");
    assert_eq!(hist(bc, bc_text, "max"), total, "{bc_text}");
    // ... and perform no wake-list walks at all.
    assert_eq!(
        bc.get("net_wake_walk")
            .and_then(|v| v.get("count"))
            .and_then(|v| v.as_f64()),
        Some(0.0),
        "{bc_text}"
    );
    // The event scheduler only ever wakes a subset of that.
    assert!(hist(ev, ev_text, "max") <= total, "{ev_text}");
    assert_eq!(
        ev.get("step_cones").and_then(|v| v.as_f64()),
        Some(total),
        "same design, same cone partition: {ev_text}"
    );
}

/// Scheduler statistics are a pure observer: a combined stats+VCD run must
/// produce a waveform byte-identical to a VCD-only run, and the Chrome
/// trace gains a dirty-cone counter track.
#[test]
fn sched_stats_do_not_perturb_waveforms() {
    let dir = tmp("sched_vcd");
    let (plain, combined, stats, trace) = (
        dir.join("plain.vcd"),
        dir.join("combined.vcd"),
        dir.join("stats.json"),
        dir.join("trace.json"),
    );
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--emit=sim")
        .arg("--sim-engine=event")
        .arg(format!("--sim-vcd={}", plain.display()))
        .output()
        .expect("run hirc");
    assert!(out.status.success());
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--emit=sim")
        .arg("--sim-engine=event")
        .arg(format!("--sim-vcd={}", combined.display()))
        .arg(format!("--sched-stats={}", stats.display()))
        .arg(format!("--sim-trace={}", trace.display()))
        .output()
        .expect("run hirc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&plain).unwrap(),
        std::fs::read(&combined).unwrap(),
        "sched stats must not change the waveform"
    );
    obs::json::parse(&std::fs::read_to_string(&stats).unwrap()).expect("sched stats JSON");
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    obs::json::parse(&trace_text).expect("trace JSON");
    assert!(
        trace_text.contains("sched/dirty_cones"),
        "missing dirty-cone counter track: {trace_text}"
    );
}

/// A bad `--rpass` pattern is a usage error, not a crash.
#[test]
fn rpass_rejects_bad_regex() {
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--rpass=[unclosed")
        .output()
        .expect("run hirc");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--rpass"));
}
