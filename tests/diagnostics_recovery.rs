//! Parser error recovery and crash-reproducer round-trip tests.
//!
//! The corpus under `tests/corpus/malformed/` holds inputs that are wrong in
//! more than one place; the recovering parsers must surface every problem in
//! a single run (the classic fix-one-error-recompile-repeat loop breaker)
//! and never panic on any of them.

use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/malformed")
}

fn is_pretty(src: &str) -> bool {
    src.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with("//"))
        .is_some_and(|l| l.starts_with("hir.func"))
}

#[test]
fn every_malformed_corpus_file_yields_diagnostics_without_panic() {
    let mut seen = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.unwrap().path();
        let src = std::fs::read_to_string(&path).unwrap();
        let n_errors = if is_pretty(&src) {
            hir::parse_pretty_recover(&src, 0).errors.len()
        } else {
            ir::parse_module_recover(&src, 0).errors.len()
        };
        assert!(
            n_errors >= 1,
            "{}: a malformed corpus file must produce diagnostics",
            path.display()
        );
        seen += 1;
    }
    assert!(seen >= 3, "corpus should hold several malformed files");
}

#[test]
fn multi_error_file_reports_every_error_in_one_run() {
    let src = std::fs::read_to_string(corpus_dir().join("multi_errors.mlir")).unwrap();
    let r = ir::parse_module_recover(&src, 0);
    assert!(
        r.errors.len() >= 3,
        "expected at least 3 diagnostics, got {}: {:?}",
        r.errors.len(),
        r.errors
    );
    assert!(!r.hit_error_limit);
    // Every error carries a usable position inside the file.
    for e in &r.errors {
        assert!(e.line >= 1, "{e}");
        assert!(e.col >= 1, "{e}");
    }
    // The recovered module keeps the parseable ops and still prints.
    assert!(r.module.op_count() >= 3);
    let _ = ir::print_module(&r.module);
}

#[test]
fn pretty_recovery_reports_each_broken_function() {
    let src = std::fs::read_to_string(corpus_dir().join("broken_funcs.hir")).unwrap();
    let r = hir::parse_pretty_recover(&src, 0);
    assert!(
        r.errors.len() >= 2,
        "one error per broken function, got {:?}",
        r.errors
    );
    // The good function in the middle survives recovery.
    let printed = ir::print_module(&r.module);
    assert!(printed.contains("good"), "{printed}");
}

#[test]
fn error_limit_truncates_the_flood() {
    let src: String = (0..40)
        .map(|i| format!("%{i} = \"t.op\"(%{}) : (i32) -> (i32)\n", i + 100))
        .collect();
    let r = ir::parse_module_recover(&src, 5);
    assert_eq!(r.errors.len(), 5);
    assert!(r.hit_error_limit);
}

#[test]
fn reproducer_round_trips_through_the_parser() {
    let m = kernels::transpose::hir_transpose(4, 32);
    let ir_text = ir::print_module(&m);
    let repro = ir::format_reproducer(
        "pass 'hir-retime' panicked: boom",
        &["hir-retime".to_string(), "hir-cse".to_string()],
        &ir_text,
    );
    // The header parses back...
    let parsed = ir::parse_reproducer(&repro).expect("reproducer header detected");
    assert_eq!(parsed.pipeline, vec!["hir-retime", "hir-cse"]);
    assert!(parsed.error.contains("boom"));
    // ...and the whole file is an ordinary module (comments are skipped).
    let m2 = ir::parse_module(&parsed.ir).expect("reproducer body must re-parse");
    assert_eq!(m2.op_count(), m.op_count());
    // Ordinary modules are not mistaken for reproducers.
    assert!(ir::parse_reproducer(&ir_text).is_none());
}

#[test]
fn recovered_modules_are_safe_to_print_in_both_forms() {
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.unwrap().path();
        let src = std::fs::read_to_string(&path).unwrap();
        let module = if is_pretty(&src) {
            hir::parse_pretty_recover(&src, 0).module
        } else {
            ir::parse_module_recover(&src, 0).module
        };
        // Partially recovered IR must not break either printer.
        let _ = ir::print_module(&module);
        let _ = hir::pretty_module(&module);
    }
}
