//! Property-based tests over the core invariants:
//!
//! * the textual IR round-trips (print → parse → print is a fixpoint);
//! * memref banking is a bijection onto flat storage;
//! * the optimizer preserves interpreter semantics on random expression
//!   designs;
//! * the generated RTL matches the interpreter on random workloads;
//! * the HIR FIFO matches the queue model under random command streams;
//! * random HLS kernels compute the same function as direct evaluation.

use hir_suite::hir::interp::{ArgValue, Interpreter};
use hir_suite::hir::types::{Dim, MemKind, MemrefInfo, Port};
use hir_suite::hir::HirBuilder;
use hir_suite::hir_codegen::testbench::{Harness, HarnessArg};
use hir_suite::ir::Type;
use hir_suite::kernels;
use proptest::prelude::*;

// ------------------------------------------------------------ IR round-trip

/// A random flat module of pure ops: constants feeding adds/xors.
fn arb_flat_module() -> impl Strategy<Value = ir::Module> {
    proptest::collection::vec((any::<i32>(), 0u8..3), 1..20).prop_map(|ops| {
        let mut m = ir::Module::new();
        let mut values: Vec<ir::ValueId> = Vec::new();
        for (c, kind) in ops {
            let op = if values.len() < 2 || kind == 0 {
                let mut attrs = ir::AttrMap::new();
                attrs.insert("value".into(), ir::Attribute::int(c as i128, 32));
                m.create_op(
                    "t.const",
                    vec![],
                    vec![Type::int(32)],
                    attrs,
                    ir::Location::unknown(),
                )
            } else {
                let a = values[(c as usize) % values.len()];
                let b = values[(c as usize / 7) % values.len()];
                let name = if kind == 1 { "t.add" } else { "t.xor" };
                m.create_op(
                    name,
                    vec![a, b],
                    vec![Type::int(32)],
                    ir::AttrMap::new(),
                    ir::Location::unknown(),
                )
            };
            m.push_top(op);
            values.push(m.op(op).results()[0]);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn printed_ir_reparses_to_fixpoint(m in arb_flat_module()) {
        let text = ir::print_module(&m);
        let reparsed = ir::parse_module(&text).expect("parse printed IR");
        let text2 = ir::print_module(&reparsed);
        prop_assert_eq!(text, text2);
    }
}

// -------------------------------------------------------- banking bijection

fn arb_dims() -> impl Strategy<Value = Vec<Dim>> {
    proptest::collection::vec((1u64..5, any::<bool>()), 1..4).prop_map(|dims| {
        dims.into_iter()
            .map(|(n, dist)| {
                if dist {
                    Dim::Distributed(n)
                } else {
                    Dim::Packed(n)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flat_index_is_a_bijection(dims in arb_dims()) {
        let info = MemrefInfo::new(dims.clone(), Type::int(8), Port::Read, MemKind::BlockRam);
        let total = info.num_elements();
        let mut seen = vec![false; total as usize];
        let mut coords = vec![0u64; dims.len()];
        loop {
            let f = info.flat_index(&coords);
            prop_assert!(f < total);
            prop_assert!(!seen[f as usize], "collision at {:?}", coords);
            seen[f as usize] = true;
            // Also: flat = bank * bank_size + linear.
            prop_assert_eq!(
                f,
                info.bank_index(&coords) * info.bank_size() + info.linear_index(&coords)
            );
            // Advance odometer; stop after the last coordinate wraps.
            let mut k = dims.len();
            let mut done = false;
            loop {
                if k == 0 {
                    break;
                }
                k -= 1;
                coords[k] += 1;
                if coords[k] < dims[k].size() {
                    break;
                }
                coords[k] = 0;
                if k == 0 {
                    done = true;
                    break;
                }
            }
            if done {
                break;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}

// ------------------------------------------- optimizer preserves semantics

/// A random combinational design: out = f(x, y) over adds/sub/mult/shifts
/// with random constants, wrapped in a function returning the result.
#[derive(Clone, Debug)]
enum ExprTree {
    X,
    Y,
    Const(i8),
    Bin(u8, Box<ExprTree>, Box<ExprTree>),
}

fn arb_expr() -> impl Strategy<Value = ExprTree> {
    let leaf = prop_oneof![
        Just(ExprTree::X),
        Just(ExprTree::Y),
        any::<i8>().prop_map(ExprTree::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        (0u8..5, inner.clone(), inner)
            .prop_map(|(k, a, b)| ExprTree::Bin(k, Box::new(a), Box::new(b)))
    })
}

fn build_expr(hb: &mut HirBuilder, e: &ExprTree, x: ir::ValueId, y: ir::ValueId) -> ir::ValueId {
    match e {
        ExprTree::X => x,
        ExprTree::Y => y,
        ExprTree::Const(c) => hb.typed_const(*c as i64, Type::int(32)),
        ExprTree::Bin(k, a, b) => {
            let va = build_expr(hb, a, x, y);
            let vb = build_expr(hb, b, x, y);
            match k % 5 {
                0 => hb.add(va, vb),
                1 => hb.sub(va, vb),
                2 => hb.mult(va, vb),
                3 => hb.and(va, vb),
                _ => hb.xor(va, vb),
            }
        }
    }
}

fn eval_expr(e: &ExprTree, x: i32, y: i32) -> i32 {
    match e {
        ExprTree::X => x,
        ExprTree::Y => y,
        ExprTree::Const(c) => *c as i32,
        ExprTree::Bin(k, a, b) => {
            let va = eval_expr(a, x, y);
            let vb = eval_expr(b, x, y);
            match k % 5 {
                0 => va.wrapping_add(vb),
                1 => va.wrapping_sub(vb),
                2 => va.wrapping_mul(vb),
                3 => va & vb,
                _ => va ^ vb,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_combinational_semantics(
        e in arb_expr(),
        x in any::<i32>(),
        y in any::<i32>(),
    ) {
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32)), ("y", Type::int(32))], &[0]);
        let args = f.args(hb.module());
        let out = build_expr(&mut hb, &e, args[0], args[1]);
        hb.return_(&[out]);
        let mut m = hb.finish();

        let run = |m: &ir::Module| {
            Interpreter::new(m)
                .run("k", &[ArgValue::Int(x as i128), ArgValue::Int(y as i128)])
                .expect("simulate")
                .results[0] as i32
        };
        let before = run(&m);
        prop_assert_eq!(before, eval_expr(&e, x, y), "interpreter vs direct eval");
        hir_suite::hir_opt::optimize(&mut m).expect("optimize");
        let after = run(&m);
        prop_assert_eq!(before, after, "optimization changed semantics");
    }
}

// ----------------------------------------------- interpreter vs RTL on vadd

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rtl_matches_interpreter_on_random_scaled_add(
        n in 2u64..24,
        scale in 0i64..16,
        data in proptest::collection::vec(-1000i64..1000, 24),
    ) {
        // C[i] = A[i] * scale + A[i]  (exercises strength reduction too).
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[n], Type::int(32), Port::Read, MemKind::BlockRam);
        let c = a.with_port(Port::Write);
        let f = hb.func("sadd", &[("A", a.to_type()), ("C", c.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, cn, c1) = (hb.const_val(0), hb.const_val(n as i64), hb.const_val(1));
        let lp = hb.for_loop(c0, cn, c1, t, 1, Type::int(32));
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.mem_read(args[0], &[i], ti, 0);
            let k = hb.typed_const(scale, Type::int(32));
            let prod = hb.mult(v, k);
            let s = hb.add(prod, v);
            let i1 = hb.delay(i, 1, ti, 0);
            hb.mem_write(s, args[1], &[i1], ti, 1);
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let mut m = hb.finish();

        let input: Vec<i128> = data[..n as usize].iter().map(|&v| v as i128).collect();
        let interp = Interpreter::new(&m)
            .run("sadd", &[ArgValue::tensor_from(&input), ArgValue::uninit_tensor(n as usize)])
            .expect("interp");

        let (design, _) = kernels::compile_hir(&mut m, true).expect("compile");
        let func = kernels::find_func(&m, "sadd");
        let mut h = Harness::new(
            &design,
            &m,
            func,
            &[HarnessArg::mem_from(&input), HarnessArg::zero_mem(n as usize)],
        )
        .expect("harness");
        let rtl = h.run(10_000).expect("RTL");
        for i in 0..n as usize {
            let expect = (input[i] * scale as i128 + input[i]) as i32 as i128;
            prop_assert_eq!(interp.tensors[&1][i], Some(expect));
            prop_assert_eq!(rtl.mems[&1][i], expect);
        }
    }
}

// ---------------------------------------------------- FIFO random streams

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hir_fifo_matches_queue_model(seed in any::<u64>()) {
        let (depth, n) = (8u64, 24u64);
        let cmds = kernels::workload::random_fifo_commands(seed, n as usize, depth as usize);
        let din: Vec<i128> = (0..n as i128).map(|i| i * 7 - 50).collect();
        let expect = kernels::fifo::reference(n, &cmds, &din);
        let m = kernels::fifo::hir_fifo(depth, n, 32);
        let r = Interpreter::new(&m)
            .run(
                kernels::fifo::FUNC,
                &[
                    ArgValue::tensor_from(&cmds),
                    ArgValue::tensor_from(&din),
                    ArgValue::uninit_tensor(n as usize),
                ],
            )
            .expect("simulate");
        for i in 0..n as usize {
            if let Some(v) = expect[i] {
                prop_assert_eq!(r.tensors[&2][i], Some(v), "dout[{}]", i);
            }
        }
    }
}

// ------------------------------------------------- random HLS kernels

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hls_random_affine_kernel_is_correct(
        mul_c in 1i64..10,
        add_c in -50i64..50,
        pipeline in any::<bool>(),
    ) {
        use hir_suite::hls::{KExpr, KStmt, Kernel, LoopPragmas, SchedOptions};
        let n = 16u64;
        let mut k = Kernel::new("aff");
        k.in_array("a", 32, &[n]).out_array("o", 32, &[n]);
        k.body = vec![KStmt::For {
            var: "i".into(),
            lb: 0,
            ub: n as i64,
            step: 1,
            pragmas: LoopPragmas {
                pipeline_ii: if pipeline { Some(1) } else { None },
                unroll: false,
            },
            body: vec![KStmt::Store {
                array: "o".into(),
                indices: vec![KExpr::var("i")],
                value: KExpr::add(
                    KExpr::mul(KExpr::read("a", vec![KExpr::var("i")]), KExpr::c(mul_c, 32)),
                    KExpr::c(add_c, 32),
                ),
            }],
        }];
        let c = hir_suite::hls::compile(&k, &SchedOptions::default()).expect("compile");
        let input: Vec<i128> = (0..n as i128).map(|x| x * 3 - 11).collect();
        let r = Interpreter::new(&c.hir_module)
            .run(
                "hls_aff",
                &[ArgValue::tensor_from(&input), ArgValue::uninit_tensor(n as usize)],
            )
            .expect("simulate");
        for i in 0..n as usize {
            prop_assert_eq!(
                r.tensors[&1][i],
                Some(input[i] * mul_c as i128 + add_c as i128),
                "o[{}]", i
            );
        }
    }
}

// ------------------------------------ verifier accepts what the interp runs

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schedule_verifier_accepts_well_formed_pipelines(ii in 1i64..4, extra_delay in 0i64..3) {
        // A loop where the write address is delayed to exactly match the
        // data path; valid for every II >= 1.
        let n = 8u64;
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[n], Type::int(32), Port::Read, MemKind::BlockRam);
        let c = a.with_port(Port::Write);
        let f = hb.func("p", &[("A", a.to_type()), ("C", c.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, cn, c1) = (hb.const_val(0), hb.const_val(n as i64), hb.const_val(1));
        let lp = hb.for_loop(c0, cn, c1, t, 1, Type::int(32));
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.mem_read(args[0], &[i], ti, 0);
            let v2 = hb.delay(v, extra_delay, ti, 1);
            let i1 = hb.delay(i, 1 + extra_delay, ti, 0);
            hb.mem_write(v2, args[1], &[i1], ti, 1 + extra_delay);
            hb.yield_at(ti, ii);
        });
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = ir::DiagnosticEngine::new();
        prop_assert!(
            hir_suite::hir_verify::verify_schedule(&m, &mut diags).is_ok(),
            "II={} delay={}:\n{}", ii, extra_delay, diags.render()
        );
        // And the design actually runs.
        let input: Vec<i128> = (0..n as i128).collect();
        let r = Interpreter::new(&m)
            .run("p", &[ArgValue::tensor_from(&input), ArgValue::uninit_tensor(n as usize)])
            .expect("simulate");
        for i in 0..n as usize {
            prop_assert_eq!(r.tensors[&1][i], Some(input[i]));
        }
    }

    #[test]
    fn schedule_verifier_rejects_late_uses(late_by in 1i64..4) {
        // Using the induction variable `late_by` cycles past its window is
        // always a schedule error at II=1.
        let n = 8u64;
        let mut hb = HirBuilder::new();
        let c = MemrefInfo::packed(&[n], Type::int(32), Port::Write, MemKind::BlockRam);
        let f = hb.func("bad", &[("C", c.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, cn, c1) = (hb.const_val(0), hb.const_val(n as i64), hb.const_val(1));
        let lp = hb.for_loop(c0, cn, c1, t, 1, Type::int(32));
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.typed_const(1, Type::int(32));
            hb.mem_write(v, args[0], &[i], ti, late_by); // i is stale here
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let m = hb.finish();
        let mut diags = ir::DiagnosticEngine::new();
        prop_assert!(hir_suite::hir_verify::verify_schedule(&m, &mut diags).is_err());
        prop_assert!(diags.render().contains("mismatched delay"));
    }
}
