//! The paper's **Table 1** as executable properties: HIR's qualitative
//! advantages over HDLs and HLS, each demonstrated rather than asserted.
//!
//! | Property                  | HDLs | HLS | HIR |
//! |---------------------------|------|-----|-----|
//! | Predictable performance   | yes  | no  | yes |
//! | Predictable hardware      | yes  | no  | yes |
//! | Blackbox modules          | yes  | no  | yes |
//! | Sequential execution      | no   | yes | yes |
//! | Deterministic parallelism | yes  | no  | yes |

use hir_suite::hir::interp::{ArgValue, Interpreter, Val};
use hir_suite::hir::types::{MemKind, MemrefInfo, Port};
use hir_suite::hir::{ExternalModel, HirBuilder};
use hir_suite::ir::Type;
use hir_suite::kernels;

/// **Predictable performance**: the latency of an HIR design is a closed
/// formula over the explicit schedule — a pipelined II=1 loop over N
/// elements starting at t+1 with a 1-cycle epilogue finishes at exactly
/// N + 2 cycles, for every N.
#[test]
fn predictable_performance_latency_is_a_formula() {
    for n in [4u64, 16, 64] {
        let m = kernels::transpose::hir_transpose(n, 32);
        let input: Vec<i128> = (0..(n * n) as i128).collect();
        let r = Interpreter::new(&m)
            .run(
                kernels::transpose::FUNC,
                &[
                    ArgValue::tensor_from(&input),
                    ArgValue::uninit_tensor((n * n) as usize),
                ],
            )
            .unwrap();
        // Outer loop: N sequential iterations with period N+2 (inner
        // pipelined loop of N at II=1, plus the start/handoff cycles),
        // first iteration at t+1, then the final drain and completion.
        let expected = (n - 1) * (n + 2) + n + 3;
        assert_eq!(
            r.cycles, expected,
            "n={n}: latency must be exactly the schedule formula"
        );
    }
}

/// **Predictable hardware**: the resources of a design are a deterministic
/// function of the source — compiling twice gives identical estimates, and
/// doubling the unrolled PE grid exactly quadruples the multiplier count.
#[test]
fn predictable_hardware_resources_are_deterministic_and_compositional() {
    let estimate = |n: u64| {
        let mut m = kernels::gemm::hir_gemm(n, 32);
        let (d, _) = kernels::compile_hir(&mut m, true).unwrap();
        hir_suite::synth::estimate_design(
            &d,
            &kernels::hir_top(kernels::gemm::FUNC),
            &hir_suite::synth::CostModel::default(),
        )
    };
    let r4a = estimate(4);
    let r4b = estimate(4);
    assert_eq!(r4a, r4b, "same source, same hardware");
    let r8 = estimate(8);
    assert_eq!(
        r8.dsp,
        4 * r4a.dsp,
        "PE grid scaling is exact: 16 -> 64 multipliers"
    );
}

/// **Blackbox modules** (paper §5.4): an external Verilog module with a
/// declared fixed latency integrates with no handshake logic — the
/// schedule verifier proves the composition, and the interpreter runs it
/// through a behavioural model.
#[test]
fn blackbox_modules_integrate_without_handshakes() {
    let m = kernels::errors::figure2_mac(2); // uses extern @mult, delay 2
    let mut diags = ir::DiagnosticEngine::new();
    hir_suite::hir_verify::verify_schedule(&m, &mut diags).expect("composition verified");
    let interp = Interpreter::new(&m).with_external(
        "mult",
        ExternalModel::new(|args| vec![Val::Int(args[0].as_int() * args[1].as_int())]),
    );
    let r = interp
        .run(
            "mac",
            &[ArgValue::Int(11), ArgValue::Int(-4), ArgValue::Int(3)],
        )
        .unwrap();
    assert_eq!(r.results, vec![11 * -4 + 3]);
}

/// **Sequential execution**: dependent steps run in order with no manual
/// state machine — the three phases of the histogram (clear, accumulate,
/// copy out) chain through loop completion times.
#[test]
fn sequential_execution_without_manual_fsms() {
    let (pixels, bins) = (32u64, 8u64);
    let m = kernels::histogram::hir_histogram(pixels, bins, 32);
    let img: Vec<i128> = (0..pixels as i128).map(|x| x % bins as i128).collect();
    let r = Interpreter::new(&m)
        .run(
            kernels::histogram::FUNC,
            &[
                ArgValue::tensor_from(&img),
                ArgValue::uninit_tensor(bins as usize),
            ],
        )
        .unwrap();
    let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
    assert_eq!(out, kernels::histogram::reference(bins, &img));
    // The phases did not overlap: total = clear + 2*pixels + copy (+consts).
    assert!(
        r.cycles >= bins + 2 * pixels + bins,
        "phases ran sequentially"
    );
}

/// **Deterministic parallelism** (paper §5.3): two tasks run in lock-step
/// with zero synchronization, and the overlap is *exact* — the latency is
/// cycle-reproducible across runs and equals single-stage latency plus the
/// fixed lag.
#[test]
fn deterministic_parallelism_is_cycle_exact() {
    let n = 32u64;
    let m = kernels::stencil::hir_stencil_task_parallel(n, 32);
    let input: Vec<i128> = (0..n as i128).collect();
    let run = || {
        Interpreter::new(&m)
            .run(
                "task_parallel",
                &[
                    ArgValue::tensor_from(&input),
                    ArgValue::uninit_tensor(n as usize),
                ],
            )
            .unwrap()
            .cycles
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "parallel composition is deterministic");

    let single = kernels::stencil::hir_stencil(n, 32);
    let single_cycles = Interpreter::new(&single)
        .run(
            kernels::stencil::FUNC,
            &[
                ArgValue::tensor_from(&input),
                ArgValue::uninit_tensor(n as usize),
            ],
        )
        .unwrap()
        .cycles;
    assert_eq!(
        a,
        single_cycles + 8,
        "overlapped latency = single + fixed 8-cycle lag"
    );
}

/// And the §4.5 assumption the paper adds for loops: re-entering an active
/// loop instance is undefined behaviour, which the interpreter detects.
#[test]
fn loop_reentry_is_detected_as_ub() {
    // An outer II=1 loop containing a 3-cycle inner loop: the second outer
    // iteration re-enters the inner loop while it is still running.
    let mut hb = HirBuilder::new();
    let a = MemrefInfo::packed(&[4], Type::int(32), Port::Write, MemKind::BlockRam);
    let f = hb.func("reenter", &[("C", a.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (c0, c4, c1, c3) = (
        hb.const_val(0),
        hb.const_val(4),
        hb.const_val(1),
        hb.const_val(3),
    );
    let outer = hb.for_loop(c0, c4, c1, t, 1, Type::int(8));
    hb.in_loop(outer, |hb, _i, ti| {
        let inner = hb.for_loop(c0, c3, c1, ti, 0, Type::int(8));
        hb.in_loop(inner, |hb, j, tj| {
            let v = hb.typed_const(1, Type::int(32));
            let j1 = hb.delay(j, 1, tj, 0);
            hb.mem_write(v, args[0], &[j1], tj, 1);
            hb.yield_at(tj, 1);
        });
        hb.yield_at(ti, 1); // does NOT wait for the inner loop: UB
    });
    hb.return_(&[]);
    let m = hb.finish();
    let err = Interpreter::new(&m)
        .run("reenter", &[ArgValue::uninit_tensor(4)])
        .unwrap_err();
    assert!(err.message.contains("re-entered"), "{err}");
}
