//! End-to-end tests of the `hirc` compiler driver binary.

use std::process::Command;

fn hirc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hirc"))
}

/// A valid design in the generic textual format, produced by printing the
/// transpose kernel.
fn transpose_source() -> String {
    let m = kernels::transpose::hir_transpose(4, 32);
    ir::print_module(&m)
}

#[test]
fn compiles_textual_ir_to_verilog() {
    let dir = std::env::temp_dir().join("hirc_test_ok");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("transpose.mlir");
    std::fs::write(&input, transpose_source()).unwrap();
    let out = hirc().arg(&input).output().expect("run hirc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let verilog = String::from_utf8_lossy(&out.stdout);
    assert!(verilog.contains("module hir_transpose"), "{verilog}");
    assert!(verilog.contains("always @(posedge clk)"));
}

#[test]
fn emit_pretty_and_ir_modes() {
    let dir = std::env::temp_dir().join("hirc_test_modes");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("t.mlir");
    std::fs::write(&input, transpose_source()).unwrap();

    let out = hirc().arg(&input).arg("--emit=pretty").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("hir.for"));

    let out = hirc().arg(&input).arg("--emit=ir").output().unwrap();
    assert!(out.status.success());
    // Canonical output must itself be parseable.
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(ir::parse_module(&text).is_ok());
}

#[test]
fn verify_only_rejects_schedule_errors() {
    let dir = std::env::temp_dir().join("hirc_test_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("bad.mlir");
    let bad = kernels::errors::figure1_array_add(false);
    std::fs::write(&input, ir::print_module(&bad)).unwrap();
    let out = hirc().arg(&input).arg("--verify-only").output().unwrap();
    assert!(!out.status.success(), "schedule error must fail the build");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mismatched delay (0 vs 1)"), "{err}");
}

#[test]
fn optimize_flag_runs_pipeline_and_output_still_compiles() {
    let dir = std::env::temp_dir().join("hirc_test_opt");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("t.mlir");
    std::fs::write(&input, transpose_source()).unwrap();
    let outfile = dir.join("t.v");
    let out = hirc()
        .arg(&input)
        .arg("--opt")
        .arg("--timing")
        .arg("-o")
        .arg(&outfile)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("hirc timing"));
    let v = std::fs::read_to_string(&outfile).unwrap();
    assert!(v.contains("module hir_transpose"));
}

#[test]
fn parse_errors_have_positions() {
    let dir = std::env::temp_dir().join("hirc_test_parse");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("garbage.mlir");
    std::fs::write(&input, "not an ir module $$$").unwrap();
    let out = hirc().arg(&input).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn compiles_checked_in_pretty_designs() {
    // The .hir design files in designs/ are first-class inputs.
    let root = env!("CARGO_MANIFEST_DIR");
    let out = hirc()
        .arg(format!("{root}/designs/transpose.hir"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("module hir_transpose"));

    let out = hirc()
        .arg(format!("{root}/designs/mac.hir"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The deliberate Figure 1a error file must FAIL verification with the
    // paper's diagnostic.
    let out = hirc()
        .arg(format!("{root}/designs/err_add.hir"))
        .arg("--verify-only")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("mismatched delay (0 vs 1) in address 0"),
        "{err}"
    );
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    let out = hirc().arg("--help").output().unwrap();
    assert!(out.status.success(), "--help must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: hirc"), "{stdout}");
    assert!(stdout.contains("--stats"), "{stdout}");
    assert!(out.stderr.is_empty(), "usage must go to stdout");

    let out = hirc().arg("-h").output().unwrap();
    assert!(out.status.success(), "-h must exit 0");
}

#[test]
fn stats_flag_reports_counters_from_all_stages() {
    let dir = std::env::temp_dir().join("hirc_test_stats");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("t.mlir");
    std::fs::write(&input, transpose_source()).unwrap();
    let out = hirc()
        .arg(&input)
        .arg("--opt")
        .arg("--stats")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    for scope in ["parse", "verify", "passes", "codegen", "sim"] {
        assert!(err.contains(scope), "missing scope '{scope}' in:\n{err}");
    }
    assert!(err.contains("cycles"), "{err}");
    assert!(err.contains("values_analyzed"), "{err}");
}

#[test]
fn print_ir_after_all_dumps_round_trip() {
    let dir = std::env::temp_dir().join("hirc_test_dumps");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("t.mlir");
    std::fs::write(&input, transpose_source()).unwrap();
    let out = hirc()
        .arg(&input)
        .arg("--opt")
        .arg("--print-ir-after-all")
        .arg("--emit=ir")
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    // One banner per pass in the standard pipeline.
    assert_eq!(err.matches("// ----- IR dump after ").count(), 8, "{err}");
    // Stripping banner lines leaves a sequence of parseable modules.
    for chunk in err.split("// ----- IR dump after ").skip(1) {
        let body: String = chunk
            .lines()
            .skip(1) // the rest of the banner line
            .map(|l| format!("{l}\n"))
            .collect();
        // Each dump runs until the next banner, which split removed.
        ir::parse_module(&body).unwrap_or_else(|e| panic!("dump not parseable: {e}\n{body}"));
    }
}

#[test]
fn profile_emits_valid_chrome_trace_with_one_span_per_pass() {
    let dir = std::env::temp_dir().join("hirc_test_profile");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("t.mlir");
    std::fs::write(&input, transpose_source()).unwrap();
    let profile = dir.join("trace.json");
    let out = hirc()
        .arg(&input)
        .arg("--opt")
        .arg(format!("--profile={}", profile.display()))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&profile).unwrap();
    let doc = obs::json::parse(&text).expect("profile must be valid JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    let pass_spans: Vec<_> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("name")
                    .and_then(|n| n.as_str())
                    .is_some_and(|n| n.starts_with("pass "))
        })
        .collect();
    assert_eq!(pass_spans.len(), 8, "one span per executed pipeline pass");
    // All pass spans live on the same (opt) track, and stage tracks exist.
    let tids: std::collections::BTreeSet<String> = pass_spans
        .iter()
        .map(|e| format!("{:?}", e.get("tid").unwrap()))
        .collect();
    assert_eq!(tids.len(), 1, "pass spans share the opt track");
    let track_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
        })
        .collect();
    for stage in ["parse", "verify", "opt", "codegen", "sim"] {
        assert!(
            track_names.contains(&stage),
            "missing track '{stage}': {track_names:?}"
        );
    }
}

#[test]
fn checked_in_example_mlir_files_compile() {
    let root = env!("CARGO_MANIFEST_DIR");
    for name in ["transpose", "mac", "stencil", "multi_kernel"] {
        let out = hirc()
            .arg(format!("{root}/examples/{name}.mlir"))
            .arg("--opt")
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "examples/{name}.mlir: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn threads_flag_is_byte_identical_across_counts() {
    // The multi-kernel example has four functions; compiling it at any
    // worker count must produce byte-identical output on both streams.
    let root = env!("CARGO_MANIFEST_DIR");
    let input = format!("{root}/examples/multi_kernel.mlir");
    let run = |threads: &str| {
        let out = hirc()
            .arg(&input)
            .arg("--opt")
            .arg("--verify-each")
            .arg("--emit=ir")
            .arg(format!("--threads={threads}"))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--threads={threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (out.stdout, out.stderr)
    };
    let base = run("1");
    for threads in ["2", "4", "max"] {
        assert_eq!(run(threads), base, "--threads={threads} diverged");
    }

    // Bad values are usage errors.
    let out = hirc().arg(&input).arg("--threads=0").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = hirc().arg(&input).arg("--threads=lots").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn exit_codes_distinguish_usage_diagnostics_and_internal_errors() {
    let dir = std::env::temp_dir().join("hirc_test_exit_codes");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("t.mlir");
    std::fs::write(&input, transpose_source()).unwrap();

    // 2: bad flag.
    let out = hirc().arg("--definitely-not-a-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown flag is a usage error");

    // 2: unknown pass name.
    let out = hirc()
        .arg(&input)
        .arg("--pipeline=no-such-pass")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown pass is a usage error");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown pass 'no-such-pass'"), "{err}");
    assert!(err.contains("known passes"), "{err}");

    // 1: input diagnostics (schedule error).
    let bad = dir.join("bad.mlir");
    std::fs::write(
        &bad,
        ir::print_module(&kernels::errors::figure1_array_add(false)),
    )
    .unwrap();
    let out = hirc().arg(&bad).arg("--verify-only").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "diagnostics exit with 1");

    // 3: internal error (deliberately panicking pass).
    let out = hirc()
        .arg(&input)
        .arg("--pipeline=test-panic")
        .arg("--emit=ir")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "a pass panic is an internal error"
    );

    // 0: clean compile.
    let out = hirc().arg(&input).arg("--verify-only").output().unwrap();
    assert_eq!(out.status.code(), Some(0));

    // The exit-code contract is documented in --help.
    let out = hirc().arg("--help").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exit codes"), "{stdout}");
}

#[test]
fn panicking_pass_writes_reproducer_that_retriggers_the_crash() {
    let dir = std::env::temp_dir().join("hirc_test_reproducer");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("t.mlir");
    std::fs::write(&input, transpose_source()).unwrap();
    let repro = dir.join("repro.mlir");
    let _ = std::fs::remove_file(&repro);

    let out = hirc()
        .arg(&input)
        .arg("--pipeline=hir-cse,test-panic,hir-canonicalize")
        .arg(format!("--crash-reproducer={}", repro.display()))
        .arg("--emit=ir")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    // The diagnostic names the crashing pass...
    assert!(err.contains("pass 'test-panic' panicked"), "{err}");
    assert!(err.contains("crash reproducer written"), "{err}");

    // ...and the reproducer file records the failing function's
    // pre-pipeline IR plus the full pipeline (the snapshot is taken before
    // any pass runs on that function, so the whole pipeline replays).
    let text = std::fs::read_to_string(&repro).unwrap();
    let parsed = ir::parse_reproducer(&text).expect("reproducer header");
    assert_eq!(
        parsed.pipeline,
        vec!["hir-cse", "test-panic", "hir-canonicalize"]
    );
    assert!(
        parsed.error.contains("function '@transpose'"),
        "reproducer must name the failing function: {}",
        parsed.error
    );

    // Feeding the reproducer back re-triggers the recorded crash (exit 3).
    let out = hirc().arg(&repro).arg("--emit=ir").output().unwrap();
    assert_eq!(out.status.code(), Some(3), "reproducer must re-trigger");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("input is a crash reproducer"), "{err}");
    assert!(err.contains("pass 'test-panic' panicked"), "{err}");
}

#[test]
fn recovering_parser_reports_every_error_through_the_cli() {
    let root = env!("CARGO_MANIFEST_DIR");
    let out = hirc()
        .arg(format!("{root}/tests/corpus/malformed/multi_errors.mlir"))
        .arg("--verify-only")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    let n = err.matches(": error: ").count();
    assert!(
        n >= 3,
        "expected >= 3 positioned diagnostics, got {n}:\n{err}"
    );
    // file:line:col prefixes make the errors clickable.
    assert!(err.contains("multi_errors.mlir:"), "{err}");
}

#[test]
fn error_limit_flag_caps_cli_diagnostics() {
    let root = env!("CARGO_MANIFEST_DIR");
    let out = hirc()
        .arg(format!("{root}/tests/corpus/malformed/multi_errors.mlir"))
        .arg("--error-limit=1")
        .arg("--verify-only")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(err.matches(": error: ").count(), 1, "{err}");
    assert!(err.contains("--error-limit"), "{err}");
}

#[test]
fn verify_each_localizes_and_sim_budget_flag_is_accepted() {
    let dir = std::env::temp_dir().join("hirc_test_veach");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("t.mlir");
    std::fs::write(&input, transpose_source()).unwrap();

    // --verify-each on a healthy pipeline is a no-op.
    let out = hirc()
        .arg(&input)
        .arg("--opt")
        .arg("--verify-each")
        .arg("--emit=ir")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --sim-max-cycles bounds the smoke simulation under --stats.
    let out = hirc()
        .arg(&input)
        .arg("--stats")
        .arg("--sim-max-cycles=16")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("sim"), "{err}");
}

#[test]
fn stencil_and_unrolled_designs_compile_and_run() {
    use hir_suite::hir::interp::{ArgValue, Interpreter};
    let root = env!("CARGO_MANIFEST_DIR");

    // The stencil design file: parse, verify, simulate against the kernels
    // crate's reference.
    let src = std::fs::read_to_string(format!("{root}/designs/stencil.hir")).unwrap();
    let m = hir_suite::hir::parse_pretty(&src).expect("parse stencil.hir");
    let mut diags = ir::DiagnosticEngine::new();
    hir_suite::hir_verify::verify_schedule(&m, &mut diags)
        .unwrap_or_else(|_| panic!("{}", diags.render()));
    let input: Vec<i128> = (0..64).map(|x| x * 5 % 37).collect();
    let r = Interpreter::new(&m)
        .run(
            "stencil_1d",
            &[ArgValue::tensor_from(&input), ArgValue::uninit_tensor(64)],
        )
        .expect("simulate");
    let expect = kernels::stencil::reference(64, &input);
    for i in 0..64 {
        assert_eq!(r.tensors[&1][i], Some(expect[i]), "B[{i}]");
    }

    // Listing 4: all four lanes write in the same cycle.
    let src = std::fs::read_to_string(format!("{root}/designs/unrolled.hir")).unwrap();
    let m = hir_suite::hir::parse_pretty(&src).expect("parse unrolled.hir");
    let r = Interpreter::new(&m)
        .run("lanes", &[ArgValue::uninit_tensor(4)])
        .expect("simulate");
    assert_eq!(r.tensors[&0], vec![Some(0), Some(7), Some(14), Some(21)]);
    assert!(
        r.cycles <= 1,
        "lanes must run in parallel, took {}",
        r.cycles
    );
}

// ------------------------------------------------- translation validation

fn example(name: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
}

#[test]
fn verify_equiv_flag_validation() {
    let dir = std::env::temp_dir().join("hirc_test_equiv_flags");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("t.mlir");
    std::fs::write(&input, transpose_source()).unwrap();

    // --verify-equiv compares against the *optimized* module, so it needs
    // --opt or --pipeline.
    let out = hirc().arg(&input).arg("--verify-equiv").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "verify-equiv without passes");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--verify-equiv"), "{err}");

    // K = 0 proves nothing.
    let out = hirc()
        .arg(&input)
        .arg("--opt")
        .arg("--verify-equiv=0")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "K=0 is a usage error");

    // Report and corpus flags are meaningless without the check itself.
    for flag in ["--verify-equiv-report=r.json", "--equiv-corpus-dir=corpus"] {
        let out = hirc().arg(&input).arg("--opt").arg(flag).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag} without --verify-equiv");
    }
}

#[test]
fn verify_equiv_proves_optimized_example_and_writes_report() {
    let dir = std::env::temp_dir().join("hirc_test_equiv_prove");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("equiv.json");
    let out = hirc()
        .arg(example("transpose.mlir"))
        .arg("--opt")
        .arg("--verify-equiv=8")
        .arg(format!("--verify-equiv-report={}", report.display()))
        .arg("-o")
        .arg(dir.join("t.v"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("proved equivalent for K=8 cycles"),
        "proof must be reported: {err}"
    );
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"k\":8"), "{json}");
    assert!(json.contains("\"proved\":1"), "{json}");
    assert!(json.contains("\"counterexamples\":0"), "{json}");
    assert!(json.contains("\"status\":\"proved\""), "{json}");
}

#[test]
fn verify_equiv_refutes_miscompile_and_harvests_regression() {
    let dir = std::env::temp_dir().join("hirc_test_equiv_cex");
    let corpus = dir.join("harvest");
    let _ = std::fs::remove_dir_all(&corpus);
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("equiv.json");
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--pipeline=test-miscompile")
        .arg("--verify-equiv")
        .arg(format!("--verify-equiv-report={}", report.display()))
        .arg(format!("--equiv-corpus-dir={}", corpus.display()))
        .arg("-o")
        .arg(dir.join("t.v"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "a confirmed miscompile is a diagnostic, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("replay-confirmed"), "{err}");
    assert!(err.contains("counterexample stimulus for @mac"), "{err}");
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"counterexamples\":1"), "{json}");
    assert!(json.contains("\"status\":\"counterexample\""), "{json}");

    // The counterexample was ddmin-reduced into a fuzz regression, and the
    // reduced input still parses.
    let files: Vec<_> = std::fs::read_dir(&corpus)
        .expect("harvest dir created")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(
        files.len(),
        1,
        "exactly one harvested regression: {files:?}"
    );
    let name = files[0].file_name().unwrap().to_string_lossy().to_string();
    assert!(name.starts_with("equiv_miscompile_"), "{name}");
    let reduced = std::fs::read_to_string(&files[0]).unwrap();
    assert!(
        ir::parse_module(&reduced).is_ok(),
        "reduced case must parse"
    );
}

#[test]
fn verify_equiv_budget_exhaustion_degrades_loudly() {
    let dir = std::env::temp_dir().join("hirc_test_equiv_budget");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("equiv.json");
    // A 1 ms wall-clock budget cannot complete a K=16 proof of the
    // transpose design; the driver must say so out loud, fall back to the
    // sampled differential, and still exit 0 (no divergence observed).
    let out = hirc()
        .arg(example("transpose.mlir"))
        .arg("--opt")
        .arg("--verify-equiv")
        .arg("--equiv-time-ms=1")
        .arg(format!("--verify-equiv-report={}", report.display()))
        .arg("-o")
        .arg(dir.join("t.v"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("hirc: remark:"), "degradation is loud: {err}");
    assert!(err.contains("NOT proved"), "{err}");
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"sampled\":1"), "{json}");
}

#[test]
fn verify_equiv_sim_budget_exhaustion_is_a_diagnostic_not_a_pass() {
    // The bugfix satellite: when --sim-max-cycles starves the replay of a
    // counterexample, the driver must exit 1 with a structured diagnostic —
    // never panic, and never silently report success.
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--pipeline=test-miscompile")
        .arg("--verify-equiv")
        .arg("--sim-max-cycles=2")
        .arg("-o")
        .arg(std::env::temp_dir().join("hirc_test_equiv_simbudget.v"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("simulation budget exhausted"), "{err}");
}

#[test]
fn emit_btor2_matches_golden_across_thread_counts() {
    let golden = include_str!("golden/mac.btor2");
    let run = |threads: &str| {
        let out = hirc()
            .arg(example("mac.mlir"))
            .arg("--emit=btor2")
            .arg(format!("--threads={threads}"))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let t1 = run("1");
    assert_eq!(t1, golden, "BTOR2 drifted from tests/golden/mac.btor2");
    assert_eq!(t1, run("4"), "BTOR2 must not depend on --threads");
    assert_eq!(t1, run("1"), "BTOR2 must be byte-identical across runs");
}

#[test]
fn sim_engine_flag_accepts_all_engines_and_rejects_unknown_names() {
    // Every engine produces the same run summary on the same input.
    let run = |engine: &str| {
        let out = hirc()
            .arg(example("mac.mlir"))
            .arg("--emit=sim")
            .arg(format!("--sim-engine={engine}"))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--sim-engine={engine} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let base = run("bytecode");
    assert!(base.contains("result0 ="), "{base}");
    for engine in ["treewalk", "event"] {
        assert_eq!(run(engine), base, "--sim-engine={engine} diverged");
    }
    // The batched engine's lane 0 reproduces the scalar run; later lanes
    // append their own summaries.
    let batched = run("batched");
    assert!(batched.starts_with(&base), "{batched}");
    assert!(batched.contains("lane 1:"), "{batched}");

    // Unknown engine names are usage errors listing the accepted values.
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--emit=sim")
        .arg("--sim-engine=verilator")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown engine is a usage error"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    for accepted in ["bytecode", "treewalk", "event", "batched"] {
        assert!(err.contains(accepted), "{err}");
    }
}

#[test]
fn sim_batch_flag_validation() {
    // --sim-batch without --emit=sim is a usage error.
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--sim-batch=4")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--sim-batch requires --emit=sim"), "{err}");

    // --sim-batch with a non-batched engine is a usage error.
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--emit=sim")
        .arg("--sim-batch=4")
        .arg("--sim-engine=event")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--sim-engine=batched"), "{err}");

    // Lane counts outside 1..=64 are usage errors.
    for bad in ["0", "65", "lots"] {
        let out = hirc()
            .arg(example("mac.mlir"))
            .arg("--emit=sim")
            .arg(format!("--sim-batch={bad}"))
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "--sim-batch={bad} must be rejected"
        );
    }

    // A valid lane count prints one summary block per lane.
    let out = hirc()
        .arg(example("mac.mlir"))
        .arg("--emit=sim")
        .arg("--sim-batch=3")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("lane 1:") && text.contains("lane 2:"),
        "{text}"
    );
    assert!(!text.contains("lane 3:"), "{text}");
}

#[test]
fn sim_engines_agree_on_vcd_and_telemetry_through_the_cli() {
    let dir = std::env::temp_dir().join("hirc_test_engine_matrix");
    std::fs::create_dir_all(&dir).unwrap();
    let run = |engine: &str| {
        let vcd = dir.join(format!("{engine}.vcd"));
        let telem = dir.join(format!("{engine}.json"));
        let out = hirc()
            .arg(example("multi_kernel.mlir"))
            .arg("--emit=sim")
            .arg(format!("--sim-engine={engine}"))
            .arg(format!("--sim-vcd={}", vcd.display()))
            .arg(format!("--sim-telemetry={}", telem.display()))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--sim-engine={engine} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            std::fs::read(&vcd).expect("vcd written"),
            std::fs::read_to_string(&telem).expect("telemetry written"),
        )
    };
    let (base_out, base_vcd, base_telem) = run("bytecode");
    for engine in ["event", "batched"] {
        let (o, v, t) = run(engine);
        // Batched appends per-lane blocks after the (identical) lane-0 lines.
        assert!(
            o.starts_with(&base_out),
            "--sim-engine={engine}: summary diverged"
        );
        assert_eq!(v, base_vcd, "--sim-engine={engine}: VCD bytes diverged");
        assert_eq!(t, base_telem, "--sim-engine={engine}: telemetry diverged");
    }
}
