//! The round-trippability claim (paper §4: "a round-trippable and human
//! readable textual representation"): every benchmark design survives
//! print → parse → print as a fixpoint, and the reparsed module still
//! verifies and simulates identically.

use hir_suite::hir::interp::{ArgValue, Interpreter};
use hir_suite::kernels;

fn roundtrip(m: &ir::Module) -> ir::Module {
    let text = ir::print_module(m);
    let reparsed = ir::parse_module(&text)
        .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- text ---\n{text}"));
    assert_eq!(
        text,
        ir::print_module(&reparsed),
        "print must be a fixpoint"
    );
    reparsed
}

#[test]
fn all_benchmarks_roundtrip_and_reverify() {
    for b in kernels::compiled_benchmarks() {
        let m = (b.build_hir)();
        let reparsed = roundtrip(&m);
        let mut diags = ir::DiagnosticEngine::new();
        ir::verify_module(&reparsed, &hir_suite::hir::hir_registry(), &mut diags)
            .unwrap_or_else(|_| panic!("{}: structural\n{}", b.name, diags.render()));
        hir_suite::hir_verify::verify_schedule(&reparsed, &mut diags)
            .unwrap_or_else(|_| panic!("{}: schedule\n{}", b.name, diags.render()));
    }
}

#[test]
fn roundtripped_design_simulates_identically() {
    let n = 8u64;
    let m = kernels::transpose::hir_transpose(n, 32);
    let reparsed = roundtrip(&m);

    let input: Vec<i128> = (0..(n * n) as i128).collect();
    let args = [
        ArgValue::tensor_from(&input),
        ArgValue::uninit_tensor((n * n) as usize),
    ];
    let before = Interpreter::new(&m)
        .run(kernels::transpose::FUNC, &args)
        .unwrap();
    let after = Interpreter::new(&reparsed)
        .run(kernels::transpose::FUNC, &args)
        .unwrap();
    assert_eq!(before.tensors[&1], after.tensors[&1]);
    assert_eq!(
        before.cycles, after.cycles,
        "cycle-exact across the round trip"
    );
}

#[test]
fn locations_survive_the_roundtrip() {
    let m = kernels::errors::figure1_array_add(false);
    let text = ir::print_module_with(&m, &ir::PrintOptions { locations: true });
    let reparsed = ir::parse_module(&text).expect("parse with locations");
    // The diagnostic from the reparsed module carries the same position.
    let mut diags = ir::DiagnosticEngine::new();
    assert!(hir_suite::hir_verify::verify_schedule(&reparsed, &mut diags).is_err());
    assert!(
        diags.render().contains("test/HIR/err_add.mlir:13:5"),
        "{}",
        diags.render()
    );
}

#[test]
fn fifo_with_if_regions_roundtrips() {
    // hir.if nests regions inside loop regions: the deepest structure.
    let m = kernels::fifo::hir_fifo(8, 16, 32);
    let reparsed = roundtrip(&m);
    let mut diags = ir::DiagnosticEngine::new();
    hir_suite::hir_verify::verify_schedule(&reparsed, &mut diags)
        .unwrap_or_else(|_| panic!("{}", diags.render()));
}

#[test]
fn external_functions_roundtrip() {
    let m = kernels::errors::figure2_mac(2);
    let reparsed = roundtrip(&m);
    let table = ir::SymbolTable::build(&reparsed);
    assert!(
        table.lookup("mult").is_some(),
        "external declaration preserved"
    );
    assert!(table.lookup("mac").is_some());
}

#[test]
fn pretty_syntax_roundtrips_every_benchmark() {
    // The paper-style surface syntax is parseable back for every kernel
    // (including unroll_for grids, hir.if predication, and calls), and the
    // reparsed module still verifies and simulates.
    let mut modules: Vec<(String, ir::Module)> = kernels::compiled_benchmarks()
        .into_iter()
        .map(|b| (b.name.to_string(), (b.build_hir)()))
        .collect();
    modules.push(("FIFO".into(), kernels::fifo::hir_fifo(16, 24, 32)));
    modules.push(("FIR".into(), kernels::fir::hir_fir(16, &[1, 2, 1], 32)));
    modules.push((
        "task-parallel stencil".into(),
        kernels::stencil::hir_stencil_task_parallel(32, 32),
    ));

    for (name, m) in modules {
        let text = hir_suite::hir::pretty_module(&m);
        let reparsed = hir_suite::hir::parse_pretty(&text)
            .unwrap_or_else(|e| panic!("{name}: reparse failed: {e}\n---\n{text}"));
        let text2 = hir_suite::hir::pretty_module(&reparsed);
        assert_eq!(text, text2, "{name}: pretty must be a fixpoint");
        let mut diags = ir::DiagnosticEngine::new();
        ir::verify_module(&reparsed, &hir_suite::hir::hir_registry(), &mut diags)
            .unwrap_or_else(|_| panic!("{name}: structural\n{}", diags.render()));
        hir_suite::hir_verify::verify_schedule(&reparsed, &mut diags)
            .unwrap_or_else(|_| panic!("{name}: schedule\n{}", diags.render()));
    }
}

#[test]
fn pretty_roundtripped_histogram_simulates_identically() {
    use hir_suite::hir::interp::{ArgValue, Interpreter};
    let (pixels, bins) = (32u64, 8u64);
    let m = kernels::histogram::hir_histogram(pixels, bins, 32);
    let text = hir_suite::hir::pretty_module(&m);
    let reparsed = hir_suite::hir::parse_pretty(&text).expect("parse");
    let img: Vec<i128> = (0..pixels as i128).map(|x| x % bins as i128).collect();
    let args = [
        ArgValue::tensor_from(&img),
        ArgValue::uninit_tensor(bins as usize),
    ];
    let a = Interpreter::new(&m)
        .run(kernels::histogram::FUNC, &args)
        .unwrap();
    let b = Interpreter::new(&reparsed)
        .run(kernels::histogram::FUNC, &args)
        .unwrap();
    assert_eq!(a.tensors[&1], b.tensors[&1]);
    assert_eq!(a.cycles, b.cycles);
}
