//! Failure injection for every undefined behaviour of paper §4.5. Each
//! rule is violated deliberately and must be caught — by the interpreter at
//! runtime and, where stated, by the assertions the code generator emits
//! into the RTL.
//!
//! §4.5's list:
//! 1. memory accesses remain within bounds;
//! 2. a loop's lower bound never exceeds its upper bound;
//! 3. no two same-cycle accesses to one memref port (unless same address /
//!    different bank);
//! 4. a loop instance is not re-scheduled before the previous completes;
//! 5. reads only touch initialized memory.

use hir_suite::hir::interp::{ArgValue, Interpreter};
use hir_suite::hir::types::{MemKind, MemrefInfo, Port};
use hir_suite::hir::HirBuilder;
use hir_suite::hir_codegen::testbench::{Harness, HarnessArg};
use hir_suite::ir::Type;
use hir_suite::kernels;

/// Rule 1 — out-of-bounds access: interpreter error AND RTL assertion.
#[test]
fn rule1_out_of_bounds() {
    let mut hb = HirBuilder::new();
    let a = MemrefInfo::packed(&[4], Type::int(32), Port::Read, MemKind::BlockRam);
    let f = hb.func("oob", &[("A", a.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (c0, c9, c1) = (hb.const_val(0), hb.const_val(9), hb.const_val(1));
    let lp = hb.for_loop(c0, c9, c1, t, 1, Type::int(8));
    hb.in_loop(lp, |hb, i, ti| {
        hb.mem_read(args[0], &[i], ti, 0);
        hb.yield_at(ti, 1);
    });
    hb.return_(&[]);
    let mut m = hb.finish();

    let data = vec![1i128, 2, 3, 4];
    let err = Interpreter::new(&m)
        .run("oob", &[ArgValue::tensor_from(&data)])
        .unwrap_err();
    assert!(err.message.contains("out of bounds"), "{err}");

    let (design, _) = kernels::compile_hir(&mut m, false).expect("compile");
    let func = kernels::find_func(&m, "oob");
    let mut h = Harness::new(&design, &m, func, &[HarnessArg::mem_from(&data)]).unwrap();
    let err = h.run(1000).unwrap_err();
    assert!(err.0.contains("out of bounds"), "{err}");
}

/// Rule 2 — reversed loop bounds.
#[test]
fn rule2_reversed_bounds() {
    let mut hb = HirBuilder::new();
    let f = hb.func("rev", &[("n", Type::int(32))], &[]);
    let t = f.time_var(hb.module());
    let n = f.args(hb.module())[0];
    let (c0, c1) = (hb.const_val(0), hb.const_val(1));
    // lb = n (dynamic), ub = 0: reversed whenever n > 0.
    let lp = hb.for_loop(n, c0, c1, t, 1, Type::int(32));
    hb.in_loop(lp, |hb, _i, ti| hb.yield_at(ti, 1));
    hb.return_(&[]);
    let m = hb.finish();
    let err = Interpreter::new(&m)
        .run("rev", &[ArgValue::Int(5)])
        .unwrap_err();
    assert!(err.message.contains("lower bound"), "{err}");
    // Equal bounds (zero-trip) are fine.
    Interpreter::new(&m)
        .run("rev", &[ArgValue::Int(0)])
        .expect("zero-trip loop is defined");
}

/// Rule 3 — same-port same-cycle conflict: caught statically when provable,
/// at runtime otherwise (data-dependent addresses), and by RTL assertions.
#[test]
fn rule3_port_conflicts() {
    // Statically provable: rejected by the verifier (covered extensively in
    // hir-verify's tests). Here: the data-dependent case the verifier must
    // NOT reject, caught at runtime instead.
    let mut hb = HirBuilder::new();
    let idx_t = MemrefInfo::packed(&[2], Type::int(32), Port::Read, MemKind::BlockRam);
    let f = hb.func("dyn", &[("I", idx_t.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (buf_r, buf_w) = hb.alloc_rw(&[8], Type::int(32), MemKind::BlockRam);
    let _ = buf_w;
    let (c0, c1) = (hb.const_val(0), hb.const_val(1));
    let i0 = hb.mem_read(args[0], &[c0], t, 0); // valid t+1
    let i1 = hb.mem_read(args[0], &[c1], t, 0); // same port, same cycle...
    let _ = (i0, i1);
    hb.mem_read(buf_r, &[c0], t, 2);
    hb.return_(&[]);
    let m = hb.finish();
    // The two reads of I at t+0 hit DIFFERENT addresses of one port.
    let mut diags = ir::DiagnosticEngine::new();
    assert!(
        hir_suite::hir_verify::verify_schedule(&m, &mut diags).is_err(),
        "statically-known conflicting addresses are rejected at compile time"
    );

    // Same design with equal addresses passes the verifier AND runs.
    let mut hb = HirBuilder::new();
    let f = hb.func("dyn2", &[("I", idx_t.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let c0 = hb.const_val(0);
    hb.mem_read(args[0], &[c0], t, 0);
    hb.mem_read(args[0], &[c0], t, 0);
    hb.return_(&[]);
    let m2 = hb.finish();
    let mut diags = ir::DiagnosticEngine::new();
    hir_suite::hir_verify::verify_schedule(&m2, &mut diags).expect("same address is allowed");
    Interpreter::new(&m2)
        .run("dyn2", &[ArgValue::tensor_from(&[7, 8])])
        .expect("same-address parallel reads are defined");
}

/// Rule 4 — loop re-entry (also covered by tests/table1_properties.rs).
#[test]
fn rule4_loop_reentry() {
    let mut hb = HirBuilder::new();
    let f = hb.func("re", &[], &[]);
    let t = f.time_var(hb.module());
    let (c0, c2, c1, c5) = (
        hb.const_val(0),
        hb.const_val(2),
        hb.const_val(1),
        hb.const_val(5),
    );
    let outer = hb.for_loop(c0, c2, c1, t, 1, Type::int(8));
    hb.in_loop(outer, |hb, _i, ti| {
        let inner = hb.for_loop(c0, c5, c1, ti, 0, Type::int(8));
        hb.in_loop(inner, |hb, _j, tj| hb.yield_at(tj, 1));
        hb.yield_at(ti, 1); // re-arms while the 5-cycle inner loop runs
    });
    hb.return_(&[]);
    let m = hb.finish();
    let err = Interpreter::new(&m).run("re", &[]).unwrap_err();
    assert!(err.message.contains("re-entered"), "{err}");
}

/// Rule 5 — uninitialized reads: "each call resets all memory elements to
/// uninitialized state" (no persistent state across calls).
#[test]
fn rule5_uninitialized_reads() {
    let mut hb = HirBuilder::new();
    let f = hb.func("ui", &[], &[0]);
    let t = f.time_var(hb.module());
    let (r, w) = hb.alloc_rw(&[4], Type::int(32), MemKind::BlockRam);
    let _ = w;
    let c2 = hb.const_val(2);
    let v = hb.mem_read(r, &[c2], t, 0); // never written
    hb.return_(&[v]);
    let m = hb.finish();
    let err = Interpreter::new(&m).run("ui", &[]).unwrap_err();
    assert!(err.message.contains("uninitialized"), "{err}");
}

/// And the positive control: a design violating no rule runs clean through
/// interpreter AND RTL with assertions enabled.
#[test]
fn clean_design_triggers_no_checks() {
    let n = 16u64;
    let mut m = kernels::transpose::hir_transpose(n, 32);
    let input: Vec<i128> = (0..(n * n) as i128).collect();
    Interpreter::new(&m)
        .run(
            kernels::transpose::FUNC,
            &[
                ArgValue::tensor_from(&input),
                ArgValue::uninit_tensor((n * n) as usize),
            ],
        )
        .expect("no UB");
    let (design, _) = kernels::compile_hir(&mut m, true).expect("compile");
    let func = kernels::find_func(&m, kernels::transpose::FUNC);
    let mut h = Harness::new(
        &design,
        &m,
        func,
        &[
            HarnessArg::mem_from(&input),
            HarnessArg::zero_mem((n * n) as usize),
        ],
    )
    .unwrap();
    h.run(10_000).expect("no assertion fires");
}
