//! End-to-end: build HIR designs, verify schedules, generate Verilog,
//! simulate the RTL, and compare against the cycle-accurate HIR interpreter
//! and a software reference.

use hir::interp::{ArgValue, Interpreter};
use hir::ops::FuncOp;
use hir::types::{Dim, MemKind, MemrefInfo, Port};
use hir::HirBuilder;
use hir_codegen::testbench::{Harness, HarnessArg};
use hir_codegen::{generate_design, CodegenOptions};
use ir::{DiagnosticEngine, Module, Type};
use verilog::{Design, Dir, Expr, VModule};

fn verify_and_generate(m: &Module) -> Design {
    let mut diags = DiagnosticEngine::new();
    ir::verify_module(m, &hir::hir_registry(), &mut diags).expect("structural verification");
    hir_verify::verify_schedule(m, &mut diags)
        .unwrap_or_else(|_| panic!("schedule verification failed:\n{}", diags.render()));
    generate_design(m, &CodegenOptions::default()).expect("codegen")
}

/// The paper's Listing 1: 16x16 matrix transpose.
fn transpose_module(n: u64) -> Module {
    let mut hb = HirBuilder::new();
    let a = MemrefInfo::packed(&[n, n], Type::int(32), Port::Read, MemKind::BlockRam);
    let c = a.with_port(Port::Write);
    let f = hb.func(
        "transpose",
        &[("Ai", a.to_type()), ("Co", c.to_type())],
        &[],
    );
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (c0, cn, c1) = (hb.const_val(0), hb.const_val(n as i64), hb.const_val(1));
    let i_loop = hb.for_loop(c0, cn, c1, t, 1, Type::int(32));
    hb.in_loop(i_loop, |hb, i, ti| {
        let j_loop = hb.for_loop(c0, cn, c1, ti, 1, Type::int(32));
        hb.in_loop(j_loop, |hb, j, tj| {
            let v = hb.mem_read(args[0], &[i, j], tj, 0);
            let j1 = hb.delay(j, 1, tj, 0);
            hb.mem_write(v, args[1], &[j1, i], tj, 1);
            hb.yield_at(tj, 1);
        });
        let tf = j_loop.result_time(hb.module());
        hb.yield_at(tf, 1);
    });
    hb.return_(&[]);
    hb.finish()
}

#[test]
fn transpose_rtl_matches_reference_and_interpreter() {
    let n = 8u64;
    let m = transpose_module(n);
    let design = verify_and_generate(&m);

    let input: Vec<i128> = (0..(n * n) as i128).map(|x| x * 3 - 50).collect();

    // Software reference.
    let mut expect = vec![0i128; (n * n) as usize];
    for i in 0..n as usize {
        for j in 0..n as usize {
            expect[j * n as usize + i] = input[i * n as usize + j];
        }
    }

    // HIR interpreter.
    let interp = Interpreter::new(&m);
    let report = interp
        .run(
            "transpose",
            &[
                ArgValue::tensor_from(&input),
                ArgValue::uninit_tensor((n * n) as usize),
            ],
        )
        .expect("interpreter");
    let interp_out: Vec<i128> = report.tensors[&1]
        .iter()
        .map(|x| x.expect("fully written"))
        .collect();
    assert_eq!(interp_out, expect, "interpreter output");

    // RTL simulation of the generated Verilog.
    let func = FuncOp::wrap(&m, m.top_ops()[0]).unwrap();
    let mut harness = Harness::new(
        &design,
        &m,
        func,
        &[
            HarnessArg::mem_from(&input),
            HarnessArg::zero_mem((n * n) as usize),
        ],
    )
    .expect("harness");
    let rtl = harness.run(100_000).expect("RTL sim");
    assert_eq!(rtl.mems[&1], expect, "RTL output");

    // Latency agreement: interpreter and RTL should be within a few cycles.
    let diff = (rtl.cycles as i64 - report.cycles as i64).abs();
    assert!(
        diff <= 4,
        "latency mismatch: RTL {} vs interp {}",
        rtl.cycles,
        report.cycles
    );
}

#[test]
fn pipelined_array_add_rtl() {
    // II=1 pipelined loop: C[i] = A[i] + B[i].
    let n = 64u64;
    let mut hb = HirBuilder::new();
    let a = MemrefInfo::packed(&[n], Type::int(32), Port::Read, MemKind::BlockRam);
    let c = a.with_port(Port::Write);
    let f = hb.func(
        "vadd",
        &[("A", a.to_type()), ("B", a.to_type()), ("C", c.to_type())],
        &[],
    );
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (c0, cn, c1) = (hb.const_val(0), hb.const_val(n as i64), hb.const_val(1));
    let lp = hb.for_loop(c0, cn, c1, t, 1, Type::int(32));
    hb.in_loop(lp, |hb, i, ti| {
        let va = hb.mem_read(args[0], &[i], ti, 0);
        let vb = hb.mem_read(args[1], &[i], ti, 0);
        let s = hb.add(va, vb);
        let i1 = hb.delay(i, 1, ti, 0);
        hb.mem_write(s, args[2], &[i1], ti, 1);
        hb.yield_at(ti, 1);
    });
    hb.return_(&[]);
    let m = hb.finish();
    let design = verify_and_generate(&m);

    let a_data: Vec<i128> = (0..n as i128).collect();
    let b_data: Vec<i128> = (0..n as i128).map(|x| 1000 - x).collect();
    let func = FuncOp::wrap(&m, m.top_ops()[0]).unwrap();
    let mut harness = Harness::new(
        &design,
        &m,
        func,
        &[
            HarnessArg::mem_from(&a_data),
            HarnessArg::mem_from(&b_data),
            HarnessArg::zero_mem(n as usize),
        ],
    )
    .expect("harness");
    let rtl = harness.run(10_000).expect("RTL sim");
    assert!(
        rtl.mems[&2].iter().all(|&v| v == 1000),
        "all sums must be 1000: {:?}",
        rtl.mems[&2]
    );
    // Pipelined: latency ~ n + constant, NOT ~ 3n.
    assert!(
        rtl.cycles <= n + 8,
        "loop not pipelined: {} cycles for {n} elements",
        rtl.cycles
    );
}

#[test]
fn banked_unrolled_writes_rtl() {
    // unroll_for writing 4 banks in parallel in a single cycle.
    let mut hb = HirBuilder::new();
    let out = MemrefInfo::new(
        vec![Dim::Distributed(4)],
        Type::int(16),
        Port::Write,
        MemKind::LutRam,
    );
    let f = hb.func("fanout", &[("O", out.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let lp = hb.unroll_for(0, 4, 1, t, 0);
    hb.in_unroll(lp, |hb, iv, ti| {
        let v = hb.typed_const(5, Type::int(16));
        let scaled = hb.mult(v, iv);
        hb.mem_write(scaled, args[0], &[iv], ti, 0);
        hb.yield_at(ti, 0);
    });
    hb.return_(&[]);
    let m = hb.finish();
    let design = verify_and_generate(&m);

    let func = FuncOp::wrap(&m, m.top_ops()[0]).unwrap();
    let mut harness = Harness::new(&design, &m, func, &[HarnessArg::zero_mem(4)]).expect("harness");
    let rtl = harness.run(100).expect("RTL sim");
    assert_eq!(rtl.mems[&0], vec![0, 5, 10, 15]);
    assert!(
        rtl.cycles <= 1,
        "all writes must land in cycle 0, got {}",
        rtl.cycles
    );
}

#[test]
fn call_to_external_verilog_module() {
    // MAC with a 2-stage external multiplier (paper §5.4 interfacing).
    let mut hb = HirBuilder::new();
    hb.extern_func(
        "mult2",
        &[Type::int(32), Type::int(32)],
        &[Type::int(32)],
        &[2],
    );
    let f = hb.func(
        "mac",
        &[
            ("a", Type::int(32)),
            ("b", Type::int(32)),
            ("c", Type::int(32)),
        ],
        &[2],
    );
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let prod = hb.call("mult2", &[args[0], args[1]], t, 0);
    let c2 = hb.delay(args[2], 2, t, 0);
    let sum = hb.add(prod[0], c2);
    hb.return_(&[sum]);
    let m = hb.finish();

    let mut design = verify_and_generate(&m);
    design.add(pipelined_mult_module("mult2", 32, 2));

    let func = FuncOp::wrap(&m, m.top_ops()[1]).unwrap();
    let mut harness = Harness::new(
        &design,
        &m,
        func,
        &[
            HarnessArg::Int(6),
            HarnessArg::Int(-7),
            HarnessArg::Int(100),
        ],
    )
    .expect("harness");
    let rtl = harness.run(100).expect("RTL sim");
    assert_eq!(rtl.results, vec![6 * -7 + 100]);
}

#[test]
fn nested_function_call_rtl() {
    // Caller invokes a small HIR callee that doubles a value.
    let mut hb = HirBuilder::new();
    let f1 = hb.func("double", &[("x", Type::int(32))], &[0]);
    let x = f1.args(hb.module())[0];
    let two = hb.typed_const(2, Type::int(32));
    let d = hb.mult(x, two);
    hb.return_(&[d]);

    let f2 = hb.func("quadruple", &[("y", Type::int(32))], &[0]);
    let t = f2.time_var(hb.module());
    let y = f2.args(hb.module())[0];
    let once = hb.call("double", &[y], t, 0);
    let twice = hb.call("double", &[once[0]], t, 0);
    hb.return_(&[twice[0]]);
    let m = hb.finish();
    let design = verify_and_generate(&m);

    let func = FuncOp::wrap(&m, m.top_ops()[1]).unwrap();
    let mut harness = Harness::new(&design, &m, func, &[HarnessArg::Int(11)]).expect("harness");
    let rtl = harness.run(50).expect("RTL sim");
    assert_eq!(rtl.results, vec![44]);
}

#[test]
fn assertion_catches_out_of_bounds_at_runtime() {
    // A loop that runs past the memory bound: the generated assertion fires.
    let mut hb = HirBuilder::new();
    let a = MemrefInfo::packed(&[8], Type::int(32), Port::Read, MemKind::BlockRam);
    let f = hb.func("oob", &[("A", a.to_type())], &[]);
    let t = f.time_var(hb.module());
    let args = f.args(hb.module());
    let (c0, c16, c1) = (hb.const_val(0), hb.const_val(16), hb.const_val(1));
    let lp = hb.for_loop(c0, c16, c1, t, 1, Type::int(8));
    hb.in_loop(lp, |hb, i, ti| {
        hb.mem_read(args[0], &[i], ti, 0);
        hb.yield_at(ti, 1);
    });
    hb.return_(&[]);
    let m = hb.finish();
    // Structural + schedule verification pass (bounds are runtime facts).
    let design = verify_and_generate(&m);
    let func = FuncOp::wrap(&m, m.top_ops()[0]).unwrap();
    let mut harness = Harness::new(&design, &m, func, &[HarnessArg::zero_mem(8)]).expect("harness");
    let err = harness.run(1000).unwrap_err();
    assert!(err.0.contains("out of bounds"), "{err}");
}

#[test]
fn generated_verilog_contains_paper_table3_constructs() {
    let m = transpose_module(16);
    let design = verify_and_generate(&m);
    let text = verilog::print_design(&design);
    assert!(text.contains("module hir_transpose"), "{text}");
    assert!(text.contains("always @(posedge clk)"), "FSM/regs expected");
    assert!(
        text.contains("loop iteration pulse"),
        "loop controller expected"
    );
    assert!(text.contains("Ai_rd_en"), "memory interface expected");
    assert!(text.contains("Co_wr_en"), "memory interface expected");
}

/// A pipelined multiplier implementation used as an external blackbox.
fn pipelined_mult_module(name: &str, width: u32, stages: u32) -> VModule {
    let mut m = VModule::new(name);
    m.port("clk", Dir::Input, 1);
    m.port("start", Dir::Input, 1);
    m.port("arg0", Dir::Input, width);
    m.port("arg1", Dir::Input, width);
    m.port("result0", Dir::Output, width);
    let mut prev = "p0".to_string();
    m.wire(&prev, width);
    m.assign(
        &prev,
        Expr::bin(verilog::BinOp::Mul, Expr::r("arg0"), Expr::r("arg1")),
    );
    for s in 0..stages {
        let reg = format!("stage{s}");
        m.reg(&reg, width);
        m.main_always().stmts.push(verilog::Stmt::NonBlocking {
            lhs: verilog::LValue::Net(reg.clone()),
            rhs: Expr::r(&prev),
        });
        prev = reg;
    }
    m.assign("result0", Expr::r(&prev));
    m
}
