//! Hardware resource report (the observability counterpart of paper §6's
//! LUT/FF/BRAM evaluation tables): while Verilog is being generated, the
//! code generator tallies what the design will cost — registers, memory
//! ports by kind, arithmetic units, delay-line bits — and this module turns
//! the tallies into a machine-readable JSON report plus a human table for
//! `hirc --resource-report`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How a unit's representative net translates to "the unit was active".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivityMode {
    /// Datapath unit: active in cycles where the net's value changed.
    Toggle,
    /// Control signal: active in cycles where the net was non-zero.
    High,
}

impl ActivityMode {
    /// Stable lower-case label (used in JSON and telemetry reports).
    pub fn label(self) -> &'static str {
        match self {
            ActivityMode::Toggle => "toggle",
            ActivityMode::High => "high",
        }
    }
}

/// A scheduled resource unit joined to the generated net that witnesses its
/// activity, so a simulation's telemetry counters can report dynamic
/// utilization per unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitNet {
    /// Unit label, matching the tally keys (`arith.add`, `delay`, `loop`,
    /// `instance`, `port.bram.read`, …).
    pub unit: String,
    /// Net name inside the generated module. Nets of the *top* simulated
    /// module keep their names through flattening, so these resolve
    /// directly in the simulator.
    pub net: String,
    pub mode: ActivityMode,
}

/// Resource tally for one generated function module.
///
/// Semantic counts (`arith`, `delay_lines`, `mem_ports`, …) are recorded at
/// the emission site that decides the hardware exists; structural counts
/// (`registers`, `memories`, `instances`) are read back from the finished
/// [`verilog::VModule`], so the two views cross-check each other.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncResources {
    /// HIR function name.
    pub function: String,
    /// Generated Verilog module name.
    pub module: String,
    /// Flip-flop nets (every `reg` declaration, including pulse chains).
    pub registers: u64,
    /// Total flip-flop bits.
    pub register_bits: u64,
    /// `hir.delay` shift registers actually emitted (constant and zero-cycle
    /// delays cost nothing and are not counted).
    pub delay_lines: u64,
    /// Total bits across all delay-line stages (`by × width` each).
    pub delay_line_bits: u64,
    /// 1-bit schedule pulse registers (the paper's pulse chains).
    pub pulse_regs: u64,
    /// `hir.for` loop controllers (counter + guard FSMs).
    pub loops: u64,
    /// Combinational arithmetic units by operator (`add`, `mult`, `cmp`, …).
    /// Constant-folded ops never reach hardware and are not counted.
    pub arith: BTreeMap<String, u64>,
    /// Memory port banks by `<mem-kind>.<direction>` (e.g. `bram.read`,
    /// `bram.rw` after port demotion). Counts banks, the unit a RAM
    /// primitive's port budget is spent in.
    pub mem_ports: BTreeMap<String, u64>,
    /// Inferred on-chip memory arrays (internal allocs × banks).
    pub memories: u64,
    /// Total bits across inferred memories.
    pub memory_bits: u64,
    /// Module instances (calls to other functions / external IP).
    pub instances: u64,
    /// Units joined to representative nets for dynamic utilization (one
    /// entry per emitted unit, in emission order).
    pub unit_nets: Vec<UnitNet>,
}

impl FuncResources {
    /// Fill the structural counts by scanning the finished module.
    pub(crate) fn finalize(&mut self, vm: &verilog::VModule) {
        self.module = vm.name.clone();
        self.registers = 0;
        self.register_bits = 0;
        for n in &vm.nets {
            if n.kind == verilog::NetKind::Reg {
                self.registers += 1;
                self.register_bits += u64::from(n.width);
            }
        }
        self.memories = vm.memories.len() as u64;
        self.memory_bits = vm
            .memories
            .iter()
            .map(|m| u64::from(m.width) * m.depth)
            .sum();
        self.instances = vm.instances.len() as u64;
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"function\":\"{}\",\"module\":\"{}\",\"registers\":{},\
             \"register_bits\":{},\"delay_lines\":{},\"delay_line_bits\":{},\
             \"pulse_regs\":{},\"loops\":{},\"memories\":{},\"memory_bits\":{},\
             \"instances\":{}",
            obs::json::escape(&self.function),
            obs::json::escape(&self.module),
            self.registers,
            self.register_bits,
            self.delay_lines,
            self.delay_line_bits,
            self.pulse_regs,
            self.loops,
            self.memories,
            self.memory_bits,
            self.instances,
        );
        for (key, map) in [("arith", &self.arith), ("mem_ports", &self.mem_ports)] {
            let _ = write!(out, ",\"{key}\":{{");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", obs::json::escape(k), v);
            }
            out.push('}');
        }
        out.push_str(",\"unit_nets\":[");
        for (i, u) in self.unit_nets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"unit\":\"{}\",\"net\":\"{}\",\"mode\":\"{}\"}}",
                obs::json::escape(&u.unit),
                obs::json::escape(&u.net),
                u.mode.label()
            );
        }
        out.push_str("]}");
    }
}

/// Resource report for a whole design (one entry per generated module, in
/// module order — deterministic at any `--threads` value because codegen
/// walks `top_ops` serially).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResourceReport {
    pub functions: Vec<FuncResources>,
}

impl ResourceReport {
    /// Strict JSON encoding (accepted by `obs::json::parse`), newline
    /// terminated.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"functions\":[");
        for (i, f) in self.functions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            f.json_into(&mut out);
        }
        out.push_str("]}\n");
        out
    }

    /// Human-readable table for terminal output.
    pub fn table(&self) -> String {
        let mut out = String::new();
        for f in &self.functions {
            let _ = writeln!(out, "fn @{}  (module {})", f.function, f.module);
            let _ = writeln!(
                out,
                "  registers    {:>8}  ({} bits, {} pulse regs)",
                f.registers, f.register_bits, f.pulse_regs
            );
            let _ = writeln!(
                out,
                "  delay lines  {:>8}  ({} bits)",
                f.delay_lines, f.delay_line_bits
            );
            let _ = writeln!(
                out,
                "  memories     {:>8}  ({} bits)",
                f.memories, f.memory_bits
            );
            let _ = writeln!(out, "  loops        {:>8}", f.loops);
            let _ = writeln!(out, "  instances    {:>8}", f.instances);
            for (k, v) in &f.arith {
                let _ = writeln!(out, "  arith.{k:<12} {v:>3}");
            }
            for (k, v) in &f.mem_ports {
                let _ = writeln!(out, "  port.{k:<13} {v:>3}");
            }
        }
        out
    }
}

/// Stable label for an arithmetic unit of the given compute kind.
pub(crate) fn kind_label(kind: hir::ops::ComputeKind) -> &'static str {
    use hir::ops::ComputeKind as K;
    match kind {
        K::Add => "add",
        K::Sub => "sub",
        K::Mult => "mult",
        K::And => "and",
        K::Or => "or",
        K::Xor => "xor",
        K::Not => "not",
        K::Shl => "shl",
        K::Shr => "shr",
        K::Cmp(_) => "cmp",
        K::Select => "select",
        // Pure wiring (no LUTs), but counted so the report is total.
        K::Trunc | K::Zext | K::Sext | K::Slice => "cast",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_strict_and_table_renders() {
        let mut f = FuncResources {
            function: "mac".into(),
            module: "hir_mac".into(),
            ..Default::default()
        };
        f.arith.insert("add".into(), 2);
        f.mem_ports.insert("bram.read".into(), 1);
        f.registers = 7;
        f.register_bits = 35;
        let report = ResourceReport { functions: vec![f] };
        let json = report.to_json();
        let v = obs::json::parse(&json).expect("strict parse");
        let funcs = v
            .get("functions")
            .and_then(|f| f.as_array())
            .expect("functions array");
        assert_eq!(funcs.len(), 1);
        assert_eq!(
            funcs[0].get("module").and_then(|m| m.as_str()),
            Some("hir_mac")
        );
        assert_eq!(
            funcs[0]
                .get("arith")
                .and_then(|a| a.get("add"))
                .and_then(|n| n.as_f64()),
            Some(2.0)
        );
        let table = report.table();
        assert!(table.contains("fn @mac"), "{table}");
        assert!(table.contains("port.bram.read"), "{table}");
    }
}
