//! # `hir-codegen` — HIR to synthesizable Verilog (paper §4.6, Table 3)
//!
//! The code generator realizes the paper's hardware mapping:
//!
//! | HIR construct       | Hardware                                         |
//! |---------------------|--------------------------------------------------|
//! | functions           | Verilog modules (with a `start` pulse input)     |
//! | primitive values    | wires                                            |
//! | memrefs             | block RAM / distributed RAM / register banks     |
//! | integer arithmetic  | combinational operators                          |
//! | `hir.delay`         | shift registers                                  |
//! | `for` loops         | generated counter/guard state machines           |
//! | schedules           | one-cycle *pulse chains* derived from `start`    |
//! | `unroll_for`        | static replication of the body                   |
//!
//! The *schedule* is implemented by pulse chains: for every time-variable
//! root (function start, loop iteration, loop completion) a 1-bit pulse
//! signal exists, and static offsets become taps on a shift register fed by
//! that pulse. Every scheduled operation is enabled by its tap. The
//! controller for a `hir.for` is the small FSM of paper Table 3: an
//! induction-variable register, a guard comparator, and `iter`/`done`
//! pulses; `hir.yield`'s offset re-arms it, giving pipelining for free.
//!
//! Undefined behaviours of §4.5 are guarded by generated assertions
//! (out-of-bounds indices, same-port conflicts), which [`verilog::Simulator`]
//! enforces during RTL simulation.

pub mod resources;
pub mod testbench;

pub use resources::{ActivityMode, FuncResources, ResourceReport, UnitNet};

use hir::dialect::opname;
use hir::ops::{
    self, AllocOp, CallOp, ConstantOp, DelayOp, ForOp, FuncOp, IfOp, MemReadOp, MemWriteOp,
    UnrollForOp,
};
use hir::types::{Dim, MemKind, MemrefInfo};
use hir::CmpPredicate;
use ir::{Module, OpId, SymbolTable, ValueId};
use std::collections::HashMap;
use std::fmt;
use verilog::{BinOp, Design, Dir, Expr, Instance, LValue, Stmt, VModule};

/// Code generation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodegenError(pub String);

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen error: {}", self.0)
    }
}
impl std::error::Error for CodegenError {}

type Result<T> = std::result::Result<T, CodegenError>;

/// Options controlling generation.
#[derive(Clone, Debug)]
pub struct CodegenOptions {
    /// Emit §4.5 assertion guards into the RTL.
    pub assertions: bool,
    /// Emit HIR source locations as comments (paper §5.5).
    pub location_comments: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            assertions: true,
            location_comments: true,
        }
    }
}

/// Verilog module name for an HIR function.
pub fn module_name(func: &str) -> String {
    format!("hir_{func}")
}

/// Generate a Verilog design containing one module per (non-external)
/// function in the HIR module.
///
/// # Errors
/// Fails on constructs the generator cannot lower (e.g. dynamic distributed
/// indices), which the verifier rejects first in normal pipelines.
pub fn generate_design(m: &Module, options: &CodegenOptions) -> Result<Design> {
    generate_design_with_report(m, options).map(|(design, _)| design)
}

/// Like [`generate_design`], but also returns the hardware resource report
/// tallied during emission (`hirc --resource-report`).
///
/// # Errors
/// Same failure modes as [`generate_design`].
pub fn generate_design_with_report(
    m: &Module,
    options: &CodegenOptions,
) -> Result<(Design, ResourceReport)> {
    let _span = obs::span("generate_design");
    let mut design = Design::new();
    let mut report = ResourceReport::default();
    for &top in m.top_ops() {
        let Some(func) = FuncOp::wrap(m, top) else {
            continue;
        };
        if func.is_external(m) {
            continue; // provided as a blackbox by the environment
        }
        let (vm, res) = generate_func_with_resources(m, func, options)?;
        obs::counter_add("codegen", "modules", 1);
        obs::counter_add("codegen", "nets", vm.nets.len() as u64);
        obs::counter_add("codegen", "memories", vm.memories.len() as u64);
        obs::counter_add("codegen", "instances", vm.instances.len() as u64);
        obs::counter_add("codegen", "assigns", vm.assigns.len() as u64);
        design.add(vm);
        report.functions.push(res);
    }
    Ok((design, report))
}

/// Behavioral placeholder modules for the external (blackbox) functions of
/// `m`, named exactly as [`FuncCodegen`] instantiates them, so a design that
/// calls external IP can still be elaborated and simulated (`--emit=sim`).
///
/// A stub registers the sum of its scalar arguments through `result_delays`
/// stages — deterministic waveform activity with the declared latency, *not*
/// the real IP's function. Memref bus outputs are tied low.
///
/// # Errors
/// Fails when an external argument or result type has no bit width.
pub fn extern_stubs(m: &Module) -> Result<Vec<VModule>> {
    let mut out = Vec::new();
    for &top in m.top_ops() {
        let Some(func) = FuncOp::wrap(m, top) else {
            continue;
        };
        if !func.is_external(m) {
            continue;
        }
        let name = func.name(m);
        let mut vm = VModule::new(sanitize(&name));
        vm.comments.push(format!(
            "behavioral placeholder for external @{name}: results are the sum \
             of the scalar arguments, delayed by the declared result delay"
        ));
        vm.port("clk", Dir::Input, 1);
        vm.port("start", Dir::Input, 1);

        let arg_types = func.arg_types(m);
        let mut arg_names: Vec<String> = func
            .arg_names(m)
            .unwrap_or_default()
            .iter()
            .map(|n| sanitize(n))
            .collect();
        while arg_names.len() < arg_types.len() {
            arg_names.push(format!("arg{}", arg_names.len()));
        }
        let mut scalars: Vec<(String, u32)> = Vec::new();
        for (ty, pname) in arg_types.iter().zip(&arg_names) {
            if let Some(info) = MemrefInfo::from_type(ty) {
                let banks = info.num_banks();
                let width = info.elem.bit_width().unwrap_or(32);
                let addr_w = info.addr_bits().max(1);
                for b in 0..banks {
                    let mk = |sig: &str| bus(pname, b, banks, sig);
                    if info.port.can_read() {
                        vm.port(mk("addr"), Dir::Output, addr_w);
                        vm.port(mk("rd_en"), Dir::Output, 1);
                        vm.port(mk("rd_data"), Dir::Input, width);
                        vm.assign(mk("addr"), Expr::c(0, addr_w));
                        vm.assign(mk("rd_en"), Expr::c(0, 1));
                    }
                    if info.port.can_write() {
                        vm.port(mk("waddr"), Dir::Output, addr_w);
                        vm.port(mk("wr_en"), Dir::Output, 1);
                        vm.port(mk("wr_data"), Dir::Output, width);
                        vm.assign(mk("waddr"), Expr::c(0, addr_w));
                        vm.assign(mk("wr_en"), Expr::c(0, 1));
                        vm.assign(mk("wr_data"), Expr::c(0, width));
                    }
                }
            } else {
                let w = ty.bit_width().ok_or_else(|| {
                    CodegenError(format!("external @{name}: argument {pname} has no width"))
                })?;
                vm.port(pname, Dir::Input, w);
                scalars.push((pname.clone(), w));
            }
        }

        let delays = func.result_delays(m);
        for (i, rty) in func.result_types(m).iter().enumerate() {
            let w = rty.bit_width().ok_or_else(|| {
                CodegenError(format!("external @{name}: result {i} has no width"))
            })?;
            let mut value = Expr::c(0, w);
            for (sname, sw) in &scalars {
                let s = if *sw == w {
                    Expr::r(sname)
                } else if *sw > w {
                    Expr::Slice {
                        base: Box::new(Expr::r(sname)),
                        hi: w - 1,
                        lo: 0,
                    }
                } else {
                    Expr::SignExtend {
                        arg: Box::new(Expr::r(sname)),
                        from: *sw,
                        to: w,
                    }
                };
                value = Expr::add(value, s);
            }
            let d = delays.get(i).copied().unwrap_or(0).max(0) as u64;
            for k in 0..d {
                let reg = vm.reg(format!("r{i}_d{k}"), w);
                vm.main_always().stmts.push(Stmt::NonBlocking {
                    lhs: LValue::Net(reg.clone()),
                    rhs: value,
                });
                value = Expr::r(&reg);
            }
            let port = format!("result{i}");
            vm.port(&port, Dir::Output, w);
            vm.assign(&port, value);
        }
        out.push(vm);
    }
    Ok(out)
}

// ----------------------------------------------------------------- codegen

/// A compile-time or runtime value in the generated datapath.
#[derive(Clone, Debug)]
enum CgVal {
    /// Statically known integer (from `!hir.const` arithmetic or unrolling).
    Const(i128),
    /// A named wire of the given width.
    Wire(String, u32),
}

/// A time reference: pulses `extra` cycles after the `root` pulse signal.
#[derive(Clone, Debug)]
struct TimeRef {
    root: String,
    extra: i64,
}

/// A predication context from enclosing `hir.if` ops. Each condition was
/// captured on a wire at a specific instant; ops scheduled `d` cycles later
/// (on the same root) are gated by the condition delayed `d` cycles through
/// a shift register — so pipelined loops with II smaller than the branch
/// span stay correct.
#[derive(Clone, Debug, Default)]
struct Gate {
    conds: Vec<CondRef>,
}

#[derive(Clone, Debug)]
struct CondRef {
    /// 1-bit signal holding the (possibly inverted) condition, valid at the
    /// capture instant.
    signal: String,
    /// Root pulse signal of the capture instant.
    root: String,
    /// Total offset of the capture instant from `root`.
    at: i64,
}

impl Gate {
    fn always() -> Self {
        Gate::default()
    }

    fn with(&self, c: CondRef) -> Self {
        let mut g = self.clone();
        g.conds.push(c);
        g
    }
}

/// One access to a memory port bank, to be muxed.
#[derive(Clone, Debug)]
struct PortAccess {
    /// Enable expression (the op's pulse, possibly gated by `hir.if`).
    enable: Expr,
    /// In-bank linear address.
    addr: Expr,
    /// Write data (None for reads).
    wdata: Option<Expr>,
    /// Static bank index.
    bank: u64,
    /// Source location for comments/diagnostics.
    loc: String,
}

/// Where the buses of a memref port live.
#[derive(Clone, Debug)]
enum PortKind {
    /// Module-level argument: buses are module ports named after the arg.
    External { base: String },
    /// Internal alloc: buses connect to an inlined memory.
    Internal { alloc: OpId, port_index: usize },
}

#[derive(Clone, Debug)]
struct PortInfo {
    kind: PortKind,
    info: MemrefInfo,
    reads: Vec<PortAccess>,
    writes: Vec<PortAccess>,
}

struct FuncCodegen<'m> {
    m: &'m Module,
    symbols: SymbolTable,
    options: CodegenOptions,
    module: VModule,
    /// Pulse shift-register chains: root signal -> taps (index = delay-1).
    chains: HashMap<String, Vec<String>>,
    /// Memory ports by memref ValueId.
    ports: HashMap<ValueId, PortInfo>,
    /// Fresh-name counter.
    next_id: usize,
    instance_count: usize,
    /// Signals contributing to the module's `busy` output (pulse chains,
    /// loop controllers, callee busy outputs).
    busy: Vec<Expr>,
    /// Roots whose chains carry condition VALUES, not activity pulses —
    /// excluded from `busy`.
    condition_roots: std::collections::HashSet<String>,
    /// Resource tally filled in as hardware is emitted.
    res: FuncResources,
}

/// Generate the module for one function.
pub fn generate_func(m: &Module, func: FuncOp, options: &CodegenOptions) -> Result<VModule> {
    generate_func_with_resources(m, func, options).map(|(vm, _)| vm)
}

/// Like [`generate_func`], but also returns the function's resource tally.
///
/// # Errors
/// Same failure modes as [`generate_func`].
pub fn generate_func_with_resources(
    m: &Module,
    func: FuncOp,
    options: &CodegenOptions,
) -> Result<(VModule, FuncResources)> {
    let mut cg = FuncCodegen {
        m,
        symbols: SymbolTable::build(m),
        options: options.clone(),
        module: VModule::new(module_name(&func.name(m))),
        chains: HashMap::new(),
        ports: HashMap::new(),
        next_id: 0,
        instance_count: 0,
        busy: Vec::new(),
        condition_roots: std::collections::HashSet::new(),
        res: FuncResources {
            function: func.name(m),
            ..FuncResources::default()
        },
    };
    cg.run(func)?;
    cg.res.pulse_regs = cg.chains.values().map(|c| c.len() as u64).sum();
    cg.res.finalize(&cg.module);
    Ok((cg.module, cg.res))
}

impl<'m> FuncCodegen<'m> {
    fn fresh(&mut self, stem: &str) -> String {
        let n = self.next_id;
        self.next_id += 1;
        format!("{stem}_{n}")
    }

    fn err(&self, msg: impl Into<String>) -> CodegenError {
        CodegenError(msg.into())
    }

    fn loc_comment(&self, op: OpId) -> String {
        match self.m.op(op).loc().file_line() {
            Some((f, l, c)) => format!("{f}:{l}:{c}"),
            None => format!("hir.{}", self.m.op(op).name().op()),
        }
    }

    fn run(&mut self, func: FuncOp) -> Result<()> {
        let m = self.m;
        self.module.comments.push(format!(
            "generated by hir-codegen from hir.func @{}",
            func.name(m)
        ));
        self.module.port("clk", Dir::Input, 1);
        self.module.port("start", Dir::Input, 1);

        // Arguments.
        let mut env: HashMap<ValueId, CgVal> = HashMap::new();
        let mut times: HashMap<ValueId, TimeRef> = HashMap::new();
        let arg_names = func
            .arg_names(m)
            .unwrap_or_else(|| (0..func.args(m).len()).map(|i| format!("arg{i}")).collect());
        for (i, arg) in func.args(m).iter().enumerate() {
            let name = sanitize(&arg_names[i]);
            let ty = m.value_type(*arg);
            if let Some(info) = MemrefInfo::from_type(&ty) {
                self.declare_external_port(&name, &info);
                self.ports.insert(
                    *arg,
                    PortInfo {
                        kind: PortKind::External { base: name },
                        info,
                        reads: Vec::new(),
                        writes: Vec::new(),
                    },
                );
            } else {
                let width = ty.bit_width().ok_or_else(|| {
                    self.err(format!("unsupported argument type {ty} for '{name}'"))
                })?;
                self.module.port(&name, Dir::Input, width);
                env.insert(*arg, CgVal::Wire(name, width));
            }
        }
        times.insert(
            func.time_var(m),
            TimeRef {
                root: "start".into(),
                extra: 0,
            },
        );

        // Body.
        let body = func.body(m);
        self.emit_block(body, &mut env, &mut times, &Gate::always())?;

        // Results.
        if let Some(ret) = func.return_op(m) {
            let delays = func.result_delays(m);
            let operands = m.op(ret).operands().to_vec();
            for (i, v) in operands.iter().enumerate() {
                let val = self.value(*v, &env)?;
                let width = m.value_type(*v).bit_width().unwrap_or(32);
                let port = format!("result{i}");
                self.module.port(&port, Dir::Output, width);
                let e = self.to_expr(&val, width);
                self.module.assign(&port, e);
                let vport = format!("result{i}_valid");
                self.module.port(&vport, Dir::Output, 1);
                let d = delays.get(i).copied().unwrap_or(0);
                let pulse = self.pulse(
                    &TimeRef {
                        root: "start".into(),
                        extra: 0,
                    },
                    d,
                );
                self.module.assign(&vport, pulse);
            }
        }

        // Memories and port muxes.
        let mut port_ids: Vec<ValueId> = self.ports.keys().copied().collect();
        port_ids.sort();
        for id in port_ids {
            self.emit_port(id)?;
        }

        // The `busy` output (an `ap_idle`-style indicator): high while any
        // pulse is in flight anywhere in the design.
        self.module.port("busy", Dir::Output, 1);
        let mut acc = Expr::r("start");
        for b in std::mem::take(&mut self.busy) {
            acc = Expr::or(acc, b);
        }
        self.module.assign("busy", acc);
        Ok(())
    }

    // --------------------------------------------------------------- pulses

    /// The 1-bit signal pulsing `offset` cycles after `t`.
    fn pulse(&mut self, t: &TimeRef, offset: i64) -> Expr {
        let total = t.extra + offset;
        assert!(total >= 0, "negative schedule offset");
        if total == 0 {
            return Expr::r(&t.root);
        }
        let total = total as usize;
        let existing = self.chains.get(&t.root).map_or(0, Vec::len);
        for k in existing..total {
            let prev = if k == 0 {
                Expr::r(&t.root)
            } else {
                Expr::r(&self.chains[&t.root][k - 1])
            };
            let name = format!("{}_p{}", sanitize(&t.root), k + 1);
            self.module.reg(&name, 1);
            self.module.main_always().stmts.push(Stmt::NonBlocking {
                lhs: LValue::Net(name.clone()),
                rhs: prev,
            });
            if !self.condition_roots.contains(&t.root) {
                self.busy.push(Expr::r(&name));
            }
            self.chains.entry(t.root.clone()).or_default().push(name);
        }
        Expr::r(&self.chains[&t.root][total - 1])
    }

    /// AND a pulse with every enclosing condition, each delayed to the
    /// op's instant. Conditions whose capture root differs from the op's
    /// root fall back to the raw captured signal (sound only for loops
    /// started under the gate, which consume it at their start pulse).
    fn gated(&mut self, pulse: Expr, gate: &Gate, op_root: &str, op_total: i64) -> Expr {
        let mut acc = pulse;
        for c in gate.conds.clone() {
            let cond_expr = if c.root == op_root && op_total >= c.at {
                self.pulse(
                    &TimeRef {
                        root: c.signal.clone(),
                        extra: 0,
                    },
                    op_total - c.at,
                )
            } else {
                Expr::r(&c.signal)
            };
            acc = Expr::and(acc, cond_expr);
        }
        acc
    }

    // --------------------------------------------------------------- values

    fn value(&self, v: ValueId, env: &HashMap<ValueId, CgVal>) -> Result<CgVal> {
        env.get(&v)
            .cloned()
            .ok_or_else(|| self.err("use of value before its generator was emitted"))
    }

    fn to_expr(&self, val: &CgVal, width: u32) -> Expr {
        match val {
            CgVal::Const(c) => Expr::c((*c as u64) & mask64(width), width),
            CgVal::Wire(name, w) => {
                if *w == width {
                    Expr::r(name)
                } else if *w > width {
                    Expr::Slice {
                        base: Box::new(Expr::r(name)),
                        hi: width - 1,
                        lo: 0,
                    }
                } else {
                    Expr::SignExtend {
                        arg: Box::new(Expr::r(name)),
                        from: *w,
                        to: width,
                    }
                }
            }
        }
    }

    /// Like [`Self::to_expr`] but widening with ZERO extension — addresses
    /// and bank selects carry raw unsigned bits.
    fn to_expr_unsigned(&self, val: &CgVal, width: u32) -> Expr {
        match val {
            CgVal::Const(c) => Expr::c((*c as u64) & mask64(width), width),
            CgVal::Wire(name, w) => {
                if *w == width {
                    Expr::r(name)
                } else if *w > width {
                    Expr::Slice {
                        base: Box::new(Expr::r(name)),
                        hi: width - 1,
                        lo: 0,
                    }
                } else {
                    Expr::Concat(vec![Expr::c(0, width - w), Expr::r(name)])
                }
            }
        }
    }

    /// Width of an HIR value in the datapath (consts get context width).
    fn width_of(&self, v: ValueId) -> u32 {
        self.m.value_type(v).bit_width().unwrap_or(32)
    }

    // ---------------------------------------------------------------- block

    fn emit_block(
        &mut self,
        block: ir::BlockId,
        env: &mut HashMap<ValueId, CgVal>,
        times: &mut HashMap<ValueId, TimeRef>,
        gate: &Gate,
    ) -> Result<()> {
        for &op in self.m.block(block).ops().to_vec().iter() {
            self.emit_op(op, env, times, gate)?;
        }
        Ok(())
    }

    fn timeref(&self, t: ValueId, times: &HashMap<ValueId, TimeRef>) -> Result<TimeRef> {
        times
            .get(&t)
            .cloned()
            .ok_or_else(|| self.err("time variable not mapped (unsupported schedule)"))
    }

    fn emit_op(
        &mut self,
        op: OpId,
        env: &mut HashMap<ValueId, CgVal>,
        times: &mut HashMap<ValueId, TimeRef>,
        gate: &Gate,
    ) -> Result<()> {
        let m = self.m;
        match m.op(op).name().as_str() {
            opname::CONSTANT => {
                let c = ConstantOp(op);
                let attr = c.value_attr(m);
                let v = attr
                    .as_int()
                    .ok_or_else(|| self.err("float constants are not synthesizable yet"))?;
                env.insert(c.result(m), CgVal::Const(v));
                Ok(())
            }
            opname::ALLOC => {
                let alloc = AllocOp(op);
                for (i, port) in alloc.ports(m).into_iter().enumerate() {
                    let info = MemrefInfo::from_type(&m.value_type(port))
                        .ok_or_else(|| self.err("hir.alloc result is not a memref type"))?;
                    self.ports.insert(
                        port,
                        PortInfo {
                            kind: PortKind::Internal {
                                alloc: op,
                                port_index: i,
                            },
                            info,
                            reads: Vec::new(),
                            writes: Vec::new(),
                        },
                    );
                }
                Ok(())
            }
            opname::DELAY => self.emit_delay(DelayOp(op), env),
            opname::MEM_READ => self.emit_mem_read(MemReadOp(op), env, times, gate),
            opname::MEM_WRITE => self.emit_mem_write(MemWriteOp(op), env, times, gate),
            opname::FOR => self.emit_for(ForOp(op), env, times, gate),
            opname::UNROLL_FOR => self.emit_unroll(UnrollForOp(op), env, times, gate),
            opname::CALL => self.emit_call(CallOp(op), env, times, gate),
            opname::IF => self.emit_if(IfOp(op), env, times, gate),
            opname::YIELD | opname::RETURN => Ok(()), // handled by parents
            _ => self.emit_compute(op, env),
        }
    }

    // -------------------------------------------------------------- compute

    fn emit_compute(&mut self, op: OpId, env: &mut HashMap<ValueId, CgVal>) -> Result<()> {
        let m = self.m;
        let kind = ops::compute_kind(m, op)
            .ok_or_else(|| self.err(format!("cannot lower op '{}'", m.op(op).name())))?;
        let operands = m.op(op).operands().to_vec();
        let vals: Vec<CgVal> = operands
            .iter()
            .map(|&v| self.value(v, env))
            .collect::<Result<_>>()?;
        let result = m.op(op).results()[0];
        let res_ty = m.value_type(result);

        // Pure constant arithmetic folds at generation time.
        if vals.iter().all(|v| matches!(v, CgVal::Const(_))) {
            let ints: Vec<i128> = vals
                .iter()
                .map(|v| match v {
                    CgVal::Const(c) => *c,
                    CgVal::Wire(..) => unreachable!(),
                })
                .collect();
            let folded = fold_compute(kind, &ints, m, op)?;
            env.insert(result, CgVal::Const(folded));
            return Ok(());
        }
        *self
            .res
            .arith
            .entry(resources::kind_label(kind).to_string())
            .or_insert(0) += 1;

        let width = res_ty
            .bit_width()
            .ok_or_else(|| self.err(format!("compute result of type {res_ty} has no width")))?;
        use hir::ops::ComputeKind as K;
        let in_width = |i: usize| -> u32 {
            match &vals[i] {
                CgVal::Wire(_, w) => *w,
                CgVal::Const(_) => width,
            }
        };
        let expr = match kind {
            K::Add | K::Sub | K::Mult | K::And | K::Or | K::Xor | K::Shl | K::Shr => {
                let w = width.max(in_width(0)).max(in_width(1));
                let a = self.to_expr(&vals[0], w);
                let b = self.to_expr(&vals[1], w);
                let vop = match kind {
                    K::Add => BinOp::Add,
                    K::Sub => BinOp::Sub,
                    K::Mult => BinOp::Mul,
                    K::And => BinOp::And,
                    K::Or => BinOp::Or,
                    K::Xor => BinOp::Xor,
                    K::Shl => BinOp::Shl,
                    K::Shr => BinOp::AShr,
                    _ => unreachable!(),
                };
                let full = Expr::bin(vop, a, b);
                if w > width {
                    Expr::Slice {
                        base: Box::new(full),
                        hi: width - 1,
                        lo: 0,
                    }
                } else {
                    full
                }
            }
            K::Not => Expr::not(self.to_expr(&vals[0], width)),
            K::Cmp(pred) => {
                let w = in_width(0).max(in_width(1));
                let a = self.to_expr(&vals[0], w);
                let b = self.to_expr(&vals[1], w);
                let vop = match pred {
                    CmpPredicate::Eq => BinOp::Eq,
                    CmpPredicate::Ne => BinOp::Ne,
                    CmpPredicate::Lt => BinOp::SLt,
                    CmpPredicate::Le => BinOp::SLe,
                    CmpPredicate::Gt => BinOp::SGt,
                    CmpPredicate::Ge => BinOp::SGe,
                };
                Expr::bin(vop, a, b)
            }
            K::Select => {
                let cond = self.to_expr(&vals[0], 1);
                Expr::mux(
                    cond,
                    self.to_expr(&vals[1], width),
                    self.to_expr(&vals[2], width),
                )
            }
            K::Trunc => {
                let a = self.to_expr(&vals[0], in_width(0));
                Expr::Slice {
                    base: Box::new(a),
                    hi: width - 1,
                    lo: 0,
                }
            }
            K::Zext => {
                let from = in_width(0);
                let a = self.to_expr(&vals[0], from);
                if width > from {
                    Expr::Concat(vec![Expr::c(0, width - from), a])
                } else {
                    a
                }
            }
            K::Sext => {
                let from = in_width(0);
                let a = self.to_expr(&vals[0], from);
                Expr::SignExtend {
                    arg: Box::new(a),
                    from,
                    to: width,
                }
            }
            K::Slice => {
                let hi = m
                    .op(op)
                    .attr(hir::attrkey::HI)
                    .and_then(|a| a.as_int())
                    .ok_or_else(|| self.err("hir.slice is missing its integer 'hi' attribute"))?
                    as u32;
                let lo = m
                    .op(op)
                    .attr(hir::attrkey::LO)
                    .and_then(|a| a.as_int())
                    .ok_or_else(|| self.err("hir.slice is missing its integer 'lo' attribute"))?
                    as u32;
                Expr::Slice {
                    base: Box::new(self.to_expr(&vals[0], in_width(0))),
                    hi,
                    lo,
                }
            }
        };
        let wire = self.fresh("v");
        self.module.wire(&wire, width);
        self.res.unit_nets.push(resources::UnitNet {
            unit: format!("arith.{}", resources::kind_label(kind)),
            net: wire.clone(),
            mode: resources::ActivityMode::Toggle,
        });
        if self.options.location_comments {
            let c = self.loc_comment(op);
            self.module.assign_with_comment(&wire, expr, c);
        } else {
            self.module.assign(&wire, expr);
        }
        env.insert(result, CgVal::Wire(wire, width));
        Ok(())
    }

    fn emit_delay(&mut self, d: DelayOp, env: &mut HashMap<ValueId, CgVal>) -> Result<()> {
        let m = self.m;
        let input = self.value(d.input(m), env)?;
        let by = d.by(m);
        let result = d.result(m);
        if by == 0 || matches!(input, CgVal::Const(_)) {
            env.insert(result, input);
            return Ok(());
        }
        let width = self.width_of(result);
        self.res.delay_lines += 1;
        self.res.delay_line_bits += by as u64 * u64::from(width);
        let mut prev = self.to_expr(&input, width);
        let stem = self.fresh("dly");
        let mut last = String::new();
        for k in 0..by {
            let reg = format!("{stem}_{k}");
            self.module.reg(&reg, width);
            self.module.main_always().stmts.push(Stmt::NonBlocking {
                lhs: LValue::Net(reg.clone()),
                rhs: prev,
            });
            prev = Expr::r(&reg);
            last = reg;
        }
        self.res.unit_nets.push(resources::UnitNet {
            unit: "delay".into(),
            net: last.clone(),
            mode: resources::ActivityMode::Toggle,
        });
        env.insert(result, CgVal::Wire(last, width));
        Ok(())
    }

    // --------------------------------------------------------------- memory

    /// Compute (bank, in-bank address expr), emitting bound assertions.
    fn linearize(
        &mut self,
        info: &MemrefInfo,
        indices: &[CgVal],
        enable: &Expr,
        loc: &str,
    ) -> Result<(u64, Expr)> {
        let mut bank = 0u64;
        let mut addr: Option<Expr> = None;
        let addr_w = info.addr_bits().max(1);
        for (dim, idx) in info.dims.iter().zip(indices) {
            match dim {
                Dim::Distributed(n) => match idx {
                    CgVal::Const(c) => {
                        if *c < 0 || *c as u64 >= *n {
                            return Err(self.err(format!(
                                "static distributed index {c} out of bounds ({loc})"
                            )));
                        }
                        bank = bank * n + *c as u64;
                    }
                    CgVal::Wire(..) => {
                        return Err(self.err(format!(
                            "distributed dimension indexed by a dynamic value ({loc}); \
                             the verifier requires !hir.const indices"
                        )));
                    }
                },
                Dim::Packed(n) => {
                    let idx_expr = self.to_expr_unsigned(idx, addr_w);
                    if self.options.assertions {
                        if let CgVal::Wire(_, natural_w) = idx {
                            // Compare at full width: the truncated in-bank
                            // address always looks in range, the raw index
                            // does not (paper §4.5 bounds guard).
                            let w_assert = (*natural_w).max(hir::types::bits_for(*n) + 1);
                            let full_idx = self.to_expr_unsigned(idx, w_assert);
                            self.module.main_always().stmts.push(Stmt::Assert {
                                guard: enable.clone(),
                                cond: Expr::bin(BinOp::ULt, full_idx, Expr::c(*n, w_assert)),
                                message: format!("index out of bounds at {loc}"),
                            });
                        }
                    }
                    addr = Some(match addr {
                        None => idx_expr,
                        Some(prev) => {
                            Expr::add(Expr::bin(BinOp::Mul, prev, Expr::c(*n, addr_w)), idx_expr)
                        }
                    });
                }
            }
        }
        Ok((bank, addr.unwrap_or(Expr::c(0, 1))))
    }

    fn emit_mem_read(
        &mut self,
        r: MemReadOp,
        env: &mut HashMap<ValueId, CgVal>,
        times: &mut HashMap<ValueId, TimeRef>,
        gate: &Gate,
    ) -> Result<()> {
        let m = self.m;
        let t = self.timeref(r.time(m), times)?;
        let pulse = self.pulse(&t, r.offset(m));
        let enable = self.gated(pulse, gate, &t.root, t.extra + r.offset(m));
        let indices: Vec<CgVal> = r
            .indices(m)
            .iter()
            .map(|&v| self.value(v, env))
            .collect::<Result<_>>()?;
        let loc = self.loc_comment(r.id());
        let port_id = r.memref(m);
        let info = self
            .ports
            .get(&port_id)
            .ok_or_else(|| self.err("read through unmapped memref"))?
            .info
            .clone();
        let (bank, addr) = self.linearize(&info, &indices, &enable, &loc)?;
        let width = info.elem.bit_width().unwrap_or(32);
        let wire = self.read_data_wire(port_id, bank, width);
        match self.ports.get_mut(&port_id) {
            Some(port) => port.reads.push(PortAccess {
                enable,
                addr,
                wdata: None,
                bank,
                loc,
            }),
            None => return Err(self.err("read through unmapped memref")),
        }
        env.insert(r.result(m), CgVal::Wire(wire, width));
        Ok(())
    }

    /// Name of the read-data net of `port`/`bank`, declared on first use.
    fn read_data_wire(&mut self, port_id: ValueId, bank: u64, width: u32) -> String {
        let (kind, banks, mem_kind) = {
            let port = &self.ports[&port_id];
            (port.kind.clone(), port.info.num_banks(), port.info.kind)
        };
        match kind {
            PortKind::External { base } => bus(&base, bank, banks, "rd_data"),
            PortKind::Internal { alloc, port_index } => {
                let name = format!("m{}_{}_b{bank}_rdata", alloc.index(), port_index);
                if self.module.width_of(&name).is_none() {
                    match mem_kind {
                        MemKind::Reg => {
                            self.module.wire(&name, width);
                        }
                        MemKind::LutRam | MemKind::BlockRam => {
                            self.module.reg(&name, width);
                        }
                    }
                }
                name
            }
        }
    }

    fn emit_mem_write(
        &mut self,
        w: MemWriteOp,
        env: &mut HashMap<ValueId, CgVal>,
        times: &mut HashMap<ValueId, TimeRef>,
        gate: &Gate,
    ) -> Result<()> {
        let m = self.m;
        let t = self.timeref(w.time(m), times)?;
        let pulse = self.pulse(&t, w.offset(m));
        let enable = self.gated(pulse, gate, &t.root, t.extra + w.offset(m));
        let indices: Vec<CgVal> = w
            .indices(m)
            .iter()
            .map(|&v| self.value(v, env))
            .collect::<Result<_>>()?;
        let loc = self.loc_comment(w.id());
        let port_id = w.memref(m);
        let info = self
            .ports
            .get(&port_id)
            .ok_or_else(|| self.err("write through unmapped memref"))?
            .info
            .clone();
        let (bank, addr) = self.linearize(&info, &indices, &enable, &loc)?;
        let width = info.elem.bit_width().unwrap_or(32);
        let data = self.value(w.value(m), env)?;
        let data = self.to_expr(&data, width);
        match self.ports.get_mut(&port_id) {
            Some(port) => port.writes.push(PortAccess {
                enable,
                addr,
                wdata: Some(data),
                bank,
                loc,
            }),
            None => return Err(self.err("write through unmapped memref")),
        }
        Ok(())
    }

    // -------------------------------------------------------------- control

    fn emit_for(
        &mut self,
        lp: ForOp,
        env: &mut HashMap<ValueId, CgVal>,
        times: &mut HashMap<ValueId, TimeRef>,
        gate: &Gate,
    ) -> Result<()> {
        let m = self.m;
        let t = self.timeref(lp.time(m), times)?;
        let start_pulse = self.pulse(&t, lp.offset(m));
        let start_pulse = self.gated(start_pulse, gate, &t.root, t.extra + lp.offset(m));
        let start_sig = self.materialize(start_pulse);
        self.res.loops += 1;
        let iv_width = self.width_of(lp.induction_var(m));

        let lb = self.value(lp.lower_bound(m), env)?;
        let ub = self.value(lp.upper_bound(m), env)?;
        let step = self.value(lp.step(m), env)?;
        let lb = self.to_expr(&lb, iv_width);
        let ub = self.to_expr(&ub, iv_width);
        let step = self.to_expr(&step, iv_width);

        let stem = self.fresh("loop");
        let iv_reg = self.module.reg(format!("{stem}_iv"), iv_width);
        let again = self.module.wire(format!("{stem}_again"), 1);
        let cand = self.module.wire(format!("{stem}_cand"), iv_width);
        let guard = self.module.wire(format!("{stem}_guard"), 1);
        let iter = self.module.wire(format!("{stem}_iter"), 1);
        let done = self.module.wire(format!("{stem}_done"), 1);
        let iv_sig = self.module.wire(format!("{stem}_i"), iv_width);
        self.res.unit_nets.push(resources::UnitNet {
            unit: "loop".into(),
            net: iter.clone(),
            mode: resources::ActivityMode::High,
        });

        let try_ = Expr::or(Expr::r(&start_sig), Expr::r(&again));
        self.module.assign(
            &cand,
            Expr::mux(Expr::r(&start_sig), lb, Expr::add(Expr::r(&iv_reg), step)),
        );
        self.module
            .assign(&guard, Expr::bin(BinOp::SLt, Expr::r(&cand), ub));
        let c = self.loc_comment(lp.id());
        self.module.assign_with_comment(
            &iter,
            Expr::and(try_.clone(), Expr::r(&guard)),
            format!("loop iteration pulse for {c}"),
        );
        self.module
            .assign(&done, Expr::and(try_, Expr::not(Expr::r(&guard))));
        self.module.assign(
            &iv_sig,
            Expr::mux(Expr::r(&iter), Expr::r(&cand), Expr::r(&iv_reg)),
        );
        self.busy.push(Expr::r(&iter));
        self.busy.push(Expr::r(&done));
        self.module.main_always().stmts.push(Stmt::If {
            cond: Expr::r(&iter),
            then: vec![Stmt::NonBlocking {
                lhs: LValue::Net(iv_reg),
                rhs: Expr::r(&cand),
            }],
            els: vec![],
        });

        // Body: iv and %ti map to the controller's signals.
        env.insert(lp.induction_var(m), CgVal::Wire(iv_sig, iv_width));
        times.insert(
            lp.iter_time(m),
            TimeRef {
                root: iter.clone(),
                extra: 0,
            },
        );
        // The gate was consumed by the start pulse; the body runs ungated.
        self.emit_block(lp.body(m), env, times, &Gate::always())?;

        // The yield re-arms the controller.
        let y = lp.yield_op(m);
        let yt = self.timeref(y.time(m), times)?;
        let ypulse = self.pulse(&yt, y.offset(m));
        self.module.assign(&again, ypulse);

        // %tf root.
        times.insert(
            lp.result_time(m),
            TimeRef {
                root: done,
                extra: 0,
            },
        );
        Ok(())
    }

    fn emit_unroll(
        &mut self,
        lp: UnrollForOp,
        env: &mut HashMap<ValueId, CgVal>,
        times: &mut HashMap<ValueId, TimeRef>,
        gate: &Gate,
    ) -> Result<()> {
        let m = self.m;
        let t = self.timeref(lp.time(m), times)?;
        let base = lp.offset(m);
        let y = lp.yield_op(m);
        if y.time(m) != lp.iter_time(m) {
            return Err(
                self.err("hir.unroll_for requires a static yield (on the iteration time variable)")
            );
        }
        let d = y.offset(m);
        let iters = lp.iterations(m);
        for (k, iv) in iters.iter().enumerate() {
            // Each replica: fresh value bindings for body-defined values.
            let mut body_env = env.clone();
            let mut body_times = times.clone();
            body_env.insert(lp.induction_var(m), CgVal::Const(*iv as i128));
            body_times.insert(
                lp.iter_time(m),
                TimeRef {
                    root: t.root.clone(),
                    extra: t.extra + base + k as i64 * d,
                },
            );
            self.emit_block(lp.body(m), &mut body_env, &mut body_times, gate)?;
        }
        // Completion time: after the last iteration starts.
        times.insert(
            lp.result_time(m),
            TimeRef {
                root: t.root.clone(),
                extra: t.extra + base + iters.len() as i64 * d,
            },
        );
        Ok(())
    }

    fn emit_call(
        &mut self,
        call: CallOp,
        env: &mut HashMap<ValueId, CgVal>,
        times: &mut HashMap<ValueId, TimeRef>,
        gate: &Gate,
    ) -> Result<()> {
        let m = self.m;
        let callee_op = self
            .symbols
            .lookup(&call.callee(m))
            .ok_or_else(|| self.err(format!("call to unknown function @{}", call.callee(m))))?;
        let callee = FuncOp::wrap(m, callee_op).ok_or_else(|| self.err("callee is not a func"))?;
        let t = self.timeref(call.time(m), times)?;
        let pulse = self.pulse(&t, call.offset(m));
        let pulse = self.gated(pulse, gate, &t.root, t.extra + call.offset(m));

        let inst_name = format!("u{}_{}", self.instance_count, sanitize(&call.callee(m)));
        self.instance_count += 1;
        let mut connections: Vec<(String, Expr)> =
            vec![("clk".into(), Expr::r("clk")), ("start".into(), pulse)];

        let callee_args = callee.arg_types(m);
        let mut callee_arg_names: Vec<String> = callee
            .arg_names(m)
            .unwrap_or_default()
            .iter()
            .map(|n| sanitize(n))
            .collect();
        // An arg_names attribute may be shorter than the signature; pad with
        // positional names rather than indexing past it.
        while callee_arg_names.len() < callee_args.len() {
            callee_arg_names.push(format!("arg{}", callee_arg_names.len()));
        }
        if call.args(m).len() != callee_args.len() {
            return Err(self.err(format!(
                "call to @{} passes {} argument(s) but the callee declares {}",
                call.callee(m),
                call.args(m).len(),
                callee_args.len()
            )));
        }
        for (i, actual) in call.args(m).iter().enumerate() {
            let formal_ty = &callee_args[i];
            let pname = &callee_arg_names[i];
            if let Some(info) = MemrefInfo::from_type(formal_ty) {
                self.connect_callee_memref(&inst_name, pname, &info, *actual, &mut connections)?;
            } else {
                let w = formal_ty.bit_width().unwrap_or(32);
                let v = self.value(*actual, env)?;
                let e = self.to_expr(&v, w);
                connections.push((pname.clone(), e));
            }
        }
        // Results.
        let mut first_result = None;
        for (i, &res) in m.op(call.id()).results().iter().enumerate() {
            let w = self.width_of(res);
            let wire = self.module.wire(format!("{inst_name}_r{i}"), w);
            connections.push((format!("result{i}"), Expr::r(&wire)));
            if i == 0 {
                first_result = Some(wire.clone());
            }
            env.insert(res, CgVal::Wire(wire, w));
        }
        if !callee.is_external(m) {
            let b = self.module.wire(format!("{inst_name}_busy"), 1);
            connections.push(("busy".into(), Expr::r(&b)));
            self.res.unit_nets.push(resources::UnitNet {
                unit: "instance".into(),
                net: b.clone(),
                mode: resources::ActivityMode::High,
            });
            self.busy.push(Expr::r(&b));
        } else if let Some(r0) = first_result {
            // External IP exposes no busy signal: its first result wire
            // stands in (toggle-counted).
            self.res.unit_nets.push(resources::UnitNet {
                unit: "instance".into(),
                net: r0,
                mode: resources::ActivityMode::Toggle,
            });
        }
        let target_module = if callee.is_external(m) {
            sanitize(&call.callee(m))
        } else {
            module_name(&call.callee(m))
        };
        self.module.instances.push(Instance {
            module: target_module,
            name: inst_name,
            connections,
        });
        Ok(())
    }

    /// Connect a callee's memref argument buses to a caller-side port.
    fn connect_callee_memref(
        &mut self,
        inst: &str,
        pname: &str,
        info: &MemrefInfo,
        actual: ValueId,
        connections: &mut Vec<(String, Expr)>,
    ) -> Result<()> {
        let banks = info.num_banks();
        let width = info.elem.bit_width().unwrap_or(32);
        let addr_w = info.addr_bits().max(1);
        for b in 0..banks {
            let mk = |sig: &str| bus(pname, b, banks, sig);
            if info.port.can_read() {
                let en = self.module.wire(format!("{inst}_{}", mk("rd_en")), 1);
                let addr = self.module.wire(format!("{inst}_{}", mk("addr")), addr_w);
                connections.push((mk("rd_en"), Expr::r(&en)));
                connections.push((mk("addr"), Expr::r(&addr)));
                let rdata = self.read_data_wire(actual, b, width);
                connections.push((mk("rd_data"), Expr::r(&rdata)));
                let port = self.ports.get_mut(&actual).ok_or_else(|| {
                    CodegenError("memref passed to call is not a known port".into())
                })?;
                port.reads.push(PortAccess {
                    enable: Expr::r(&en),
                    addr: Expr::r(&addr),
                    wdata: None,
                    bank: b,
                    loc: format!("call via {inst}"),
                });
            }
            if info.port.can_write() {
                let en = self.module.wire(format!("{inst}_{}", mk("wr_en")), 1);
                let addr = self.module.wire(format!("{inst}_{}", mk("waddr")), addr_w);
                let data = self.module.wire(format!("{inst}_{}", mk("wr_data")), width);
                connections.push((mk("wr_en"), Expr::r(&en)));
                connections.push((mk("waddr"), Expr::r(&addr)));
                connections.push((mk("wr_data"), Expr::r(&data)));
                let port = self.ports.get_mut(&actual).ok_or_else(|| {
                    CodegenError("memref passed to call is not a known port".into())
                })?;
                port.writes.push(PortAccess {
                    enable: Expr::r(&en),
                    addr: Expr::r(&addr),
                    wdata: Some(Expr::r(&data)),
                    bank: b,
                    loc: format!("call via {inst}"),
                });
            }
        }
        Ok(())
    }

    fn emit_if(
        &mut self,
        i: IfOp,
        env: &mut HashMap<ValueId, CgVal>,
        times: &mut HashMap<ValueId, TimeRef>,
        gate: &Gate,
    ) -> Result<()> {
        let m = self.m;
        let t = self.timeref(i.time(m), times)?;
        let at = t.extra + i.offset(m);
        let cond = self.value(i.condition(m), env)?;
        let cond = self.to_expr(&cond, 1);
        // Capture the live condition on a wire; gated ops at later offsets
        // receive it through a shift register built on demand (so pipelined
        // activations each see their own condition).
        let cond_sig = self.materialize(cond);
        let ncond_sig = {
            let w = self.fresh("ifn");
            self.module.wire(&w, 1);
            self.module.assign(&w, Expr::not(Expr::r(&cond_sig)));
            w
        };
        self.condition_roots.insert(cond_sig.clone());
        self.condition_roots.insert(ncond_sig.clone());
        let then_gate = gate.with(CondRef {
            signal: cond_sig,
            root: t.root.clone(),
            at,
        });
        self.emit_block(i.then_block(m), env, times, &then_gate)?;
        if let Some(e) = i.else_block(m) {
            let else_gate = gate.with(CondRef {
                signal: ncond_sig,
                root: t.root.clone(),
                at,
            });
            self.emit_block(e, env, times, &else_gate)?;
        }
        Ok(())
    }

    /// Ensure a pulse expression has a net name (materializing if compound).
    fn materialize(&mut self, e: Expr) -> String {
        match e {
            Expr::Ref(n) => n,
            other => {
                let w = self.fresh("pulse");
                self.module.wire(&w, 1);
                self.module.assign(&w, other);
                w
            }
        }
    }

    // ----------------------------------------------------- ports & memories

    fn declare_external_port(&mut self, base: &str, info: &MemrefInfo) {
        let banks = info.num_banks();
        let width = info.elem.bit_width().unwrap_or(32);
        let addr_w = info.addr_bits().max(1);
        for b in 0..banks {
            let mk = |sig: &str| bus(base, b, banks, sig);
            if info.port.can_read() {
                self.module.port(mk("addr"), Dir::Output, addr_w);
                self.module.port(mk("rd_en"), Dir::Output, 1);
                self.module.port(mk("rd_data"), Dir::Input, width);
            }
            if info.port.can_write() {
                self.module.port(mk("waddr"), Dir::Output, addr_w);
                self.module.port(mk("wr_en"), Dir::Output, 1);
                self.module.port(mk("wr_data"), Dir::Output, width);
            }
        }
    }

    /// Emit the address/enable muxes, conflict assertions, and (for internal
    /// allocs) the memory itself for one memref port.
    fn emit_port(&mut self, port_id: ValueId) -> Result<()> {
        let port = self.ports[&port_id].clone();
        let banks = port.info.num_banks();
        let dir = match port.info.port {
            hir::types::Port::Read => "read",
            hir::types::Port::Write => "write",
            hir::types::Port::ReadWrite => "rw",
        };
        *self
            .res
            .mem_ports
            .entry(format!("{}.{dir}", port.info.kind.mnemonic()))
            .or_insert(0) += banks;
        let width = port.info.elem.bit_width().unwrap_or(32);
        let addr_w = port.info.addr_bits().max(1);
        let depth = port.info.bank_size();

        for b in 0..banks {
            let reads: Vec<&PortAccess> = port.reads.iter().filter(|a| a.bank == b).collect();
            let writes: Vec<&PortAccess> = port.writes.iter().filter(|a| a.bank == b).collect();
            if self.options.assertions {
                self.conflict_asserts(&reads);
                self.conflict_asserts(&writes);
            }
            let rd_en = or_all(reads.iter().map(|a| a.enable.clone()));
            let rd_addr = mux_chain(
                reads.iter().map(|a| (a.enable.clone(), a.addr.clone())),
                addr_w,
            );
            let wr_en = or_all(writes.iter().map(|a| a.enable.clone()));
            let wr_addr = mux_chain(
                writes.iter().map(|a| (a.enable.clone(), a.addr.clone())),
                addr_w,
            );
            // Every write access carries data by construction; fall back to
            // zero rather than panic if that invariant ever breaks.
            let wr_data = mux_chain(
                writes.iter().map(|a| {
                    let data = a.wdata.clone().unwrap_or_else(|| Expr::c(0, width));
                    (a.enable.clone(), data)
                }),
                width,
            );

            match &port.kind {
                PortKind::External { base } => {
                    let mk = |sig: &str| bus(base, b, banks, sig);
                    let unit = format!("port.{}.{dir}", port.info.kind.mnemonic());
                    if port.info.port.can_read() {
                        self.module.assign(mk("addr"), rd_addr);
                        self.module.assign(mk("rd_en"), rd_en);
                        self.res.unit_nets.push(resources::UnitNet {
                            unit: unit.clone(),
                            net: mk("rd_en"),
                            mode: resources::ActivityMode::High,
                        });
                    }
                    if port.info.port.can_write() {
                        self.module.assign(mk("waddr"), wr_addr);
                        self.module.assign(mk("wr_en"), wr_en.clone());
                        self.module.assign(mk("wr_data"), wr_data);
                        self.res.unit_nets.push(resources::UnitNet {
                            unit: unit.clone(),
                            net: mk("wr_en"),
                            mode: resources::ActivityMode::High,
                        });
                    }
                }
                PortKind::Internal { alloc, port_index } => {
                    let mem = self.internal_memory(*alloc, b, width, depth, port.info.kind);
                    if port.info.port.can_read() && !reads.is_empty() {
                        let rdata = format!("m{}_{}_b{b}_rdata", alloc.index(), port_index);
                        self.res.unit_nets.push(resources::UnitNet {
                            unit: format!("port.{}.{dir}", port.info.kind.mnemonic()),
                            net: rdata.clone(),
                            mode: resources::ActivityMode::Toggle,
                        });
                        match port.info.kind {
                            MemKind::Reg => {
                                // Asynchronous (zero-latency) read.
                                self.module.assign(
                                    &rdata,
                                    Expr::MemRead {
                                        mem: mem.clone(),
                                        addr: Box::new(rd_addr),
                                    },
                                );
                            }
                            MemKind::LutRam | MemKind::BlockRam => {
                                // Synchronous read register.
                                self.module.main_always().stmts.push(Stmt::If {
                                    cond: rd_en,
                                    then: vec![Stmt::NonBlocking {
                                        lhs: LValue::Net(rdata.clone()),
                                        rhs: Expr::MemRead {
                                            mem: mem.clone(),
                                            addr: Box::new(rd_addr),
                                        },
                                    }],
                                    els: vec![],
                                });
                            }
                        }
                    }
                    if port.info.port.can_write() && !writes.is_empty() {
                        self.module.main_always().stmts.push(Stmt::If {
                            cond: wr_en,
                            then: vec![Stmt::NonBlocking {
                                lhs: LValue::MemElem { mem, addr: wr_addr },
                                rhs: wr_data,
                            }],
                            els: vec![],
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The (bank's) memory array of an internal alloc, shared across ports.
    fn internal_memory(
        &mut self,
        alloc: OpId,
        bank: u64,
        width: u32,
        depth: u64,
        kind: MemKind,
    ) -> String {
        let name = format!("m{}_b{bank}", alloc.index());
        if !self.module.memories.iter().any(|m| m.name == name) {
            self.module
                .memory(&name, width, depth.max(1), Some(kind.mnemonic()));
        }
        name
    }

    fn conflict_asserts(&mut self, accesses: &[&PortAccess]) {
        for i in 0..accesses.len() {
            for j in (i + 1)..accesses.len() {
                let (a, b) = (accesses[i], accesses[j]);
                self.module.main_always().stmts.push(Stmt::Assert {
                    guard: Expr::and(a.enable.clone(), b.enable.clone()),
                    cond: Expr::eq(a.addr.clone(), b.addr.clone()),
                    message: format!("memory port conflict between {} and {}", a.loc, b.loc),
                });
            }
        }
    }
}

// ------------------------------------------------------------------ helpers

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Name of one signal of a memref argument bus as emitted by codegen
/// (`{base}_{sig}` for single-bank, `{base}_b{bank}_{sig}` for multi-bank).
/// Public so formal backends can locate the bus nets of a generated module.
pub fn bus(base: &str, bank: u64, banks: u64, sig: &str) -> String {
    if banks <= 1 {
        format!("{base}_{sig}")
    } else {
        format!("{base}_b{bank}_{sig}")
    }
}

fn mask64(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn or_all(exprs: impl Iterator<Item = Expr>) -> Expr {
    let mut acc: Option<Expr> = None;
    for e in exprs {
        acc = Some(match acc {
            None => e,
            Some(prev) => Expr::or(prev, e),
        });
    }
    acc.unwrap_or(Expr::c(0, 1))
}

fn mux_chain(items: impl Iterator<Item = (Expr, Expr)>, width: u32) -> Expr {
    let items: Vec<(Expr, Expr)> = items.collect();
    let mut acc = Expr::c(0, width);
    for (en, val) in items.into_iter().rev() {
        acc = Expr::mux(en, val, acc);
    }
    acc
}

fn fold_compute(kind: hir::ops::ComputeKind, ints: &[i128], m: &Module, op: OpId) -> Result<i128> {
    use hir::ops::ComputeKind as K;
    Ok(match kind {
        K::Add => ints[0] + ints[1],
        K::Sub => ints[0] - ints[1],
        K::Mult => ints[0] * ints[1],
        K::And => ints[0] & ints[1],
        K::Or => ints[0] | ints[1],
        K::Xor => ints[0] ^ ints[1],
        K::Not => !ints[0],
        K::Shl => ints[0] << ints[1].clamp(0, 127),
        K::Shr => ints[0] >> ints[1].clamp(0, 127),
        K::Cmp(p) => i128::from(p.eval(ints[0], ints[1])),
        K::Select => {
            if ints[0] != 0 {
                ints[1]
            } else {
                ints[2]
            }
        }
        K::Trunc | K::Sext | K::Zext => ints[0],
        K::Slice => {
            let hi = m
                .op(op)
                .attr(hir::attrkey::HI)
                .and_then(|a| a.as_int())
                .unwrap_or(0);
            let lo = m
                .op(op)
                .attr(hir::attrkey::LO)
                .and_then(|a| a.as_int())
                .unwrap_or(0);
            (ints[0] >> lo) & ((1i128 << (hi - lo + 1)) - 1)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::types::{MemrefInfo, Port as MPort};
    use hir::HirBuilder;

    #[test]
    fn helper_functions() {
        assert_eq!(module_name("foo"), "hir_foo");
        assert_eq!(sanitize("a-b.c"), "a_b_c");
        assert_eq!(bus("A", 0, 1, "rd_en"), "A_rd_en");
        assert_eq!(bus("A", 2, 4, "rd_en"), "A_b2_rd_en");
        assert_eq!(mask64(8), 0xFF);
        assert_eq!(mask64(64), u64::MAX);
    }

    #[test]
    fn or_all_and_mux_chain() {
        assert_eq!(or_all(std::iter::empty()), Expr::c(0, 1));
        let one = or_all([Expr::r("a")].into_iter());
        assert_eq!(one, Expr::r("a"));
        let chain = mux_chain([(Expr::r("e1"), Expr::r("v1"))].into_iter(), 8);
        assert_eq!(
            chain,
            Expr::mux(Expr::r("e1"), Expr::r("v1"), Expr::c(0, 8))
        );
    }

    /// Shared pulse chains: two ops at the same (root, offset) reuse one
    /// shift register tap; a later offset only extends the chain.
    #[test]
    fn pulse_chains_are_shared_and_extended() {
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(
            &[8],
            ir::Type::int(32),
            MPort::Write,
            hir::MemKind::BlockRam,
        );
        let f = hb.func("p", &[("C", a.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let c0 = hb.const_val(0);
        let c1 = hb.const_val(1);
        let v = hb.typed_const(9, ir::Type::int(32));
        // Three ops at t+3, t+3 and t+5: the chain should have 5 regs, not 11.
        hb.mem_write(v, args[0], &[c0], t, 3);
        hb.mem_write(v, args[0], &[c1], t, 3);
        let c2 = hb.const_val(2);
        hb.mem_write(v, args[0], &[c2], t, 5);
        hb.return_(&[]);
        let m = hb.finish();
        let func = hir::ops::FuncOp::wrap(&m, m.top_ops()[0]).unwrap();
        let module = generate_func(&m, func, &CodegenOptions::default()).unwrap();
        let chain_regs = module
            .nets
            .iter()
            .filter(|n| n.name.starts_with("start_p"))
            .count();
        assert_eq!(chain_regs, 5, "one shared chain of depth 5");
    }

    #[test]
    fn generated_module_has_busy_and_location_comments() {
        let mut hb = HirBuilder::new();
        hb.set_loc(ir::Location::file_line_col("demo.mlir", 9, 1));
        let f = hb.func("g", &[("x", ir::Type::int(8))], &[0]);
        let x = f.args(hb.module())[0];
        let y = hb.add(x, x);
        hb.return_(&[y]);
        let m = hb.finish();
        let func = hir::ops::FuncOp::wrap(&m, m.top_ops()[0]).unwrap();
        let module = generate_func(&m, func, &CodegenOptions::default()).unwrap();
        assert!(module.find_port("busy").is_some());
        assert!(module.find_port("result0").is_some());
        assert!(module.find_port("result0_valid").is_some());
        let text = verilog::print_module(&module);
        assert!(
            text.contains("demo.mlir:9:1"),
            "location comments (§5.5): {text}"
        );
    }

    /// The resource report's semantic tallies line up with the hardware the
    /// generator actually emitted.
    #[test]
    fn resource_report_counts_emitted_hardware() {
        let mut hb = HirBuilder::new();
        let f = hb.func("r", &[("x", ir::Type::int(16))], &[2]);
        let t = f.time_var(hb.module());
        let x = f.args(hb.module())[0];
        let y = hb.add(x, x);
        let d = hb.delay(y, 2, t, 0);
        hb.return_(&[d]);
        let m = hb.finish();
        let func = hir::ops::FuncOp::wrap(&m, m.top_ops()[0]).unwrap();
        let (vm, res) = generate_func_with_resources(&m, func, &CodegenOptions::default()).unwrap();
        assert_eq!(res.function, "r");
        assert_eq!(res.module, "hir_r");
        assert_eq!(res.arith.get("add"), Some(&1));
        assert_eq!(res.delay_lines, 1);
        assert_eq!(res.delay_line_bits, 32, "2 stages x 16 bits");
        assert_eq!(
            res.pulse_regs, 2,
            "result_valid pulses 2 cycles after start"
        );
        let regs = vm
            .nets
            .iter()
            .filter(|n| n.kind == verilog::NetKind::Reg)
            .count() as u64;
        assert_eq!(res.registers, regs);
    }

    /// Extern stubs carry the instantiated name and the declared latency, so
    /// designs with blackbox calls elaborate and simulate.
    #[test]
    fn extern_stubs_make_blackbox_designs_simulable() {
        let mut hb = HirBuilder::new();
        hb.extern_func(
            "mult",
            &[ir::Type::int(32), ir::Type::int(32)],
            &[ir::Type::int(32)],
            &[2],
        );
        let f = hb.func("use_mult", &[("a", ir::Type::int(32))], &[2]);
        let t = f.time_var(hb.module());
        let a = f.args(hb.module())[0];
        let r = hb.call("mult", &[a, a], t, 0);
        hb.return_(&[r[0]]);
        let m = hb.finish();
        let mut design = generate_design(&m, &CodegenOptions::default()).unwrap();
        for stub in extern_stubs(&m).unwrap() {
            design.add(stub);
        }
        if let Err(e) = verilog::Simulator::new(&design, "hir_use_mult") {
            panic!("stubbed design must elaborate: {e}");
        }
    }

    #[test]
    fn assertions_can_be_disabled() {
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[8], ir::Type::int(32), MPort::Read, hir::MemKind::BlockRam);
        let f = hb.func("na", &[("A", a.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c8, c1) = (hb.const_val(0), hb.const_val(8), hb.const_val(1));
        let lp = hb.for_loop(c0, c8, c1, t, 1, ir::Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            hb.mem_read(args[0], &[i], ti, 0);
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let m = hb.finish();
        let func = hir::ops::FuncOp::wrap(&m, m.top_ops()[0]).unwrap();

        let with = generate_func(&m, func, &CodegenOptions::default()).unwrap();
        let without = generate_func(
            &m,
            func,
            &CodegenOptions {
                assertions: false,
                location_comments: false,
            },
        )
        .unwrap();
        let has_assert = |md: &VModule| {
            md.always
                .iter()
                .flat_map(|b| &b.stmts)
                .any(|s| matches!(s, Stmt::Assert { .. }))
        };
        assert!(has_assert(&with));
        assert!(!has_assert(&without));
    }
}
