//! Simulation harness for generated designs.
//!
//! Drives a generated function module in the [`verilog::Simulator`]: pulses
//! `start`, applies scalar arguments, and models the memories behind the
//! module's memref argument buses (the role the testbench RAMs played in the
//! paper's evaluation flow). Functional results are compared elsewhere
//! against the HIR interpreter and software references.

use crate::resources::{ActivityMode, FuncResources};
use crate::{bus, module_name, CodegenError};
use hir::ops::FuncOp;
use hir::types::MemrefInfo;
use ir::Module;
use std::collections::HashMap;
use verilog::{Design, Simulator};

/// Default cycle bound for harness runs and for `hirc`'s `--sim-max-cycles`
/// flag: generous enough for every design in `examples/`, small enough that a
/// hung controller fails in well under a second of wall time.
pub const DEFAULT_SIM_MAX_CYCLES: u64 = 100_000;

/// An argument supplied to [`Harness::run`].
#[derive(Clone, Debug)]
pub enum HarnessArg {
    /// Scalar value driven on the argument port.
    Int(i128),
    /// Backing data for a memref argument (length = number of elements).
    Mem(Vec<i128>),
    /// Another port onto the tensor of a previous argument.
    SharedWith(usize),
}

impl HarnessArg {
    /// Convenience constructor from plain data.
    pub fn mem_from(data: &[i128]) -> Self {
        HarnessArg::Mem(data.to_vec())
    }

    /// A zero-initialized memory of the given size.
    pub fn zero_mem(len: usize) -> Self {
        HarnessArg::Mem(vec![0; len])
    }
}

/// Results of a harness run.
#[derive(Clone, Debug)]
pub struct HarnessReport {
    /// Cycle index of the last observed activity (≈ design latency).
    pub cycles: u64,
    /// Captured scalar results (at their `result{i}_valid` pulses).
    pub results: Vec<i128>,
    /// Final contents of each memref argument's backing memory.
    pub mems: HashMap<usize, Vec<i128>>,
}

/// Pre-resolved simulator net ids for one bank of a memref bus. `None`
/// where the bus direction does not exist.
#[derive(Clone, Copy, Default)]
struct BankNets {
    addr: Option<usize>,
    rd_en: Option<usize>,
    rd_data: Option<usize>,
    waddr: Option<usize>,
    wr_en: Option<usize>,
    wr_data: Option<usize>,
}

struct MemModel {
    arg_index: usize,
    /// Flat storage, one buffer per stimulus lane (a single entry for
    /// scalar harnesses): bank-major (`bank * bank_size + addr`).
    data: Vec<Vec<i128>>,
    shared_with: Option<usize>,
    /// Cached memref geometry so the per-cycle loops touch no `MemrefInfo`.
    bank_size: u64,
    elem_width: u32,
    read_latency: u32,
    can_read: bool,
    can_write: bool,
    /// One entry per bank, nets resolved to simulator ids at build time.
    bank_nets: Vec<BankNets>,
}

/// Runs a generated HIR function module under RTL simulation.
pub struct Harness {
    sim: Simulator,
    mems: Vec<MemModel>,
    /// (net id, per-lane values, width) per scalar argument port.
    scalar_ports: Vec<(usize, Vec<i128>, u32)>,
    /// (result net id, valid net id, width) per function result.
    result_ports: Vec<(usize, usize, u32)>,
    /// Pre-resolved activity-indicator net ids (no per-cycle name lookups).
    activity_ids: Vec<usize>,
    /// Number of batched stimulus lanes (1 for a scalar harness).
    lanes: usize,
}

impl Harness {
    /// Build a harness for function `func` of the HIR module `m`, simulating
    /// `design` (which must contain the generated module plus any external
    /// blackbox implementations).
    ///
    /// # Errors
    /// Fails when the design does not elaborate or arguments mismatch.
    pub fn new(
        design: &Design,
        m: &Module,
        func: FuncOp,
        args: &[HarnessArg],
    ) -> Result<Self, CodegenError> {
        Self::build(design, m, func, std::slice::from_ref(&args))
    }

    /// Build a harness that simulates one stimulus set *per lane* in a single
    /// batched pass (`verilog::Engine::Batched`). Every lane must supply the
    /// same argument shapes (scalar vs memory, memory sizes, sharing); only
    /// the values differ. Lane 0's run is bit-identical to a scalar
    /// [`Harness::new`] run with the same arguments.
    ///
    /// # Errors
    /// Fails on elaboration errors, shape mismatches between lanes, or a
    /// lane count outside `1..=64`.
    pub fn new_batched(
        design: &Design,
        m: &Module,
        func: FuncOp,
        lane_args: &[Vec<HarnessArg>],
    ) -> Result<Self, CodegenError> {
        if lane_args.is_empty() || lane_args.len() > 64 {
            return Err(CodegenError(format!(
                "batched harness needs 1..=64 lanes, got {}",
                lane_args.len()
            )));
        }
        let views: Vec<&[HarnessArg]> = lane_args.iter().map(Vec::as_slice).collect();
        Self::build(design, m, func, &views)
    }

    fn build(
        design: &Design,
        m: &Module,
        func: FuncOp,
        lane_args: &[&[HarnessArg]],
    ) -> Result<Self, CodegenError> {
        let lanes = lane_args.len();
        let args = lane_args[0];
        let top = module_name(&func.name(m));
        let mut sim = Simulator::new(design, &top)
            .map_err(|e| CodegenError(format!("failed to build simulator: {e}")))?;
        let formal = func.args(m);
        if formal.len() != args.len() {
            return Err(CodegenError(format!(
                "function takes {} arguments, harness got {}",
                formal.len(),
                args.len()
            )));
        }
        let arg_names = func
            .arg_names(m)
            .unwrap_or_else(|| (0..formal.len()).map(|i| format!("arg{i}")).collect());

        // All net names are resolved to simulator ids here, once; the
        // per-cycle loops in `run` never format a name or clone a string.
        let nid = |name: &str| -> Result<usize, CodegenError> {
            sim.net_id(name)
                .ok_or_else(|| CodegenError(format!("net '{name}' not found in module {top}")))
        };

        let mut mems: Vec<MemModel> = Vec::new();
        let mut scalar_ports: Vec<(usize, Vec<i128>, u32)> = Vec::new();
        let mut scalar_arg_idx: Vec<usize> = Vec::new();
        let mut mem_index_by_arg: HashMap<usize, usize> = HashMap::new();
        for (i, (formal_v, actual)) in formal.iter().zip(args).enumerate() {
            let ty = m.value_type(*formal_v);
            let base: String = arg_names[i]
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            // Empty (no data, unshared) model with the geometry cached and
            // every bus net resolved; the match arms below fill in storage.
            let build = |info: &MemrefInfo| -> Result<MemModel, CodegenError> {
                let banks = info.num_banks();
                let mut bank_nets = Vec::with_capacity(banks as usize);
                for b in 0..banks {
                    let mut bn = BankNets::default();
                    if info.port.can_read() {
                        bn.addr = Some(nid(&bus(&base, b, banks, "addr"))?);
                        bn.rd_en = Some(nid(&bus(&base, b, banks, "rd_en"))?);
                        bn.rd_data = Some(nid(&bus(&base, b, banks, "rd_data"))?);
                    }
                    if info.port.can_write() {
                        bn.waddr = Some(nid(&bus(&base, b, banks, "waddr"))?);
                        bn.wr_en = Some(nid(&bus(&base, b, banks, "wr_en"))?);
                        bn.wr_data = Some(nid(&bus(&base, b, banks, "wr_data"))?);
                    }
                    bank_nets.push(bn);
                }
                Ok(MemModel {
                    arg_index: i,
                    data: Vec::new(),
                    shared_with: None,
                    bank_size: info.bank_size(),
                    elem_width: info.elem.bit_width().unwrap_or(32),
                    read_latency: info.kind.read_latency(),
                    can_read: info.port.can_read(),
                    can_write: info.port.can_write(),
                    bank_nets,
                })
            };
            match (MemrefInfo::from_type(&ty), actual) {
                (Some(info), HarnessArg::Mem(data)) => {
                    if data.len() as u64 != info.num_elements() {
                        return Err(CodegenError(format!(
                            "argument {i}: memory has {} words, memref needs {}",
                            data.len(),
                            info.num_elements()
                        )));
                    }
                    let mut mm = build(&info)?;
                    mm.data = vec![data.clone()];
                    mem_index_by_arg.insert(i, mems.len());
                    mems.push(mm);
                }
                (Some(info), HarnessArg::SharedWith(j)) => {
                    let &target = mem_index_by_arg
                        .get(j)
                        .ok_or_else(|| CodegenError(format!("SharedWith({j}) is not a memory")))?;
                    let mut mm = build(&info)?;
                    mm.shared_with = Some(target);
                    mems.push(mm);
                }
                (None, HarnessArg::Int(v)) => {
                    let width = ty.bit_width().unwrap_or(32);
                    scalar_ports.push((nid(&base)?, vec![*v], width));
                    scalar_arg_idx.push(i);
                }
                _ => {
                    return Err(CodegenError(format!(
                        "argument {i}: kind mismatch between {ty} and {actual:?}"
                    )))
                }
            }
        }

        // Fold lanes 1.. into the lane-major storage, checking that every
        // lane drives the same argument shapes as lane 0.
        for (lane, &largs) in lane_args.iter().enumerate().skip(1) {
            if largs.len() != args.len() {
                return Err(CodegenError(format!(
                    "lane {lane} has {} arguments, lane 0 has {}",
                    largs.len(),
                    args.len()
                )));
            }
            for (i, (a0, al)) in args.iter().zip(largs).enumerate() {
                match (a0, al) {
                    (HarnessArg::Mem(d0), HarnessArg::Mem(dl)) => {
                        if dl.len() != d0.len() {
                            return Err(CodegenError(format!(
                                "lane {lane} argument {i}: memory has {} words, lane 0 has {}",
                                dl.len(),
                                d0.len()
                            )));
                        }
                        mems[mem_index_by_arg[&i]].data.push(dl.clone());
                    }
                    (HarnessArg::SharedWith(j0), HarnessArg::SharedWith(jl)) if j0 == jl => {}
                    (HarnessArg::Int(_), HarnessArg::Int(vl)) => {
                        let slot = scalar_arg_idx.iter().position(|&k| k == i).unwrap();
                        scalar_ports[slot].1.push(*vl);
                    }
                    _ => {
                        return Err(CodegenError(format!(
                            "lane {lane} argument {i}: kind differs from lane 0"
                        )))
                    }
                }
            }
        }
        let mut result_ports = Vec::new();
        for (i, rty) in func.result_types(m).iter().enumerate() {
            result_ports.push((
                nid(&format!("result{i}"))?,
                nid(&format!("result{i}_valid"))?,
                rty.bit_width().unwrap_or(32),
            ));
        }

        // Activity: every memref bus enable in either direction.
        let mut activity_ids = Vec::new();
        for mm in &mems {
            for bn in &mm.bank_nets {
                if let Some(id) = bn.rd_en {
                    activity_ids.push(id);
                }
                if let Some(id) = bn.wr_en {
                    activity_ids.push(id);
                }
            }
        }
        for &(_, valid, _) in &result_ports {
            activity_ids.push(valid);
        }
        // The design's own busy indicator covers internal-only phases.
        activity_ids.push(nid("busy")?);

        if lanes > 1 {
            sim.set_batch_lanes(lanes);
            sim.set_engine(verilog::Engine::Batched);
        }

        Ok(Harness {
            sim,
            mems,
            scalar_ports,
            result_ports,
            activity_ids,
            lanes,
        })
    }

    /// Number of batched stimulus lanes (1 for a scalar harness).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Select the simulator execution engine (bytecode by default; the
    /// tree-walk oracle is used for differential testing).
    pub fn set_engine(&mut self, engine: verilog::Engine) {
        self.sim.set_engine(engine);
    }

    /// Borrow the underlying simulator (engine selection, tape statistics).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutably borrow the underlying simulator (manual stepping, pokes).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// Dump a VCD waveform of the whole run to `path`.
    ///
    /// # Errors
    /// Fails if the file cannot be created.
    pub fn dump_vcd(&mut self, path: &std::path::Path) -> Result<(), CodegenError> {
        let file = std::fs::File::create(path)
            .map_err(|e| CodegenError(format!("{}: {e}", path.display())))?;
        self.sim
            .start_vcd(Box::new(std::io::BufWriter::new(file)))
            .map_err(|e| CodegenError(format!("vcd: {e}")))
    }

    /// Run the design: one `start` pulse at cycle 0, then clock until the
    /// design is quiescent (no activity for a grace period) or `max_cycles`.
    /// On a batched harness this runs every lane and reports lane 0.
    ///
    /// # Errors
    /// Propagates RTL assertion failures; times out after `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<HarnessReport, CodegenError> {
        Ok(self.run_lanes(max_cycles)?.swap_remove(0))
    }

    /// Run every stimulus lane of a batched harness (see
    /// [`Harness::new_batched`]) in one bit-parallel pass and return one
    /// report per lane. All lanes share the clock; the run ends when *every*
    /// lane has been quiescent for the grace period. On a scalar harness
    /// this returns a single report, identical to [`Harness::run`].
    ///
    /// # Errors
    /// Same failure modes as [`Harness::run`]; an assertion failure in any
    /// lane aborts the whole batch.
    pub fn run_batched(&mut self, max_cycles: u64) -> Result<Vec<HarnessReport>, CodegenError> {
        self.run_lanes(max_cycles)
    }

    fn run_lanes(&mut self, max_cycles: u64) -> Result<Vec<HarnessReport>, CodegenError> {
        const QUIESCENT_GRACE: u64 = 8;
        let lanes = self.lanes;
        let batched = lanes > 1;
        // Belt and braces: arm the simulator's own watchdog too, so even a
        // future loop in this harness cannot spin past the caller's bound.
        self.sim.set_cycle_budget(Some(
            self.sim
                .cycle()
                .saturating_add(max_cycles)
                .saturating_add(1),
        ));
        for &(id, ref vs, w) in &self.scalar_ports {
            if batched {
                for (lane, &v) in vs.iter().enumerate() {
                    self.sim.set_lane_id(id, lane, (v as u64) & mask(w));
                }
            } else {
                self.sim.set_id(id, (vs[0] as u64) & mask(w));
            }
        }
        self.sim.set("start", 1);

        let mut results: Vec<Vec<Option<i128>>> = vec![vec![None; self.result_ports.len()]; lanes];
        let mut last_activity: Vec<u64> = vec![0; lanes];
        let mut last_any: u64 = 0;
        let mut cycle: u64 = 0;
        loop {
            // Serve memories combinationally-visible state for this cycle.
            self.serve_reads_pre();
            // Observe activity + capture results before the edge.
            for lane in 0..lanes {
                let mut active = false;
                for &id in &self.activity_ids {
                    let v = if batched {
                        self.sim.get_lane_id(id, lane)
                    } else {
                        self.sim.get_id(id)
                    };
                    if v != 0 {
                        active = true;
                    }
                }
                for (i, &(port, valid, w)) in self.result_ports.iter().enumerate() {
                    let v = if batched {
                        self.sim.get_lane_id(valid, lane)
                    } else {
                        self.sim.get_id(valid)
                    };
                    if v != 0 {
                        let raw = if batched {
                            self.sim.get_lane_id(port, lane)
                        } else {
                            self.sim.get_id(port)
                        };
                        results[lane][i] = Some(sign(raw, w));
                        active = true;
                    }
                }
                if active {
                    last_activity[lane] = cycle;
                    last_any = cycle;
                }
            }
            // Sample bus requests, clock, then apply them (sync RAM).
            let requests = self.sample_requests();
            self.sim
                .step()
                .map_err(|e| CodegenError(format!("RTL assertion failed: {e}")))?;
            self.apply_requests(requests);
            if cycle == 0 {
                self.sim.set("start", 0);
            }
            cycle += 1;
            if cycle > max_cycles {
                return Err(CodegenError(format!(
                    "simulation did not quiesce within {max_cycles} cycles"
                )));
            }
            if cycle > last_any + QUIESCENT_GRACE && cycle > 2 {
                break;
            }
        }

        let mut reports = Vec::with_capacity(lanes);
        for (lane, res) in results.into_iter().enumerate() {
            let mut mems_out = HashMap::new();
            for mm in &self.mems {
                if mm.shared_with.is_none() {
                    mems_out.insert(mm.arg_index, mm.data[lane].clone());
                }
            }
            reports.push(HarnessReport {
                cycles: last_activity[lane],
                results: res.into_iter().map(|r| r.unwrap_or(0)).collect(),
                mems: mems_out,
            });
        }
        Ok(reports)
    }

    /// For zero-latency (register-kind) argument memories, the read data must
    /// be visible combinationally in the same cycle.
    fn serve_reads_pre(&mut self) {
        let batched = self.lanes > 1;
        for i in 0..self.mems.len() {
            if self.mems[i].read_latency != 0 || !self.mems[i].can_read {
                continue;
            }
            let store = self.mems[i].shared_with.unwrap_or(i);
            let bank_size = self.mems[i].bank_size;
            for b in 0..self.mems[i].bank_nets.len() {
                let bn = self.mems[i].bank_nets[b];
                let (Some(addr_id), Some(rd_data_id)) = (bn.addr, bn.rd_data) else {
                    continue;
                };
                for lane in 0..self.lanes {
                    let addr = if batched {
                        self.sim.get_lane_id(addr_id, lane)
                    } else {
                        self.sim.get_id(addr_id)
                    };
                    let idx = (b as u64 * bank_size + addr) as usize;
                    let v = self.mems[store].data[lane].get(idx).copied().unwrap_or(0);
                    if batched {
                        self.sim.set_lane_id(rd_data_id, lane, v as u64);
                    } else {
                        self.sim.set_id(rd_data_id, v as u64);
                    }
                }
            }
        }
    }

    /// Capture all bus requests during the current cycle.
    fn sample_requests(&mut self) -> Vec<Request> {
        let batched = self.lanes > 1;
        let mut out = Vec::new();
        for i in 0..self.mems.len() {
            for b in 0..self.mems[i].bank_nets.len() {
                let bn = self.mems[i].bank_nets[b];
                for lane in 0..self.lanes {
                    if self.mems[i].can_read && self.mems[i].read_latency > 0 {
                        if let (Some(en_id), Some(addr_id)) = (bn.rd_en, bn.addr) {
                            let en = if batched {
                                self.sim.get_lane_id(en_id, lane)
                            } else {
                                self.sim.get_id(en_id)
                            };
                            if en != 0 {
                                let addr = if batched {
                                    self.sim.get_lane_id(addr_id, lane)
                                } else {
                                    self.sim.get_id(addr_id)
                                };
                                out.push(Request::Read {
                                    mem: i,
                                    bank: b as u64,
                                    addr,
                                    lane,
                                });
                            }
                        }
                    }
                    if self.mems[i].can_write {
                        if let (Some(en_id), Some(waddr_id), Some(data_id)) =
                            (bn.wr_en, bn.waddr, bn.wr_data)
                        {
                            let en = if batched {
                                self.sim.get_lane_id(en_id, lane)
                            } else {
                                self.sim.get_id(en_id)
                            };
                            if en != 0 {
                                let (addr, data) = if batched {
                                    (
                                        self.sim.get_lane_id(waddr_id, lane),
                                        self.sim.get_lane_id(data_id, lane),
                                    )
                                } else {
                                    (self.sim.get_id(waddr_id), self.sim.get_id(data_id))
                                };
                                out.push(Request::Write {
                                    mem: i,
                                    bank: b as u64,
                                    addr,
                                    data,
                                    lane,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Apply the requests after the clock edge (synchronous RAM semantics).
    /// Reads are served before writes land, so a same-cycle read at a
    /// written address returns the old value (read-first RAM).
    fn apply_requests(&mut self, requests: Vec<Request>) {
        let batched = self.lanes > 1;
        let mut ordered: Vec<Request> = Vec::with_capacity(requests.len());
        let (reads, writes): (Vec<_>, Vec<_>) = requests
            .into_iter()
            .partition(|r| matches!(r, Request::Read { .. }));
        ordered.extend(reads);
        ordered.extend(writes);
        for r in ordered {
            match r {
                Request::Read {
                    mem,
                    bank,
                    addr,
                    lane,
                } => {
                    let idx = (bank * self.mems[mem].bank_size + addr) as usize;
                    let store = self.mems[mem].shared_with.unwrap_or(mem);
                    let v = self.mems[store].data[lane].get(idx).copied().unwrap_or(0);
                    let w = self.mems[mem].elem_width;
                    let Some(rd_data_id) = self.mems[mem].bank_nets[bank as usize].rd_data else {
                        continue;
                    };
                    if batched {
                        self.sim.set_lane_id(rd_data_id, lane, (v as u64) & mask(w));
                    } else {
                        self.sim.set_id(rd_data_id, (v as u64) & mask(w));
                    }
                }
                Request::Write {
                    mem,
                    bank,
                    addr,
                    data,
                    lane,
                } => {
                    let idx = (bank * self.mems[mem].bank_size + addr) as usize;
                    let store = self.mems[mem].shared_with.unwrap_or(mem);
                    let w = self.mems[mem].elem_width;
                    if idx < self.mems[store].data[lane].len() {
                        self.mems[store].data[lane][idx] = sign(data & mask(w), w);
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------- telemetry

    /// Turn on the simulator's telemetry plane (call before [`run`]). With
    /// `record_trace`, per-cone busy/quiescent intervals are kept for
    /// [`telemetry_trace`].
    ///
    /// [`run`]: Self::run
    /// [`telemetry_trace`]: Self::telemetry_trace
    pub fn enable_telemetry(&mut self, record_trace: bool) {
        self.sim.enable_telemetry(record_trace);
    }

    /// Snapshot the telemetry counters. When the function's static
    /// [`FuncResources`] are given, its unit→net map is joined with the
    /// measured counters into per-unit dynamic utilization (`units`).
    pub fn telemetry_report(
        &self,
        resources: Option<&FuncResources>,
    ) -> Option<verilog::TelemetryReport> {
        let mut report = self.sim.telemetry_report()?;
        if let Some(res) = resources {
            let by_name: HashMap<&str, (u64, u64)> = report
                .nets
                .iter()
                .map(|n| (n.name.as_str(), (n.toggle_cycles, n.high_cycles)))
                .collect();
            let mut units = Vec::new();
            for un in &res.unit_nets {
                // Units whose nets were optimized away (or belong to a
                // different module) are skipped, not zero-filled.
                if let Some(&(toggles, highs)) = by_name.get(un.net.as_str()) {
                    units.push(verilog::UnitActivity {
                        unit: un.unit.clone(),
                        net: un.net.clone(),
                        mode: un.mode.label().to_string(),
                        active_cycles: match un.mode {
                            ActivityMode::Toggle => toggles,
                            ActivityMode::High => highs,
                        },
                    });
                }
            }
            report.units = units;
        }
        Some(report)
    }

    /// Chrome-trace JSON of per-cone busy/quiescent periods (see
    /// [`verilog::Simulator::telemetry_trace`]).
    pub fn telemetry_trace(&self) -> Option<String> {
        self.sim.telemetry_trace()
    }

    /// Turn on the simulator's scheduler-statistics plane (call before
    /// [`run`]). A pure observer: results, VCD, and telemetry are unchanged.
    ///
    /// [`run`]: Self::run
    pub fn enable_sched_stats(&mut self) {
        self.sim.enable_sched_stats();
    }

    /// Snapshot the scheduler statistics (see
    /// [`verilog::Simulator::sched_stats_report`]).
    pub fn sched_stats_report(&self) -> Option<verilog::SchedStatsReport> {
        self.sim.sched_stats_report()
    }
}

enum Request {
    Read {
        mem: usize,
        bank: u64,
        addr: u64,
        lane: usize,
    },
    Write {
        mem: usize,
        bank: u64,
        addr: u64,
        data: u64,
        lane: usize,
    },
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn sign(v: u64, width: u32) -> i128 {
    if width >= 64 {
        return v as i64 as i128;
    }
    let s = 1u64 << (width - 1);
    if v & s != 0 {
        v as i128 - (1i128 << width)
    } else {
        v as i128
    }
}

/// Flat storage helper: convert a row-major tensor into the bank-major
/// layout the harness memories use, given the memref description.
pub fn to_bank_major(info: &MemrefInfo, row_major: &[i128]) -> Vec<i128> {
    let mut out = vec![0; row_major.len()];
    let dims: Vec<u64> = info.dims.iter().map(|d| d.size()).collect();
    for (flat_rm, &v) in row_major.iter().enumerate() {
        // Decompose row-major index into coordinates.
        let mut rem = flat_rm as u64;
        let mut coords = vec![0u64; dims.len()];
        for (k, &d) in dims.iter().enumerate().rev() {
            coords[k] = rem % d;
            rem /= d;
        }
        out[info.flat_index(&coords) as usize] = v;
    }
    out
}

/// Inverse of [`to_bank_major`].
pub fn from_bank_major(info: &MemrefInfo, bank_major: &[i128]) -> Vec<i128> {
    let mut out = vec![0; bank_major.len()];
    let dims: Vec<u64> = info.dims.iter().map(|d| d.size()).collect();
    for (flat_rm, slot) in out.iter_mut().enumerate() {
        let mut rem = flat_rm as u64;
        let mut coords = vec![0u64; dims.len()];
        for (k, &d) in dims.iter().enumerate().rev() {
            coords[k] = rem % d;
            rem /= d;
        }
        *slot = bank_major[info.flat_index(&coords) as usize];
    }
    out
}
