//! Simulation harness for generated designs.
//!
//! Drives a generated function module in the [`verilog::Simulator`]: pulses
//! `start`, applies scalar arguments, and models the memories behind the
//! module's memref argument buses (the role the testbench RAMs played in the
//! paper's evaluation flow). Functional results are compared elsewhere
//! against the HIR interpreter and software references.

use crate::{bus, module_name, CodegenError};
use hir::ops::FuncOp;
use hir::types::MemrefInfo;
use ir::Module;
use std::collections::HashMap;
use verilog::{Design, Simulator};

/// Default cycle bound for harness runs and for `hirc`'s `--sim-max-cycles`
/// flag: generous enough for every design in `examples/`, small enough that a
/// hung controller fails in well under a second of wall time.
pub const DEFAULT_SIM_MAX_CYCLES: u64 = 100_000;

/// An argument supplied to [`Harness::run`].
#[derive(Clone, Debug)]
pub enum HarnessArg {
    /// Scalar value driven on the argument port.
    Int(i128),
    /// Backing data for a memref argument (length = number of elements).
    Mem(Vec<i128>),
    /// Another port onto the tensor of a previous argument.
    SharedWith(usize),
}

impl HarnessArg {
    /// Convenience constructor from plain data.
    pub fn mem_from(data: &[i128]) -> Self {
        HarnessArg::Mem(data.to_vec())
    }

    /// A zero-initialized memory of the given size.
    pub fn zero_mem(len: usize) -> Self {
        HarnessArg::Mem(vec![0; len])
    }
}

/// Results of a harness run.
#[derive(Clone, Debug)]
pub struct HarnessReport {
    /// Cycle index of the last observed activity (≈ design latency).
    pub cycles: u64,
    /// Captured scalar results (at their `result{i}_valid` pulses).
    pub results: Vec<i128>,
    /// Final contents of each memref argument's backing memory.
    pub mems: HashMap<usize, Vec<i128>>,
}

struct MemModel {
    arg_index: usize,
    base: String,
    info: MemrefInfo,
    /// Flat storage: bank-major (`bank * bank_size + addr`).
    data: Vec<i128>,
    shared_with: Option<usize>,
}

/// Runs a generated HIR function module under RTL simulation.
pub struct Harness {
    sim: Simulator,
    mems: Vec<MemModel>,
    scalar_ports: Vec<(String, i128, u32)>,
    result_ports: Vec<(String, String, u32)>,
    activity_nets: Vec<String>,
}

impl Harness {
    /// Build a harness for function `func` of the HIR module `m`, simulating
    /// `design` (which must contain the generated module plus any external
    /// blackbox implementations).
    ///
    /// # Errors
    /// Fails when the design does not elaborate or arguments mismatch.
    pub fn new(
        design: &Design,
        m: &Module,
        func: FuncOp,
        args: &[HarnessArg],
    ) -> Result<Self, CodegenError> {
        let top = module_name(&func.name(m));
        let sim = Simulator::new(design, &top)
            .map_err(|e| CodegenError(format!("failed to build simulator: {e}")))?;
        let formal = func.args(m);
        if formal.len() != args.len() {
            return Err(CodegenError(format!(
                "function takes {} arguments, harness got {}",
                formal.len(),
                args.len()
            )));
        }
        let arg_names = func
            .arg_names(m)
            .unwrap_or_else(|| (0..formal.len()).map(|i| format!("arg{i}")).collect());

        let mut mems = Vec::new();
        let mut scalar_ports = Vec::new();
        let mut mem_index_by_arg: HashMap<usize, usize> = HashMap::new();
        for (i, (formal_v, actual)) in formal.iter().zip(args).enumerate() {
            let ty = m.value_type(*formal_v);
            let base: String = arg_names[i]
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            match (MemrefInfo::from_type(&ty), actual) {
                (Some(info), HarnessArg::Mem(data)) => {
                    if data.len() as u64 != info.num_elements() {
                        return Err(CodegenError(format!(
                            "argument {i}: memory has {} words, memref needs {}",
                            data.len(),
                            info.num_elements()
                        )));
                    }
                    mem_index_by_arg.insert(i, mems.len());
                    mems.push(MemModel {
                        arg_index: i,
                        base,
                        info,
                        data: data.clone(),
                        shared_with: None,
                    });
                }
                (Some(info), HarnessArg::SharedWith(j)) => {
                    let &target = mem_index_by_arg
                        .get(j)
                        .ok_or_else(|| CodegenError(format!("SharedWith({j}) is not a memory")))?;
                    mems.push(MemModel {
                        arg_index: i,
                        base,
                        info,
                        data: Vec::new(),
                        shared_with: Some(target),
                    });
                }
                (None, HarnessArg::Int(v)) => {
                    let width = ty.bit_width().unwrap_or(32);
                    scalar_ports.push((base, *v, width));
                }
                _ => {
                    return Err(CodegenError(format!(
                        "argument {i}: kind mismatch between {ty} and {actual:?}"
                    )))
                }
            }
        }

        let mut result_ports = Vec::new();
        for (i, rty) in func.result_types(m).iter().enumerate() {
            result_ports.push((
                format!("result{i}"),
                format!("result{i}_valid"),
                rty.bit_width().unwrap_or(32),
            ));
        }

        // Activity: every memref bus enable in either direction.
        let mut activity_nets = Vec::new();
        for mm in &mems {
            let banks = mm.info.num_banks();
            for b in 0..banks {
                if mm.info.port.can_read() {
                    activity_nets.push(bus(&mm.base, b, banks, "rd_en"));
                }
                if mm.info.port.can_write() {
                    activity_nets.push(bus(&mm.base, b, banks, "wr_en"));
                }
            }
        }
        for (_, valid, _) in &result_ports {
            activity_nets.push(valid.clone());
        }
        // The design's own busy indicator covers internal-only phases.
        activity_nets.push("busy".to_string());

        Ok(Harness {
            sim,
            mems,
            scalar_ports,
            result_ports,
            activity_nets,
        })
    }

    /// Select the simulator execution engine (bytecode by default; the
    /// tree-walk oracle is used for differential testing).
    pub fn set_engine(&mut self, engine: verilog::Engine) {
        self.sim.set_engine(engine);
    }

    /// Borrow the underlying simulator (engine selection, tape statistics).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Dump a VCD waveform of the whole run to `path`.
    ///
    /// # Errors
    /// Fails if the file cannot be created.
    pub fn dump_vcd(&mut self, path: &std::path::Path) -> Result<(), CodegenError> {
        let file = std::fs::File::create(path)
            .map_err(|e| CodegenError(format!("{}: {e}", path.display())))?;
        self.sim
            .start_vcd(Box::new(std::io::BufWriter::new(file)))
            .map_err(|e| CodegenError(format!("vcd: {e}")))
    }

    /// Run the design: one `start` pulse at cycle 0, then clock until the
    /// design is quiescent (no activity for a grace period) or `max_cycles`.
    ///
    /// # Errors
    /// Propagates RTL assertion failures; times out after `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<HarnessReport, CodegenError> {
        const QUIESCENT_GRACE: u64 = 8;
        // Belt and braces: arm the simulator's own watchdog too, so even a
        // future loop in this harness cannot spin past the caller's bound.
        self.sim.set_cycle_budget(Some(
            self.sim
                .cycle()
                .saturating_add(max_cycles)
                .saturating_add(1),
        ));
        for (name, v, w) in self.scalar_ports.clone() {
            self.sim.set(&name, (v as u64) & mask(w));
        }
        self.sim.set("start", 1);

        let mut results: Vec<Option<i128>> = vec![None; self.result_ports.len()];
        let mut last_activity: u64 = 0;
        let mut cycle: u64 = 0;
        loop {
            // Serve memories combinationally-visible state for this cycle.
            self.serve_reads_pre();
            // Observe activity + capture results before the edge.
            let mut active = false;
            for net in self.activity_nets.clone() {
                if self.sim.get(&net) != 0 {
                    active = true;
                }
            }
            for (i, (port, valid, w)) in self.result_ports.clone().into_iter().enumerate() {
                if self.sim.get(&valid) != 0 {
                    let raw = self.sim.get(&port);
                    results[i] = Some(sign(raw, w));
                    active = true;
                }
            }
            if active {
                last_activity = cycle;
            }
            // Sample bus requests, clock, then apply them (sync RAM).
            let requests = self.sample_requests();
            self.sim
                .step()
                .map_err(|e| CodegenError(format!("RTL assertion failed: {e}")))?;
            self.apply_requests(requests);
            if cycle == 0 {
                self.sim.set("start", 0);
            }
            cycle += 1;
            if cycle > max_cycles {
                return Err(CodegenError(format!(
                    "simulation did not quiesce within {max_cycles} cycles"
                )));
            }
            if cycle > last_activity + QUIESCENT_GRACE && cycle > 2 {
                break;
            }
        }

        let mut mems_out = HashMap::new();
        for i in 0..self.mems.len() {
            let mm = &self.mems[i];
            if mm.shared_with.is_none() {
                mems_out.insert(mm.arg_index, mm.data.clone());
            }
        }
        Ok(HarnessReport {
            cycles: last_activity,
            results: results.into_iter().map(|r| r.unwrap_or(0)).collect(),
            mems: mems_out,
        })
    }

    /// For zero-latency (register-kind) argument memories, the read data must
    /// be visible combinationally in the same cycle.
    fn serve_reads_pre(&mut self) {
        for i in 0..self.mems.len() {
            let (base, info, shared) = (
                self.mems[i].base.clone(),
                self.mems[i].info.clone(),
                self.mems[i].shared_with,
            );
            if info.kind.read_latency() != 0 || !info.port.can_read() {
                continue;
            }
            let banks = info.num_banks();
            let bank_size = info.bank_size();
            for b in 0..banks {
                let addr = self.sim.get(&bus(&base, b, banks, "addr"));
                let idx = (b * bank_size + addr) as usize;
                let store = shared.unwrap_or(i);
                let v = self.mems[store].data.get(idx).copied().unwrap_or(0);
                self.sim.set(&bus(&base, b, banks, "rd_data"), v as u64);
            }
        }
    }

    /// Capture all bus requests during the current cycle.
    fn sample_requests(&mut self) -> Vec<Request> {
        let mut out = Vec::new();
        for i in 0..self.mems.len() {
            let (base, info) = (self.mems[i].base.clone(), self.mems[i].info.clone());
            let banks = info.num_banks();
            for b in 0..banks {
                if info.port.can_read() && info.kind.read_latency() > 0 {
                    let en = self.sim.get(&bus(&base, b, banks, "rd_en"));
                    if en != 0 {
                        let addr = self.sim.get(&bus(&base, b, banks, "addr"));
                        out.push(Request::Read {
                            mem: i,
                            bank: b,
                            addr,
                        });
                    }
                }
                if info.port.can_write() {
                    let en = self.sim.get(&bus(&base, b, banks, "wr_en"));
                    if en != 0 {
                        let addr = self.sim.get(&bus(&base, b, banks, "waddr"));
                        let data = self.sim.get(&bus(&base, b, banks, "wr_data"));
                        out.push(Request::Write {
                            mem: i,
                            bank: b,
                            addr,
                            data,
                        });
                    }
                }
            }
        }
        out
    }

    /// Apply the requests after the clock edge (synchronous RAM semantics).
    /// Reads are served before writes land, so a same-cycle read at a
    /// written address returns the old value (read-first RAM).
    fn apply_requests(&mut self, requests: Vec<Request>) {
        let mut ordered: Vec<Request> = Vec::with_capacity(requests.len());
        let (reads, writes): (Vec<_>, Vec<_>) = requests
            .into_iter()
            .partition(|r| matches!(r, Request::Read { .. }));
        ordered.extend(reads);
        ordered.extend(writes);
        for r in ordered {
            match r {
                Request::Read { mem, bank, addr } => {
                    let (base, info, shared) = (
                        self.mems[mem].base.clone(),
                        self.mems[mem].info.clone(),
                        self.mems[mem].shared_with,
                    );
                    let banks = info.num_banks();
                    let idx = (bank * info.bank_size() + addr) as usize;
                    let store = shared.unwrap_or(mem);
                    let v = self.mems[store].data.get(idx).copied().unwrap_or(0);
                    let w = info.elem.bit_width().unwrap_or(32);
                    self.sim
                        .set(&bus(&base, bank, banks, "rd_data"), (v as u64) & mask(w));
                }
                Request::Write {
                    mem,
                    bank,
                    addr,
                    data,
                } => {
                    let info = self.mems[mem].info.clone();
                    let idx = (bank * info.bank_size() + addr) as usize;
                    let store = self.mems[mem].shared_with.unwrap_or(mem);
                    let w = info.elem.bit_width().unwrap_or(32);
                    if idx < self.mems[store].data.len() {
                        self.mems[store].data[idx] = sign(data & mask(w), w);
                    }
                }
            }
        }
    }
}

enum Request {
    Read {
        mem: usize,
        bank: u64,
        addr: u64,
    },
    Write {
        mem: usize,
        bank: u64,
        addr: u64,
        data: u64,
    },
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn sign(v: u64, width: u32) -> i128 {
    if width >= 64 {
        return v as i64 as i128;
    }
    let s = 1u64 << (width - 1);
    if v & s != 0 {
        v as i128 - (1i128 << width)
    } else {
        v as i128
    }
}

/// Flat storage helper: convert a row-major tensor into the bank-major
/// layout the harness memories use, given the memref description.
pub fn to_bank_major(info: &MemrefInfo, row_major: &[i128]) -> Vec<i128> {
    let mut out = vec![0; row_major.len()];
    let dims: Vec<u64> = info.dims.iter().map(|d| d.size()).collect();
    for (flat_rm, &v) in row_major.iter().enumerate() {
        // Decompose row-major index into coordinates.
        let mut rem = flat_rm as u64;
        let mut coords = vec![0u64; dims.len()];
        for (k, &d) in dims.iter().enumerate().rev() {
            coords[k] = rem % d;
            rem /= d;
        }
        out[info.flat_index(&coords) as usize] = v;
    }
    out
}

/// Inverse of [`to_bank_major`].
pub fn from_bank_major(info: &MemrefInfo, bank_major: &[i128]) -> Vec<i128> {
    let mut out = vec![0; bank_major.len()];
    let dims: Vec<u64> = info.dims.iter().map(|d| d.size()).collect();
    for (flat_rm, slot) in out.iter_mut().enumerate() {
        let mut rem = flat_rm as u64;
        let mut coords = vec![0u64; dims.len()];
        for (k, &d) in dims.iter().enumerate().rev() {
            coords[k] = rem % d;
            rem /= d;
        }
        *slot = bank_major[info.flat_index(&coords) as usize];
    }
    out
}
