//! Symbol tables: resolve `@name` references to symbol-defining ops.
//!
//! Symbol-defining ops (HIR functions, external module declarations) carry a
//! `sym_name` string attribute at module top level.

use crate::module::{Module, OpId};
use std::collections::HashMap;

/// Attribute key under which symbols store their name.
pub const SYM_NAME: &str = "sym_name";

/// A snapshot symbol table over a module's top-level ops.
#[derive(Debug, Default)]
pub struct SymbolTable {
    map: HashMap<String, OpId>,
}

impl SymbolTable {
    /// Build the table from all top-level ops carrying `sym_name`.
    ///
    /// # Panics
    /// Panics on duplicate symbol names (the verifier reports those first in
    /// well-formed pipelines).
    pub fn build(module: &Module) -> Self {
        let mut map = HashMap::new();
        for &op in module.top_ops() {
            if let Some(name) = module.op(op).attr(SYM_NAME).and_then(|a| a.as_str()) {
                let prev = map.insert(name.to_string(), op);
                assert!(prev.is_none(), "duplicate symbol '@{name}'");
            }
        }
        SymbolTable { map }
    }

    /// Resolve a symbol name.
    pub fn lookup(&self, name: &str) -> Option<OpId> {
        self.map.get(name).copied()
    }

    /// All `(name, op)` pairs, sorted by name.
    pub fn iter_sorted(&self) -> Vec<(&str, OpId)> {
        let mut v: Vec<(&str, OpId)> = self.map.iter().map(|(k, &o)| (k.as_str(), o)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no symbols are defined.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrMap, Attribute};
    use crate::location::Location;

    fn func(m: &mut Module, name: &str) -> OpId {
        let mut attrs = AttrMap::new();
        attrs.insert(SYM_NAME.into(), Attribute::string(name));
        let f = m.create_op("t.func", vec![], vec![], attrs, Location::unknown());
        m.push_top(f);
        f
    }

    #[test]
    fn builds_and_resolves() {
        let mut m = Module::new();
        let a = func(&mut m, "a");
        let b = func(&mut m, "b");
        let t = SymbolTable::build(&m);
        assert_eq!(t.lookup("a"), Some(a));
        assert_eq!(t.lookup("b"), Some(b));
        assert_eq!(t.lookup("c"), None);
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.iter_sorted().iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_symbols_panic() {
        let mut m = Module::new();
        func(&mut m, "dup");
        func(&mut m, "dup");
        let _ = SymbolTable::build(&m);
    }
}
