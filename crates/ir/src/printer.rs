//! Textual IR printer (MLIR-style generic form).
//!
//! The generic form is fully round-trippable through [`crate::parser`]:
//!
//! ```text
//! %0 = "hir.constant"() {value = 16 : index} : () -> (index)
//! "hir.for"(%0) ({
//! ^bb0(%1: i32, %2: !hir.time):
//!   "hir.yield"(%2) : (!hir.time) -> ()
//! }) : (index) -> ()
//! ```
//!
//! Dialects can register *pretty* printers elsewhere (e.g. HIR's paper-style
//! syntax); this module is the canonical form used for tests and tools.

use crate::module::{BlockId, Module, OpId, RegionId, ValueId};
use std::collections::HashMap;
use std::fmt::Write;

/// Printer configuration.
#[derive(Clone, Debug, Default)]
pub struct PrintOptions {
    /// Append `loc("file":line:col)` to each op that has a known location.
    pub locations: bool,
}

/// Print the whole module in generic form.
pub fn print_module(module: &Module) -> String {
    print_module_with(module, &PrintOptions::default())
}

/// Print the whole module with explicit options.
pub fn print_module_with(module: &Module, opts: &PrintOptions) -> String {
    let mut p = Printer::new(module, opts.clone());
    for &op in module.top_ops() {
        p.print_op(op, 0);
    }
    p.out
}

/// Print a single op (and its regions) in generic form.
pub fn print_op(module: &Module, op: OpId) -> String {
    let mut p = Printer::new(module, PrintOptions::default());
    p.print_op(op, 0);
    p.out
}

struct Printer<'m> {
    module: &'m Module,
    opts: PrintOptions,
    names: HashMap<ValueId, usize>,
    next: usize,
    out: String,
}

impl<'m> Printer<'m> {
    fn new(module: &'m Module, opts: PrintOptions) -> Self {
        Printer {
            module,
            opts,
            names: HashMap::new(),
            next: 0,
            out: String::new(),
        }
    }

    fn name(&mut self, v: ValueId) -> usize {
        if let Some(&n) = self.names.get(&v) {
            return n;
        }
        let n = self.next;
        self.next += 1;
        self.names.insert(v, n);
        n
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    fn print_op(&mut self, op: OpId, depth: usize) {
        self.indent(depth);
        let data = self.module.op(op);
        if !data.results().is_empty() {
            for (i, &r) in data.results().iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let n = self.name(r);
                let _ = write!(self.out, "%{n}");
            }
            self.out.push_str(" = ");
        }
        let _ = write!(self.out, "\"{}\"(", data.name());
        for (i, &o) in data.operands().iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let n = self.name(o);
            let _ = write!(self.out, "%{n}");
        }
        self.out.push(')');

        if !data.regions().is_empty() {
            self.out.push_str(" (");
            let regions = data.regions().to_vec();
            for (i, r) in regions.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.print_region(*r, depth);
            }
            self.out.push(')');
        }

        if !data.attrs().is_empty() {
            self.out.push_str(" {");
            let attrs: Vec<(String, String)> = data
                .attrs()
                .iter()
                .map(|(k, v)| (k.clone(), v.to_string()))
                .collect();
            for (i, (k, v)) in attrs.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let _ = write!(self.out, "{k} = {v}");
            }
            self.out.push('}');
        }

        // Trailing function type.
        self.out.push_str(" : (");
        for (i, &o) in data.operands().iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let t = self.module.value_type(o);
            let _ = write!(self.out, "{t}");
        }
        self.out.push_str(") -> (");
        for (i, &r) in data.results().iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let t = self.module.value_type(r);
            let _ = write!(self.out, "{t}");
        }
        self.out.push(')');

        if self.opts.locations {
            if let Some((file, line, col)) = data.loc().file_line() {
                let _ = write!(self.out, " loc(\"{file}\":{line}:{col})");
            }
        }
        self.out.push('\n');
    }

    fn print_region(&mut self, region: RegionId, depth: usize) {
        self.out.push_str("{\n");
        let blocks = self.module.region(region).blocks().to_vec();
        for b in blocks {
            self.print_block(b, depth + 1);
        }
        self.indent(depth);
        self.out.push('}');
    }

    fn print_block(&mut self, block: BlockId, depth: usize) {
        let args = self.module.block(block).args().to_vec();
        if !args.is_empty() {
            self.indent(depth - 1);
            self.out.push_str("^bb(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let n = self.name(*a);
                let t = self.module.value_type(*a);
                let _ = write!(self.out, "%{n}: {t}");
            }
            self.out.push_str("):\n");
        }
        let ops = self.module.block(block).ops().to_vec();
        for o in ops {
            self.print_op(o, depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrMap, Attribute};
    use crate::location::Location;
    use crate::types::Type;

    #[test]
    fn prints_flat_op() {
        let mut m = Module::new();
        let mut attrs = AttrMap::new();
        attrs.insert("value".into(), Attribute::index(16));
        let c = m.create_op(
            "hir.constant",
            vec![],
            vec![Type::index()],
            attrs,
            Location::unknown(),
        );
        m.push_top(c);
        let text = print_module(&m);
        assert_eq!(
            text,
            "%0 = \"hir.constant\"() {value = 16 : index} : () -> (index)\n"
        );
    }

    #[test]
    fn prints_nested_regions_with_block_args() {
        let mut m = Module::new();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![Type::int(32)]);
        let arg = m.block(b).args()[0];
        let add = m.create_op(
            "t.add",
            vec![arg, arg],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, add);
        m.push_top(f);
        let text = print_module(&m);
        assert!(text.contains("\"t.func\"() ({"), "{text}");
        assert!(text.contains("^bb(%0: i32):"), "{text}");
        assert!(
            text.contains("%1 = \"t.add\"(%0, %0) : (i32, i32) -> (i32)"),
            "{text}"
        );
    }

    #[test]
    fn prints_locations_when_requested() {
        let mut m = Module::new();
        let c = m.create_op(
            "t.c",
            vec![],
            vec![],
            AttrMap::new(),
            Location::file_line_col("k.mlir", 3, 9),
        );
        m.push_top(c);
        let text = print_module_with(&m, &PrintOptions { locations: true });
        assert!(text.contains("loc(\"k.mlir\":3:9)"), "{text}");
    }
}
