//! # `ir` — an MLIR-style SSA compiler IR core
//!
//! This crate provides the infrastructure the HIR dialect is built on, in the
//! spirit of MLIR: operations with operands, typed results, named attributes
//! and nested regions; SSA values with use-def chains; a round-trippable
//! textual format; dialect registration with op traits and verifiers; a pass
//! manager with timing statistics; and a greedy pattern-rewrite driver.
//!
//! ## Quick tour
//!
//! ```
//! use ir::{Module, Builder, Type, Attribute};
//!
//! let mut module = Module::new();
//! let mut b = Builder::new(&mut module);
//!
//! // A function-like op with one region.
//! let func = b.op("demo.func").attr("sym_name", Attribute::string("main")).build();
//! let (_region, entry) = b.region_with_entry(func, vec![Type::int(32)]);
//! b.at_block_end(entry);
//!
//! let arg = b.module_ref().block(entry).args()[0];
//! let add = b.op("demo.add").operand(arg).operand(arg).result(Type::int(32)).build();
//!
//! let text = ir::print_module(&module);
//! let reparsed = ir::parse_module(&text).unwrap();
//! assert_eq!(text, ir::print_module(&reparsed));
//! # let _ = add;
//! ```

pub mod arena;
pub mod attributes;
pub mod builder;
pub mod diagnostics;
pub mod dialect;
pub mod location;
pub mod module;
pub mod parallel;
pub mod parser;
pub mod pass;
pub mod printer;
pub mod reproducer;
pub mod rewrite;
pub mod symbol;
pub mod types;
pub mod verifier;

pub use attributes::{AttrMap, Attribute};
pub use builder::{Builder, InsertPoint, OpBuilder};
pub use diagnostics::{Diagnostic, DiagnosticEngine, Note, Severity, SourceManager};
pub use dialect::{traits, Arity, Dialect, DialectRegistry, OpSpec};
pub use location::Location;
pub use module::{
    BlockId, Module, OpData, OpId, OpName, RegionId, Use, ValueData, ValueDef, ValueId,
};
pub use parallel::{
    default_thread_count, resolve_thread_count, FunctionPipeline, FunctionReport, PassFactory,
    WORKER_TID_BASE,
};
pub use parser::{
    parse_module, parse_module_recover, ParseError, RecoveredParse, DEFAULT_ERROR_LIMIT,
};
pub use pass::{
    IrPrintInstrumentation, Pass, PassContext, PassInstrumentation, PassManager, PassResult,
    PassTiming, PipelineError,
};
pub use printer::{print_module, print_module_with, print_op, PrintOptions};
pub use reproducer::{format_reproducer, parse_reproducer, Reproducer, REPRODUCER_HEADER};
pub use rewrite::{apply_patterns_greedily, RewritePattern, RewriteStats, RewriteStatus, Rewriter};
pub use symbol::{SymbolTable, SYM_NAME};
pub use types::{FloatKind, Signedness, Type, TypeKind};
pub use verifier::{value_visible_at, verify_module};
