//! Attributes: constant metadata attached to operations and dialect types.
//!
//! As in MLIR, attributes are immutable values with structural equality.
//! Integer attributes carry arbitrary-precision-ish payloads as `i128`, which
//! comfortably covers every bit width HIR designs use (≤ 64-bit data paths).

use crate::types::Type;
use std::collections::BTreeMap;
use std::fmt;

/// An attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Attribute {
    /// Unit attribute: presence is the information (e.g. `pipelined`).
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer with an associated type (width/signedness interpretation).
    Int(i128, Type),
    /// Float (stored as f64 bits; `Eq`/`Hash` use the bit pattern).
    Float(f64, Type),
    /// String.
    String(String),
    /// A type used as an attribute.
    Type(Type),
    /// Ordered list.
    Array(Vec<Attribute>),
    /// String-keyed dictionary.
    Dict(BTreeMap<String, Attribute>),
    /// Reference to a symbol (e.g. a callee function) — `@name`.
    SymbolRef(String),
}

impl Eq for Attribute {}

impl std::hash::Hash for Attribute {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Attribute::Unit => {}
            Attribute::Bool(b) => b.hash(state),
            Attribute::Int(v, t) => {
                v.hash(state);
                t.hash(state);
            }
            Attribute::Float(v, t) => {
                v.to_bits().hash(state);
                t.hash(state);
            }
            Attribute::String(s) => s.hash(state),
            Attribute::Type(t) => t.hash(state),
            Attribute::Array(a) => a.hash(state),
            Attribute::Dict(d) => {
                for (k, v) in d {
                    k.hash(state);
                    v.hash(state);
                }
            }
            Attribute::SymbolRef(s) => s.hash(state),
        }
    }
}

impl Attribute {
    /// An integer attribute with the signless `iN` type of the given width.
    pub fn int(value: i128, width: u32) -> Self {
        Attribute::Int(value, Type::int(width))
    }

    /// An `index`-typed integer attribute.
    pub fn index(value: i128) -> Self {
        Attribute::Int(value, Type::index())
    }

    /// An `f32`-typed float attribute.
    pub fn f32(value: f32) -> Self {
        Attribute::Float(value as f64, Type::f32())
    }

    /// An `f64`-typed float attribute.
    pub fn f64(value: f64) -> Self {
        Attribute::Float(value, Type::f64())
    }

    /// A string attribute.
    pub fn string(s: impl Into<String>) -> Self {
        Attribute::String(s.into())
    }

    /// A symbol reference attribute `@name`.
    pub fn symbol(s: impl Into<String>) -> Self {
        Attribute::SymbolRef(s.into())
    }

    /// Extract an integer payload regardless of its type.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Attribute::Int(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float payload.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attribute::Float(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::String(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a symbol-ref payload.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Attribute::SymbolRef(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a type payload.
    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attribute::Type(t) => Some(t),
            _ => None,
        }
    }

    /// Extract an array payload.
    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Extract a bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Unit => write!(f, "unit"),
            Attribute::Bool(b) => write!(f, "{b}"),
            Attribute::Int(v, t) => write!(f, "{v} : {t}"),
            Attribute::Float(v, t) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1} : {t}")
                } else {
                    write!(f, "{v} : {t}")
                }
            }
            Attribute::String(s) => escape(s, f),
            Attribute::Type(t) => write!(f, "{t}"),
            Attribute::Array(a) => {
                write!(f, "[")?;
                for (i, x) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Attribute::Dict(d) => {
                write!(f, "{{")?;
                for (i, (k, v)) in d.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, "}}")
            }
            Attribute::SymbolRef(s) => write!(f, "@{s}"),
        }
    }
}

/// The named attribute map carried by every operation.
pub type AttrMap = BTreeMap<String, Attribute>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Attribute::int(5, 32).as_int(), Some(5));
        assert_eq!(Attribute::string("x").as_str(), Some("x"));
        assert_eq!(Attribute::symbol("foo").as_symbol(), Some("foo"));
        assert_eq!(Attribute::Bool(true).as_bool(), Some(true));
        assert_eq!(Attribute::int(5, 32).as_str(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Attribute::int(7, 32).to_string(), "7 : i32");
        assert_eq!(Attribute::index(3).to_string(), "3 : index");
        assert_eq!(Attribute::string("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(
            Attribute::Array(vec![Attribute::index(1), Attribute::index(2)]).to_string(),
            "[1 : index, 2 : index]"
        );
        assert_eq!(Attribute::symbol("f").to_string(), "@f");
        assert_eq!(Attribute::f64(2.0).to_string(), "2.0 : f64");
    }

    #[test]
    fn hash_and_eq_consistent_for_floats() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Attribute::f64(1.5));
        assert!(set.contains(&Attribute::f64(1.5)));
        assert!(!set.contains(&Attribute::f64(2.5)));
    }
}
