//! Parser for the generic textual form produced by [`crate::printer`].
//!
//! The IR is round-trippable: `parse_module(print_module(m))` reconstructs an
//! isomorphic module. Errors carry line/column positions.

use crate::attributes::{AttrMap, Attribute};
use crate::location::Location;
use crate::module::{Module, OpId, ValueId};
use crate::types::Type;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

// --------------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Percent(usize),    // %12
    Str(String),       // "hir.for"
    Int(i128),         // 42, -3
    Float(f64),        // 2.0
    Ident(String),     // value, i32, unit, bb
    BangIdent(String), // !hir.memref  (stored as "hir.memref")
    AtIdent(String),   // @main
    Caret,             // ^
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Colon,
    Comma,
    Eq,
    Arrow, // ->
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                // Line comments: `//` to end of line.
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek_byte() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(b) = self.peek_byte() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                s.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn next(&mut self) -> Result<(Tok, u32, u32)> {
        self.skip_ws();
        let (line, col) = (self.line, self.col);
        let Some(b) = self.peek_byte() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match b {
            b'%' => {
                self.bump();
                let id = self.lex_ident();
                let n = id
                    .parse::<usize>()
                    .map_err(|_| self.err(format!("invalid value id %{id}")))?;
                Tok::Percent(n)
            }
            b'@' => {
                self.bump();
                Tok::AtIdent(self.lex_ident())
            }
            b'!' => {
                self.bump();
                Tok::BangIdent(self.lex_ident())
            }
            b'^' => {
                self.bump();
                self.lex_ident(); // consume the block label, unused
                Tok::Caret
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(c) => s.push(c as char),
                            None => return Err(self.err("unterminated string")),
                        },
                        Some(c) => s.push(c as char),
                        None => return Err(self.err("unterminated string")),
                    }
                }
                Tok::Str(s)
            }
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b'<' => {
                self.bump();
                Tok::Lt
            }
            b'>' => {
                self.bump();
                Tok::Gt
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'=' => {
                self.bump();
                Tok::Eq
            }
            b'-' => {
                self.bump();
                if self.peek_byte() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    return self.lex_number(true).map(|t| (t, line, col));
                }
            }
            b'0'..=b'9' => return self.lex_number(false).map(|t| (t, line, col)),
            _ if b.is_ascii_alphabetic() || b == b'_' => Tok::Ident(self.lex_ident()),
            other => return Err(self.err(format!("unexpected character '{}'", other as char))),
        };
        Ok((tok, line, col))
    }

    fn lex_number(&mut self, negative: bool) -> Result<Tok> {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(b) = self.peek_byte() {
            match b {
                b'0'..=b'9' => {
                    text.push(b as char);
                    self.bump();
                }
                b'.' if !is_float
                    && matches!(self.src.get(self.pos + 1), Some(c) if c.is_ascii_digit()) =>
                {
                    is_float = true;
                    text.push('.');
                    self.bump();
                }
                b'e' | b'E' if is_float => {
                    text.push(b as char);
                    self.bump();
                    if matches!(self.peek_byte(), Some(b'-' | b'+')) {
                        text.push(self.bump().unwrap() as char);
                    }
                }
                _ => break,
            }
        }
        if text.is_empty() {
            return Err(self.err("expected number"));
        }
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("invalid float"))?;
            Ok(Tok::Float(if negative { -v } else { v }))
        } else {
            let v: i128 = text.parse().map_err(|_| self.err("invalid integer"))?;
            Ok(Tok::Int(if negative { -v } else { v }))
        }
    }
}

// -------------------------------------------------------------------- parser

/// Parse a module from its generic textual form.
///
/// # Errors
/// Returns a [`ParseError`] with position info on malformed input.
pub fn parse_module(src: &str) -> Result<Module> {
    let mut p = Parser::new(src)?;
    let mut module = Module::new();
    let mut values: HashMap<usize, ValueId> = HashMap::new();
    let mut tops = Vec::new();
    while p.tok != Tok::Eof {
        let op = p.parse_op(&mut module, &mut values)?;
        tops.push(op);
    }
    for t in tops {
        module.push_top(t);
    }
    Ok(module)
}

/// Default cap on recorded errors in recovery mode (MLIR uses a similar
/// bound to keep cascades readable).
pub const DEFAULT_ERROR_LIMIT: usize = 20;

/// Outcome of [`parse_module_recover`]: whatever parsed plus every error.
#[derive(Debug)]
pub struct RecoveredParse {
    /// Ops that parsed cleanly. Only meaningful when `errors` is empty —
    /// with errors present it is a best-effort partial module.
    pub module: Module,
    /// All parse errors, in source order.
    pub errors: Vec<ParseError>,
    /// Recovery stopped early because `error_limit` was reached.
    pub hit_error_limit: bool,
}

/// Parse with error recovery: on a parse failure, record the error,
/// synchronize to the next top-level operation boundary, and continue, so
/// one run reports every error in the file instead of bailing at the first.
///
/// `error_limit` caps the number of recorded errors (0 means
/// [`DEFAULT_ERROR_LIMIT`]).
pub fn parse_module_recover(src: &str, error_limit: usize) -> RecoveredParse {
    let limit = if error_limit == 0 {
        DEFAULT_ERROR_LIMIT
    } else {
        error_limit
    };
    let mut errors = Vec::new();
    let mut p = Parser::new_lenient(src, &mut errors);
    let mut module = Module::new();
    let mut values: HashMap<usize, ValueId> = HashMap::new();
    let mut tops = Vec::new();
    let mut hit_error_limit = false;
    while p.tok != Tok::Eof {
        if errors.len() >= limit {
            hit_error_limit = true;
            break;
        }
        let op_start_line = p.line;
        match p.parse_op(&mut module, &mut values) {
            Ok(op) => tops.push(op),
            Err(e) => {
                errors.push(e);
                p.synchronize(op_start_line, &mut errors);
            }
        }
    }
    errors.truncate(limit);
    if errors.len() >= limit && p.tok != Tok::Eof {
        hit_error_limit = true;
    }
    for t in tops {
        module.push_top(t);
    }
    RecoveredParse {
        module,
        errors,
        hit_error_limit,
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self> {
        let mut lexer = Lexer::new(src);
        let (tok, line, col) = lexer.next()?;
        Ok(Parser {
            lexer,
            tok,
            line,
            col,
        })
    }

    /// Like [`Parser::new`] but never fails: leading lexer errors are
    /// recorded and the offending bytes skipped.
    fn new_lenient(src: &'a str, errors: &mut Vec<ParseError>) -> Self {
        let mut lexer = Lexer::new(src);
        let (tok, line, col) = loop {
            match lexer.next() {
                Ok(t) => break t,
                Err(e) => {
                    errors.push(e);
                    lexer.bump();
                }
            }
        };
        Parser {
            lexer,
            tok,
            line,
            col,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    /// Advance, recording (rather than returning) lexer errors and skipping
    /// the offending bytes. Used during error recovery, where the parser
    /// must always make progress.
    fn advance_lenient(&mut self, errors: &mut Vec<ParseError>) {
        loop {
            match self.lexer.next() {
                Ok((tok, line, col)) => {
                    self.line = line;
                    self.col = col;
                    self.tok = tok;
                    return;
                }
                Err(e) => {
                    errors.push(e);
                    self.lexer.bump();
                }
            }
        }
    }

    /// Skip to a plausible start of the next top-level operation: a `%N` or
    /// quoted op name outside any delimiter nesting, on a line after
    /// `from_line` (the line the failed op started on). Closers beyond the
    /// error's nesting are consumed on the way. If the parser is already at
    /// such a boundary (e.g. the failure was inside an already-consumed
    /// nested region), this is a no-op.
    fn synchronize(&mut self, from_line: u32, errors: &mut Vec<ParseError>) {
        let mut depth: i64 = 0;
        loop {
            match &self.tok {
                Tok::Eof => return,
                Tok::LParen | Tok::LBrace | Tok::LBracket => depth += 1,
                Tok::RParen | Tok::RBrace | Tok::RBracket => depth -= 1,
                Tok::Percent(_) | Tok::Str(_) if depth <= 0 && self.line > from_line => return,
                _ => {}
            }
            self.advance_lenient(errors);
        }
    }

    fn advance(&mut self) -> Result<Tok> {
        let (tok, line, col) = self.lexer.next()?;
        self.line = line;
        self.col = col;
        Ok(std::mem::replace(&mut self.tok, tok))
    }

    fn expect(&mut self, want: Tok) -> Result<()> {
        if self.tok == want {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}, found {:?}", self.tok)))
        }
    }

    fn eat(&mut self, want: &Tok) -> Result<bool> {
        if &self.tok == want {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// op := (%N (, %N)* `=`)? "name" `(` uses `)` regions? attrs? `:` functype loc?
    fn parse_op(
        &mut self,
        module: &mut Module,
        values: &mut HashMap<usize, ValueId>,
    ) -> Result<OpId> {
        // Anchor for errors that are only detectable after the op text has
        // been consumed (undefined operands, broken nested regions).
        let (op_line, op_col) = (self.line, self.col);
        // Optional results.
        let mut result_ids = Vec::new();
        if let Tok::Percent(n) = self.tok {
            result_ids.push(n);
            self.advance()?;
            while self.eat(&Tok::Comma)? {
                match self.tok {
                    Tok::Percent(n) => {
                        result_ids.push(n);
                        self.advance()?;
                    }
                    _ => return Err(self.err("expected result value after ','")),
                }
            }
            self.expect(Tok::Eq)?;
        }

        let name = match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Str(s) => {
                self.advance()?;
                s
            }
            other => {
                self.tok = other;
                return Err(self.err("expected quoted op name"));
            }
        };

        // Operand uses.
        self.expect(Tok::LParen)?;
        let mut operand_ids = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                match self.tok {
                    Tok::Percent(n) => {
                        operand_ids.push(n);
                        self.advance()?;
                    }
                    _ => return Err(self.err("expected operand value")),
                }
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;

        // Regions are parsed into a deferred representation so that the op can
        // be created (with its result values) before block contents reference
        // outer values.
        let mut parsed_regions: Vec<Vec<ParsedBlock>> = Vec::new();
        if self.tok == Tok::LParen {
            self.advance()?;
            loop {
                parsed_regions.push(self.parse_region_tokens()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }

        // Attributes.
        let mut attrs = AttrMap::new();
        if self.tok == Tok::LBrace {
            self.advance()?;
            if self.tok != Tok::RBrace {
                loop {
                    let key = match std::mem::replace(&mut self.tok, Tok::Eof) {
                        Tok::Ident(s) => {
                            self.advance()?;
                            s
                        }
                        other => {
                            self.tok = other;
                            return Err(self.err("expected attribute name"));
                        }
                    };
                    self.expect(Tok::Eq)?;
                    let val = self.parse_attr()?;
                    attrs.insert(key, val);
                    if !self.eat(&Tok::Comma)? {
                        break;
                    }
                }
            }
            self.expect(Tok::RBrace)?;
        }

        // Function type.
        self.expect(Tok::Colon)?;
        self.expect(Tok::LParen)?;
        let mut operand_types = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                operand_types.push(self.parse_type()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Arrow)?;
        self.expect(Tok::LParen)?;
        let mut result_types = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                result_types.push(self.parse_type()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;

        // Optional location.
        let mut loc = Location::unknown();
        if self.tok == Tok::Ident("loc".into()) {
            self.advance()?;
            self.expect(Tok::LParen)?;
            let file = match std::mem::replace(&mut self.tok, Tok::Eof) {
                Tok::Str(s) => {
                    self.advance()?;
                    s
                }
                other => {
                    self.tok = other;
                    return Err(self.err("expected file string in loc"));
                }
            };
            self.expect(Tok::Colon)?;
            let line = self.parse_u32()?;
            self.expect(Tok::Colon)?;
            let col = self.parse_u32()?;
            self.expect(Tok::RParen)?;
            loc = Location::file_line_col(file, line, col);
        }

        if operand_ids.len() != operand_types.len() {
            return Err(self.err(format!(
                "op '{name}' has {} operands but {} operand types",
                operand_ids.len(),
                operand_types.len()
            )));
        }
        if result_ids.len() != result_types.len() {
            return Err(self.err(format!(
                "op '{name}' binds {} results but lists {} result types",
                result_ids.len(),
                result_types.len()
            )));
        }

        let operands: Vec<ValueId> = operand_ids
            .iter()
            .map(|n| {
                values.get(n).copied().ok_or_else(|| ParseError {
                    line: op_line,
                    col: op_col,
                    message: format!("use of undefined value %{n} in op '{name}'"),
                })
            })
            .collect::<Result<_>>()?;

        let op = module.create_op(name.as_str(), operands, result_types, attrs, loc);
        for (i, n) in result_ids.iter().enumerate() {
            values.insert(*n, module.op(op).results()[i]);
        }

        // Materialize regions.
        for blocks in parsed_regions {
            let region = module.add_region(op);
            for pb in blocks {
                let block =
                    module.add_block(region, pb.args.iter().map(|(_, t)| t.clone()).collect());
                for (i, (n, _)) in pb.args.iter().enumerate() {
                    values.insert(*n, module.block(block).args()[i]);
                }
                for src in pb.ops {
                    // Captured region text has its own (meaningless)
                    // coordinates; remap failures to the enclosing op so
                    // recovery and humans both see a real location.
                    let remap = |e: ParseError| ParseError {
                        line: op_line,
                        col: op_col,
                        message: format!("in region of '{name}': {}", e.message),
                    };
                    let mut sub = Parser::new(&src).map_err(remap)?;
                    let inner = sub.parse_op(module, values).map_err(remap)?;
                    module.append_op(block, inner);
                }
            }
        }
        Ok(op)
    }

    fn parse_u32(&mut self) -> Result<u32> {
        match self.tok {
            Tok::Int(v) if v >= 0 && v <= u32::MAX as i128 => {
                self.advance()?;
                Ok(v as u32)
            }
            _ => Err(self.err("expected integer")),
        }
    }

    /// Capture a region's blocks as re-parsable op strings. We re-lex op by op
    /// because ops must be created in the module *after* their parent op, but
    /// the grammar nests them inside. Each captured op is a balanced chunk of
    /// source text.
    fn parse_region_tokens(&mut self) -> Result<Vec<ParsedBlock>> {
        self.expect(Tok::LBrace)?;
        let mut blocks = Vec::new();
        let mut current = ParsedBlock::default();
        let mut started = false;
        loop {
            match &self.tok {
                Tok::RBrace => {
                    self.advance()?;
                    if started || !current.ops.is_empty() || !current.args.is_empty() {
                        blocks.push(current);
                    }
                    return Ok(blocks);
                }
                Tok::Caret => {
                    if started {
                        blocks.push(std::mem::take(&mut current));
                    }
                    started = true;
                    self.advance()?;
                    self.expect(Tok::LParen)?;
                    if self.tok != Tok::RParen {
                        loop {
                            let n = match self.tok {
                                Tok::Percent(n) => n,
                                _ => return Err(self.err("expected block argument")),
                            };
                            self.advance()?;
                            self.expect(Tok::Colon)?;
                            let t = self.parse_type()?;
                            current.args.push((n, t));
                            if !self.eat(&Tok::Comma)? {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    self.expect(Tok::Colon)?;
                }
                Tok::Eof => return Err(self.err("unterminated region")),
                _ => {
                    started = true;
                    current.ops.push(self.capture_op_text()?);
                }
            }
        }
    }

    /// Capture the source text of one op (including nested regions) starting
    /// at the current token, by scanning with balanced delimiters until the
    /// op's trailing function type (and optional loc) ends.
    fn capture_op_text(&mut self) -> Result<String> {
        let mut out = String::new();
        let mut depth = 0usize;
        // Phase 1: everything up to the ':' that starts the function type at
        // depth 0.
        loop {
            match &self.tok {
                Tok::Colon if depth == 0 => {
                    out.push_str(" :");
                    self.advance()?;
                    break;
                }
                Tok::Eof => return Err(self.err("unterminated operation")),
                t => {
                    if matches!(t, Tok::LParen | Tok::LBrace | Tok::LBracket | Tok::Lt) {
                        depth += 1;
                    }
                    if matches!(t, Tok::RParen | Tok::RBrace | Tok::RBracket | Tok::Gt) {
                        depth = depth
                            .checked_sub(1)
                            .ok_or_else(|| self.err("unbalanced delimiters"))?;
                    }
                    push_tok(&mut out, t);
                    self.advance()?;
                }
            }
        }
        // Phase 2: function type `(...) -> (...)`.
        for _ in 0..2 {
            self.capture_balanced_parens(&mut out)?;
            if self.tok == Tok::Arrow {
                out.push_str(" ->");
                self.advance()?;
            }
        }
        // Phase 3: optional `loc(...)`.
        if self.tok == Tok::Ident("loc".into()) {
            out.push_str(" loc");
            self.advance()?;
            self.capture_balanced_parens(&mut out)?;
        }
        Ok(out)
    }

    fn capture_balanced_parens(&mut self, out: &mut String) -> Result<()> {
        if self.tok != Tok::LParen {
            return Err(self.err(format!("expected '(' in op type, found {:?}", self.tok)));
        }
        let mut depth = 0usize;
        loop {
            match &self.tok {
                Tok::LParen => depth += 1,
                Tok::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        push_tok(out, &Tok::RParen);
                        self.advance()?;
                        return Ok(());
                    }
                }
                Tok::Eof => return Err(self.err("unbalanced parentheses")),
                _ => {}
            }
            push_tok(out, &self.tok.clone());
            self.advance()?;
        }
    }

    fn parse_attr(&mut self) -> Result<Attribute> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Ident(id) if id == "unit" => {
                self.advance()?;
                Ok(Attribute::Unit)
            }
            Tok::Ident(id) if id == "true" => {
                self.advance()?;
                Ok(Attribute::Bool(true))
            }
            Tok::Ident(id) if id == "false" => {
                self.advance()?;
                Ok(Attribute::Bool(false))
            }
            Tok::Int(v) => {
                self.advance()?;
                self.expect(Tok::Colon)?;
                let t = self.parse_type()?;
                Ok(Attribute::Int(v, t))
            }
            Tok::Float(v) => {
                self.advance()?;
                self.expect(Tok::Colon)?;
                let t = self.parse_type()?;
                Ok(Attribute::Float(v, t))
            }
            Tok::Str(s) => {
                self.advance()?;
                Ok(Attribute::String(s))
            }
            Tok::AtIdent(s) => {
                self.advance()?;
                Ok(Attribute::SymbolRef(s))
            }
            Tok::LBracket => {
                self.tok = Tok::LBracket;
                self.advance()?;
                let mut elems = Vec::new();
                if self.tok != Tok::RBracket {
                    loop {
                        elems.push(self.parse_attr()?);
                        if !self.eat(&Tok::Comma)? {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Attribute::Array(elems))
            }
            Tok::LBrace => {
                self.tok = Tok::LBrace;
                self.advance()?;
                let mut dict = BTreeMap::new();
                if self.tok != Tok::RBrace {
                    loop {
                        let key = match std::mem::replace(&mut self.tok, Tok::Eof) {
                            Tok::Ident(s) => {
                                self.advance()?;
                                s
                            }
                            other => {
                                self.tok = other;
                                return Err(self.err("expected dict key"));
                            }
                        };
                        self.expect(Tok::Eq)?;
                        dict.insert(key, self.parse_attr()?);
                        if !self.eat(&Tok::Comma)? {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Attribute::Dict(dict))
            }
            other => {
                self.tok = other;
                let t = self.parse_type()?;
                Ok(Attribute::Type(t))
            }
        }
    }

    fn parse_type(&mut self) -> Result<Type> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Ident(id) => {
                self.advance()?;
                parse_scalar_type_name(&id)
                    .ok_or_else(|| self.err(format!("unknown type '{id}'")))
                    .and_then(|t| {
                        if let Some(t) = t {
                            return Ok(t);
                        }
                        // tuple<...>
                        if id == "tuple" {
                            self.expect(Tok::Lt)?;
                            let mut elems = Vec::new();
                            if self.tok != Tok::Gt {
                                loop {
                                    elems.push(self.parse_type()?);
                                    if !self.eat(&Tok::Comma)? {
                                        break;
                                    }
                                }
                            }
                            self.expect(Tok::Gt)?;
                            Ok(Type::tuple(elems))
                        } else {
                            Err(self.err(format!("unknown type '{id}'")))
                        }
                    })
            }
            Tok::BangIdent(full) => {
                self.advance()?;
                let (dialect, mnemonic) = full
                    .split_once('.')
                    .ok_or_else(|| self.err(format!("malformed dialect type !{full}")))?;
                let (dialect, mnemonic) = (dialect.to_string(), mnemonic.to_string());
                let mut params = Vec::new();
                if self.tok == Tok::Lt {
                    self.advance()?;
                    if self.tok != Tok::Gt {
                        loop {
                            params.push(self.parse_attr()?);
                            if !self.eat(&Tok::Comma)? {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::Gt)?;
                }
                Ok(Type::dialect(dialect, mnemonic, params))
            }
            Tok::LParen => {
                self.tok = Tok::LParen;
                self.advance()?;
                let mut inputs = Vec::new();
                if self.tok != Tok::RParen {
                    loop {
                        inputs.push(self.parse_type()?);
                        if !self.eat(&Tok::Comma)? {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                self.expect(Tok::Arrow)?;
                self.expect(Tok::LParen)?;
                let mut results = Vec::new();
                if self.tok != Tok::RParen {
                    loop {
                        results.push(self.parse_type()?);
                        if !self.eat(&Tok::Comma)? {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(Type::function(inputs, results))
            }
            other => {
                self.tok = other;
                Err(self.err(format!("expected type, found {:?}", self.tok)))
            }
        }
    }
}

/// `Ok(Some(t))` for scalar names, `Ok(None)` for names needing more parsing.
fn parse_scalar_type_name(id: &str) -> Option<Option<Type>> {
    match id {
        "index" => return Some(Some(Type::index())),
        "none" => return Some(Some(Type::none())),
        "f32" => return Some(Some(Type::f32())),
        "f64" => return Some(Some(Type::f64())),
        "tuple" => return Some(None),
        _ => {}
    }
    for (prefix, mk) in [
        ("si", Type::signed_int as fn(u32) -> Type),
        ("ui", Type::unsigned_int as fn(u32) -> Type),
        ("i", Type::int as fn(u32) -> Type),
    ] {
        if let Some(rest) = id.strip_prefix(prefix) {
            if let Ok(width) = rest.parse::<u32>() {
                if width > 0 {
                    return Some(Some(mk(width)));
                }
            }
        }
    }
    None
}

#[derive(Default)]
struct ParsedBlock {
    args: Vec<(usize, Type)>,
    ops: Vec<String>,
}

fn push_tok(out: &mut String, t: &Tok) {
    use std::fmt::Write;
    out.push(' ');
    match t {
        Tok::Percent(n) => {
            let _ = write!(out, "%{n}");
        }
        Tok::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Tok::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Tok::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Tok::Ident(s) => out.push_str(s),
        Tok::BangIdent(s) => {
            let _ = write!(out, "!{s}");
        }
        Tok::AtIdent(s) => {
            let _ = write!(out, "@{s}");
        }
        Tok::Caret => out.push('^'),
        Tok::LParen => out.push('('),
        Tok::RParen => out.push(')'),
        Tok::LBrace => out.push('{'),
        Tok::RBrace => out.push('}'),
        Tok::LBracket => out.push('['),
        Tok::RBracket => out.push(']'),
        Tok::Lt => out.push('<'),
        Tok::Gt => out.push('>'),
        Tok::Colon => out.push(':'),
        Tok::Comma => out.push(','),
        Tok::Eq => out.push('='),
        Tok::Arrow => out.push_str("->"),
        Tok::Eof => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    #[test]
    fn parse_flat_op() {
        let m = parse_module("%0 = \"hir.constant\"() {value = 16 : index} : () -> (index)\n")
            .expect("parse");
        assert_eq!(m.top_ops().len(), 1);
        let op = m.top_ops()[0];
        assert_eq!(m.op(op).name().as_str(), "hir.constant");
        assert_eq!(m.op(op).attr("value"), Some(&Attribute::index(16)));
    }

    #[test]
    fn roundtrip_nested() {
        let src = r#"
%0 = "hir.constant"() {value = 0 : index} : () -> (index)
"t.func"(%0) ({
^bb(%1: i32, %2: !hir.time):
  %3 = "t.add"(%1, %1) : (i32, i32) -> (i32)
  "t.yield"(%2) : (!hir.time) -> ()
}) {sym_name = "main"} : (index) -> ()
"#;
        let m = parse_module(src).expect("parse");
        let printed = print_module(&m);
        let m2 = parse_module(&printed).expect("reparse");
        assert_eq!(printed, print_module(&m2), "round-trip must be a fixpoint");
        assert!(printed.contains("!hir.time"));
    }

    #[test]
    fn parse_dialect_type_params() {
        let src = r#"%0 = "x.a"() : () -> (!hir.memref<[16 : index, 16 : index], i32, "r">)"#;
        let m = parse_module(src).expect("parse");
        let v = m.op(m.top_ops()[0]).results()[0];
        let t = m.value_type(v);
        assert!(t.is_dialect("hir", "memref"));
        assert_eq!(t.dialect_params().unwrap().len(), 3);
    }

    #[test]
    fn undefined_value_is_error() {
        let err = parse_module("\"x.a\"(%7) : (i32) -> ()").unwrap_err();
        assert!(err.message.contains("undefined value %7"), "{err}");
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let src = "// header comment\n%0 = \"x.c\"() : () -> (i1) // trailing\n";
        let m = parse_module(src).expect("parse");
        assert_eq!(m.top_ops().len(), 1);
    }

    #[test]
    fn parse_location() {
        let src = "\"x.c\"() : () -> () loc(\"k.mlir\":3:9)";
        let m = parse_module(src).expect("parse");
        assert_eq!(
            m.op(m.top_ops()[0]).loc().file_line(),
            Some(("k.mlir", 3, 9))
        );
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_module("\n  $bad").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
    }

    #[test]
    fn recovery_reports_every_error() {
        // Three distinct broken ops plus one good one.
        let src = r#"%0 = "x.c"() : () -> (i32)
%1 = bad_unquoted_name() : () -> (i32)
"x.u"(%9) : (i32) -> ()
%2 = "x.c"() : () -> (badtype)
"x.d"(%0) : (i32) -> ()
"#;
        let r = parse_module_recover(src, 0);
        assert_eq!(r.errors.len(), 3, "{:?}", r.errors);
        assert!(!r.hit_error_limit);
        // Errors arrive in source order with positions on the right lines.
        assert_eq!(r.errors[0].line, 2);
        assert!(r.errors[0].message.contains("expected quoted op name"));
        assert_eq!(r.errors[1].line, 3);
        assert!(r.errors[1].message.contains("undefined value %9"));
        assert_eq!(r.errors[2].line, 4);
        // The good ops still parsed.
        assert_eq!(r.module.top_ops().len(), 2);
    }

    #[test]
    fn recovery_strict_agreement_on_valid_input() {
        let src = "%0 = \"x.c\"() : () -> (i1)\n\"x.u\"(%0) : (i1) -> ()\n";
        let r = parse_module_recover(src, 0);
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert_eq!(
            print_module(&r.module),
            print_module(&parse_module(src).unwrap())
        );
    }

    #[test]
    fn recovery_honors_error_limit() {
        let mut src = String::new();
        for _ in 0..10 {
            src.push_str("%0 = broken() : () -> (i32)\n");
        }
        let r = parse_module_recover(&src, 3);
        assert_eq!(r.errors.len(), 3);
        assert!(r.hit_error_limit);
    }

    #[test]
    fn recovery_survives_lexer_garbage() {
        let src = "$$$ ### ???\n%0 = \"x.c\"() : () -> (i1)\n";
        let r = parse_module_recover(src, 0);
        assert!(!r.errors.is_empty());
        assert_eq!(r.module.top_ops().len(), 1, "{:?}", r.errors);
    }

    #[test]
    fn recovery_skips_broken_nested_region_as_one_unit() {
        // The error is inside a region: recovery resumes at the next
        // top-level op, not inside the broken one.
        let src = r#""t.func"() ({
  %1 = "t.add"(%77, %77) : (i32, i32) -> (i32)
}) : () -> ()
%5 = "x.c"() : () -> (i1)
"#;
        let r = parse_module_recover(src, 0);
        assert_eq!(r.errors.len(), 1, "{:?}", r.errors);
        assert!(r.errors[0].message.contains("undefined value %77"));
        assert_eq!(r.module.top_ops().len(), 1);
    }
}
