//! Source locations, mirroring MLIR's location tracking (§5.5 of the paper:
//! HIR uses location info to map generated Verilog back to IR constructs).

use std::fmt;
use std::sync::Arc;

/// A source location attached to every operation.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub enum Location {
    /// Unknown provenance.
    #[default]
    Unknown,
    /// `file:line:col`.
    FileLineCol { file: Arc<str>, line: u32, col: u32 },
    /// A named location wrapping another (e.g. `loc("fused")`).
    Name {
        name: Arc<str>,
        child: Arc<Location>,
    },
}

impl Location {
    /// An unknown location.
    pub fn unknown() -> Self {
        Location::Unknown
    }

    /// A `file:line:col` location.
    pub fn file_line_col(file: impl Into<Arc<str>>, line: u32, col: u32) -> Self {
        Location::FileLineCol {
            file: file.into(),
            line,
            col,
        }
    }

    /// Wrap a location with a name.
    pub fn named(name: impl Into<Arc<str>>, child: Location) -> Self {
        Location::Name {
            name: name.into(),
            child: Arc::new(child),
        }
    }

    /// The innermost file/line/col, if any.
    pub fn file_line(&self) -> Option<(&str, u32, u32)> {
        match self {
            Location::Unknown => None,
            Location::FileLineCol { file, line, col } => Some((file, *line, *col)),
            Location::Name { child, .. } => child.file_line(),
        }
    }

    /// Whether any concrete source position is known.
    pub fn is_known(&self) -> bool {
        self.file_line().is_some()
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Unknown => write!(f, "loc(unknown)"),
            Location::FileLineCol { file, line, col } => write!(f, "{file}:{line}:{col}"),
            Location::Name { name, child } => write!(f, "{name}@{child}"),
        }
    }
}

impl fmt::Debug for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_line_lookup_through_names() {
        let base = Location::file_line_col("k.mlir", 13, 5);
        let named = Location::named("mem_write", base.clone());
        assert_eq!(named.file_line(), Some(("k.mlir", 13, 5)));
        assert!(named.is_known());
        assert!(!Location::unknown().is_known());
    }

    #[test]
    fn display() {
        assert_eq!(
            Location::file_line_col("a.mlir", 2, 7).to_string(),
            "a.mlir:2:7"
        );
        assert_eq!(Location::unknown().to_string(), "loc(unknown)");
    }
}
