//! Diagnostic engine.
//!
//! Reproduces the reporting style of the paper's Figures 1b and 2b: a primary
//! `error:` with a location and message, followed by attached `note:` lines
//! (e.g. "Prior definition here.") each with their own location and an
//! optional source snippet (the pretty-printed operation).

use crate::location::Location;
use std::collections::HashMap;
use std::fmt;

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    Note,
    Remark,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Remark => write!(f, "remark"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A secondary note attached to a diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Note {
    pub loc: Location,
    pub message: String,
    /// Pretty-printed IR (or source line) shown beneath the note.
    pub snippet: Option<String>,
}

/// A single diagnostic: severity, location, message, notes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub loc: Location,
    pub message: String,
    pub snippet: Option<String>,
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// Create an error diagnostic.
    pub fn error(loc: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            loc,
            message: message.into(),
            snippet: None,
            notes: Vec::new(),
        }
    }

    /// Create a warning diagnostic.
    pub fn warning(loc: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(loc, message)
        }
    }

    /// Create an optimization-remark diagnostic ([`Severity::Remark`]).
    /// Remarks are opt-in: drivers only surface them behind an explicit
    /// filter (`hirc --rpass=REGEX`), never in default output.
    pub fn remark(loc: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Remark,
            ..Diagnostic::error(loc, message)
        }
    }

    /// Attach the offending IR snippet.
    pub fn with_snippet(mut self, snippet: impl Into<String>) -> Self {
        self.snippet = Some(snippet.into());
        self
    }

    /// Attach a note ("Prior definition here.") at another location.
    pub fn with_note(mut self, loc: Location, message: impl Into<String>) -> Self {
        self.notes.push(Note {
            loc,
            message: message.into(),
            snippet: None,
        });
        self
    }

    /// Attach a note with an IR snippet.
    pub fn with_note_snippet(
        mut self,
        loc: Location,
        message: impl Into<String>,
        snippet: impl Into<String>,
    ) -> Self {
        self.notes.push(Note {
            loc,
            message: message.into(),
            snippet: Some(snippet.into()),
        });
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}:", self.loc, self.severity)?;
        writeln!(f, "{}", self.message)?;
        if let Some(s) = &self.snippet {
            for line in s.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        for note in &self.notes {
            writeln!(f)?;
            writeln!(f, "{}: note: {}", note.loc, note.message)?;
            if let Some(s) = &note.snippet {
                for line in s.lines() {
                    writeln!(f, "  {line}")?;
                }
            }
        }
        Ok(())
    }
}

/// Collects diagnostics emitted by verifiers and passes.
#[derive(Debug, Default)]
pub struct DiagnosticEngine {
    diags: Vec<Diagnostic>,
}

impl DiagnosticEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a diagnostic.
    pub fn emit(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Convenience: record an error at `loc`.
    pub fn error(&mut self, loc: Location, message: impl Into<String>) {
        self.emit(Diagnostic::error(loc, message));
    }

    /// All diagnostics in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of errors recorded.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether any errors were recorded.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Render every diagnostic to a single string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&d.to_string());
        }
        out
    }

    /// Drain diagnostics, leaving the engine empty.
    pub fn take(&mut self) -> Vec<Diagnostic> {
        std::mem::take(&mut self.diags)
    }
}

/// Maps file names to source text so diagnostics can show real source lines.
#[derive(Debug, Default)]
pub struct SourceManager {
    files: HashMap<String, String>,
}

impl SourceManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a file's contents.
    pub fn add_file(&mut self, name: impl Into<String>, contents: impl Into<String>) {
        self.files.insert(name.into(), contents.into());
    }

    /// Look up a 1-based line of a registered file.
    pub fn line(&self, file: &str, line: u32) -> Option<&str> {
        self.files
            .get(file)?
            .lines()
            .nth(line.saturating_sub(1) as usize)
    }

    /// Fill in missing snippets of a diagnostic from registered sources.
    pub fn attach_snippets(&self, diag: &mut Diagnostic) {
        if diag.snippet.is_none() {
            if let Some((file, line, _)) = diag.loc.file_line() {
                diag.snippet = self.line(file, line).map(str::to_owned);
            }
        }
        for note in &mut diag.notes {
            if note.snippet.is_none() {
                if let Some((file, line, _)) = note.loc.file_line() {
                    note.snippet = self.line(file, line).map(str::to_owned);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_like_figure_1b() {
        let d = Diagnostic::error(
            Location::file_line_col("test/HIR/err_add.mlir", 13, 5),
            "Schedule error: mismatched delay (0 vs 1) in address 0!",
        )
        .with_snippet("hir.mem_write %c to %C[%i] at %ti offset %1")
        .with_note_snippet(
            Location::file_line_col("test/HIR/err_add.mlir", 8, 3),
            "Prior definition here.",
            "hir.for %i : i8 = %0 to %128 step %1 iter_time(%ti = %t offset %1)",
        );
        let text = d.to_string();
        assert!(text.starts_with("test/HIR/err_add.mlir:13:5: error:\n"));
        assert!(text.contains("mismatched delay (0 vs 1)"));
        assert!(text.contains("test/HIR/err_add.mlir:8:3: note: Prior definition here."));
    }

    #[test]
    fn remark_renders_with_remark_severity_and_is_not_an_error() {
        let d = Diagnostic::remark(
            Location::file_line_col("k.mlir", 3, 7),
            "[hir-cse] merged duplicate hir.add",
        );
        assert_eq!(d.severity, Severity::Remark);
        assert!(d.to_string().starts_with("k.mlir:3:7: remark:\n"));
        let mut eng = DiagnosticEngine::new();
        eng.emit(d);
        assert!(!eng.has_errors());
    }

    #[test]
    fn engine_counts_errors() {
        let mut eng = DiagnosticEngine::new();
        assert!(!eng.has_errors());
        eng.emit(Diagnostic::warning(Location::unknown(), "w"));
        assert!(!eng.has_errors());
        eng.error(Location::unknown(), "e");
        assert!(eng.has_errors());
        assert_eq!(eng.error_count(), 1);
        assert_eq!(eng.diagnostics().len(), 2);
    }

    #[test]
    fn source_manager_lines() {
        let mut sm = SourceManager::new();
        sm.add_file("a.mlir", "line one\nline two\nline three");
        assert_eq!(sm.line("a.mlir", 2), Some("line two"));
        assert_eq!(sm.line("a.mlir", 9), None);
        assert_eq!(sm.line("missing", 1), None);

        let mut d = Diagnostic::error(Location::file_line_col("a.mlir", 3, 1), "x");
        sm.attach_snippets(&mut d);
        assert_eq!(d.snippet.as_deref(), Some("line three"));
    }
}
