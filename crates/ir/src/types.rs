//! The IR type system.
//!
//! Mirrors MLIR's design: a small set of builtin types plus an open-ended
//! *dialect type* escape hatch. A dialect type carries its dialect name, a
//! mnemonic, and a list of [`Attribute`] parameters; dialects (such as HIR)
//! layer typed accessors on top.
//!
//! [`Type`] is a cheap handle (`Arc` internally) with structural equality, so
//! it can be cloned freely and used as a map key.

use crate::attributes::Attribute;
use std::fmt;
use std::sync::Arc;

/// Signedness of an integer type.
///
/// HIR follows MLIR's `arith` convention: most integers are signless and the
/// operation decides the interpretation, but the frontend may mark types
/// explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Signedness {
    /// Interpretation chosen by the consuming operation (MLIR `iN`).
    Signless,
    /// Two's complement signed (`siN`).
    Signed,
    /// Unsigned (`uiN`).
    Unsigned,
}

/// Floating point format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FloatKind {
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64.
    F64,
}

impl FloatKind {
    /// Bit width of the format.
    pub fn width(self) -> u32 {
        match self {
            FloatKind::F32 => 32,
            FloatKind::F64 => 64,
        }
    }
}

/// Structural payload of a [`Type`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// Arbitrary bit-width integer, e.g. `i32`, `i1`.
    Integer { width: u32, signedness: Signedness },
    /// IEEE float, `f32` or `f64`.
    Float(FloatKind),
    /// Platform-independent index type (loop bounds, constants).
    Index,
    /// Absence of a value (used for ops with no results in function types).
    None,
    /// Function type `(inputs) -> (results)`.
    Function {
        inputs: Vec<Type>,
        results: Vec<Type>,
    },
    /// Tuple of types.
    Tuple(Vec<Type>),
    /// A dialect-defined type: `!dialect.mnemonic<params>`.
    Dialect {
        dialect: String,
        mnemonic: String,
        params: Vec<Attribute>,
    },
}

/// A handle to a type. Cheap to clone; equality is structural.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Type(Arc<TypeKind>);

impl Type {
    /// Create a type from a raw [`TypeKind`].
    pub fn from_kind(kind: TypeKind) -> Self {
        Type(Arc::new(kind))
    }

    /// Signless integer of the given width.
    ///
    /// # Panics
    /// Panics if `width` is zero.
    pub fn int(width: u32) -> Self {
        assert!(width > 0, "integer types must have a positive width");
        Type::from_kind(TypeKind::Integer {
            width,
            signedness: Signedness::Signless,
        })
    }

    /// Signed integer of the given width (`siN`).
    pub fn signed_int(width: u32) -> Self {
        assert!(width > 0, "integer types must have a positive width");
        Type::from_kind(TypeKind::Integer {
            width,
            signedness: Signedness::Signed,
        })
    }

    /// Unsigned integer of the given width (`uiN`).
    pub fn unsigned_int(width: u32) -> Self {
        assert!(width > 0, "integer types must have a positive width");
        Type::from_kind(TypeKind::Integer {
            width,
            signedness: Signedness::Unsigned,
        })
    }

    /// The 1-bit integer (`i1`), used for booleans and enables.
    pub fn i1() -> Self {
        Type::int(1)
    }

    /// IEEE binary32.
    pub fn f32() -> Self {
        Type::from_kind(TypeKind::Float(FloatKind::F32))
    }

    /// IEEE binary64.
    pub fn f64() -> Self {
        Type::from_kind(TypeKind::Float(FloatKind::F64))
    }

    /// The index type.
    pub fn index() -> Self {
        Type::from_kind(TypeKind::Index)
    }

    /// The none type.
    pub fn none() -> Self {
        Type::from_kind(TypeKind::None)
    }

    /// A function type.
    pub fn function(inputs: Vec<Type>, results: Vec<Type>) -> Self {
        Type::from_kind(TypeKind::Function { inputs, results })
    }

    /// A tuple type.
    pub fn tuple(elems: Vec<Type>) -> Self {
        Type::from_kind(TypeKind::Tuple(elems))
    }

    /// A dialect type `!dialect.mnemonic<params>`.
    pub fn dialect(
        dialect: impl Into<String>,
        mnemonic: impl Into<String>,
        params: Vec<Attribute>,
    ) -> Self {
        Type::from_kind(TypeKind::Dialect {
            dialect: dialect.into(),
            mnemonic: mnemonic.into(),
            params,
        })
    }

    /// Borrow the structural payload.
    pub fn kind(&self) -> &TypeKind {
        &self.0
    }

    /// Integer width if this is an integer type.
    pub fn int_width(&self) -> Option<u32> {
        match self.kind() {
            TypeKind::Integer { width, .. } => Some(*width),
            _ => None,
        }
    }

    /// Whether this is any integer type.
    pub fn is_integer(&self) -> bool {
        matches!(self.kind(), TypeKind::Integer { .. })
    }

    /// Whether this is a float type.
    pub fn is_float(&self) -> bool {
        matches!(self.kind(), TypeKind::Float(_))
    }

    /// Whether this is the index type.
    pub fn is_index(&self) -> bool {
        matches!(self.kind(), TypeKind::Index)
    }

    /// Whether this is a dialect type with the given dialect and mnemonic.
    pub fn is_dialect(&self, dialect: &str, mnemonic: &str) -> bool {
        matches!(self.kind(), TypeKind::Dialect { dialect: d, mnemonic: m, .. }
                 if d == dialect && m == mnemonic)
    }

    /// Dialect type parameters, if this is a dialect type.
    pub fn dialect_params(&self) -> Option<&[Attribute]> {
        match self.kind() {
            TypeKind::Dialect { params, .. } => Some(params),
            _ => None,
        }
    }

    /// Total bit width of the type if it is a fixed-width scalar.
    pub fn bit_width(&self) -> Option<u32> {
        match self.kind() {
            TypeKind::Integer { width, .. } => Some(*width),
            TypeKind::Float(k) => Some(k.width()),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            TypeKind::Integer { width, signedness } => {
                let prefix = match signedness {
                    Signedness::Signless => "i",
                    Signedness::Signed => "si",
                    Signedness::Unsigned => "ui",
                };
                write!(f, "{prefix}{width}")
            }
            TypeKind::Float(FloatKind::F32) => write!(f, "f32"),
            TypeKind::Float(FloatKind::F64) => write!(f, "f64"),
            TypeKind::Index => write!(f, "index"),
            TypeKind::None => write!(f, "none"),
            TypeKind::Function { inputs, results } => {
                write!(f, "(")?;
                for (i, t) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ") -> (")?;
                for (i, t) in results.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            TypeKind::Tuple(elems) => {
                write!(f, "tuple<")?;
                for (i, t) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ">")
            }
            TypeKind::Dialect {
                dialect,
                mnemonic,
                params,
            } => {
                write!(f, "!{dialect}.{mnemonic}")?;
                if !params.is_empty() {
                    write!(f, "<")?;
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ">")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_equality() {
        assert_eq!(Type::int(32), Type::int(32));
        assert_ne!(Type::int(32), Type::int(16));
        assert_ne!(Type::int(32), Type::signed_int(32));
        assert_ne!(Type::f32(), Type::f64());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::int(1).to_string(), "i1");
        assert_eq!(Type::signed_int(8).to_string(), "si8");
        assert_eq!(Type::unsigned_int(7).to_string(), "ui7");
        assert_eq!(Type::f32().to_string(), "f32");
        assert_eq!(Type::index().to_string(), "index");
        assert_eq!(
            Type::function(vec![Type::int(32)], vec![Type::int(32)]).to_string(),
            "(i32) -> (i32)"
        );
    }

    #[test]
    fn dialect_type_display() {
        let t = Type::dialect("hir", "time", vec![]);
        assert_eq!(t.to_string(), "!hir.time");
        assert!(t.is_dialect("hir", "time"));
        assert!(!t.is_dialect("hir", "const"));
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_width_int_rejected() {
        let _ = Type::int(0);
    }

    #[test]
    fn bit_widths() {
        assert_eq!(Type::int(17).bit_width(), Some(17));
        assert_eq!(Type::f64().bit_width(), Some(64));
        assert_eq!(Type::index().bit_width(), None);
    }
}
