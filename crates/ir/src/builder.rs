//! Insertion-point builder for constructing IR, in the style of MLIR's
//! `OpBuilder`.

use crate::attributes::{AttrMap, Attribute};
use crate::location::Location;
use crate::module::{BlockId, Module, OpId, OpName, RegionId, ValueId};
use crate::types::Type;

/// Where newly built ops are inserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertPoint {
    /// Append to module top level.
    TopLevel,
    /// Append to the end of a block.
    BlockEnd(BlockId),
    /// Insert before an existing op.
    Before(OpId),
}

/// A builder holding a mutable module and an insertion point.
///
/// # Examples
///
/// ```
/// use ir::{Module, Builder, Type, Attribute, Location};
///
/// let mut m = Module::new();
/// let mut b = Builder::new(&mut m);
/// let c = b.op("x.const")
///     .attr("value", Attribute::index(4))
///     .result(Type::index())
///     .build();
/// assert_eq!(b.module().op(c).attr("value"), Some(&Attribute::index(4)));
/// ```
#[derive(Debug)]
pub struct Builder<'m> {
    module: &'m mut Module,
    point: InsertPoint,
    loc: Location,
}

impl<'m> Builder<'m> {
    /// Builder inserting at module top level with unknown locations.
    pub fn new(module: &'m mut Module) -> Self {
        Builder {
            module,
            point: InsertPoint::TopLevel,
            loc: Location::Unknown,
        }
    }

    /// Access the underlying module.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    /// Read-only access to the underlying module.
    pub fn module_ref(&self) -> &Module {
        self.module
    }

    /// Current insertion point.
    pub fn insert_point(&self) -> InsertPoint {
        self.point
    }

    /// Move the insertion point.
    pub fn set_insert_point(&mut self, point: InsertPoint) {
        self.point = point;
    }

    /// Insert at the end of `block`.
    pub fn at_block_end(&mut self, block: BlockId) -> &mut Self {
        self.point = InsertPoint::BlockEnd(block);
        self
    }

    /// Set the location applied to subsequently built ops.
    pub fn set_loc(&mut self, loc: Location) {
        self.loc = loc;
    }

    /// The location applied to subsequently built ops.
    pub fn loc(&self) -> &Location {
        &self.loc
    }

    /// Start building an operation with the given name.
    pub fn op(&mut self, name: impl Into<OpName>) -> OpBuilder<'_, 'm> {
        let loc = self.loc.clone();
        OpBuilder {
            builder: self,
            name: name.into(),
            operands: Vec::new(),
            result_types: Vec::new(),
            attrs: AttrMap::new(),
            regions: 0,
            loc,
        }
    }

    /// Add an empty region + entry block with the given arg types to `op`.
    /// Returns `(region, entry_block)`.
    pub fn region_with_entry(&mut self, op: OpId, arg_types: Vec<Type>) -> (RegionId, BlockId) {
        let r = self.module.add_region(op);
        let b = self.module.add_block(r, arg_types);
        (r, b)
    }
}

/// Fluent single-operation builder; created by [`Builder::op`].
#[derive(Debug)]
pub struct OpBuilder<'b, 'm> {
    builder: &'b mut Builder<'m>,
    name: OpName,
    operands: Vec<ValueId>,
    result_types: Vec<Type>,
    attrs: AttrMap,
    regions: usize,
    loc: Location,
}

impl OpBuilder<'_, '_> {
    /// Append one operand.
    pub fn operand(mut self, v: ValueId) -> Self {
        self.operands.push(v);
        self
    }

    /// Append several operands.
    pub fn operands(mut self, vs: impl IntoIterator<Item = ValueId>) -> Self {
        self.operands.extend(vs);
        self
    }

    /// Append one result type.
    pub fn result(mut self, ty: Type) -> Self {
        self.result_types.push(ty);
        self
    }

    /// Append several result types.
    pub fn results(mut self, tys: impl IntoIterator<Item = Type>) -> Self {
        self.result_types.extend(tys);
        self
    }

    /// Set a named attribute.
    pub fn attr(mut self, key: impl Into<String>, value: Attribute) -> Self {
        self.attrs.insert(key.into(), value);
        self
    }

    /// Request `n` empty regions (no blocks) on the built op.
    pub fn regions(mut self, n: usize) -> Self {
        self.regions = n;
        self
    }

    /// Override the builder's current location for this op.
    pub fn loc(mut self, loc: Location) -> Self {
        self.loc = loc;
        self
    }

    /// Create the op and insert it at the builder's insertion point.
    pub fn build(self) -> OpId {
        let m = &mut *self.builder.module;
        let op = m.create_op(
            self.name,
            self.operands,
            self.result_types,
            self.attrs,
            self.loc,
        );
        for _ in 0..self.regions {
            m.add_region(op);
        }
        match self.builder.point {
            InsertPoint::TopLevel => m.push_top(op),
            InsertPoint::BlockEnd(b) => m.append_op(b, op),
            InsertPoint::Before(anchor) => m.insert_op_before(anchor, op),
        }
        op
    }

    /// Create the op detached (not inserted anywhere).
    pub fn build_detached(self) -> OpId {
        let m = &mut *self.builder.module;
        let op = m.create_op(
            self.name,
            self.operands,
            self.result_types,
            self.attrs,
            self.loc,
        );
        for _ in 0..self.regions {
            m.add_region(op);
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_into_blocks() {
        let mut m = Module::new();
        let mut b = Builder::new(&mut m);
        let f = b.op("t.func").build();
        let (_, entry) = b.region_with_entry(f, vec![Type::int(32)]);
        b.at_block_end(entry);
        let c = b.op("t.const").result(Type::int(32)).build();
        let v = b.module().op(c).results()[0];
        let add = b
            .op("t.add")
            .operand(v)
            .operand(v)
            .result(Type::int(32))
            .build();
        assert_eq!(m.block(entry).ops().len(), 2);
        assert_eq!(m.op(add).operands().len(), 2);
    }

    #[test]
    fn insert_before_anchor() {
        let mut m = Module::new();
        let mut b = Builder::new(&mut m);
        let f = b.op("t.func").build();
        let (_, entry) = b.region_with_entry(f, vec![]);
        b.at_block_end(entry);
        let last = b.op("t.last").build();
        b.set_insert_point(InsertPoint::Before(last));
        let first = b.op("t.first").build();
        assert_eq!(m.block(entry).ops(), &[first, last]);
    }

    #[test]
    fn location_propagates() {
        let mut m = Module::new();
        let mut b = Builder::new(&mut m);
        b.set_loc(Location::file_line_col("x.mlir", 4, 2));
        let op = b.op("t.zed").build();
        assert_eq!(m.op(op).loc().file_line(), Some(("x.mlir", 4, 2)));
    }
}
