//! Pass infrastructure: a [`Pass`] trait, a [`PassManager`] with timing
//! statistics, and [`PassResult`] bookkeeping.
//!
//! Timing statistics feed the paper's Table 6 experiment (HIR code
//! generation time vs. the HLS baseline).

use crate::diagnostics::DiagnosticEngine;
use crate::dialect::DialectRegistry;
use crate::module::Module;
use std::fmt;
use std::time::{Duration, Instant};

/// Outcome of one pass run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassResult {
    /// Pass ran and left the module unchanged.
    Unchanged,
    /// Pass ran and modified the module.
    Changed,
    /// Pass found errors (reported through the diagnostic engine).
    Failed,
}

/// Everything a pass may touch.
pub struct PassContext<'a> {
    pub registry: &'a DialectRegistry,
    pub diags: &'a mut DiagnosticEngine,
}

/// A module-level transformation or analysis.
pub trait Pass {
    /// Stable pass name (shown in statistics).
    fn name(&self) -> &str;

    /// Run on the module.
    fn run(&mut self, module: &mut Module, cx: &mut PassContext<'_>) -> PassResult;
}

/// Timing record for one executed pass.
#[derive(Clone, Debug)]
pub struct PassTiming {
    pub name: String,
    pub duration: Duration,
    pub result: PassResult,
}

/// Runs a pipeline of passes in order, recording per-pass wall time.
///
/// # Examples
///
/// ```
/// use ir::{Module, PassManager, Pass, PassResult, PassContext, DialectRegistry, DiagnosticEngine};
///
/// struct Nop;
/// impl Pass for Nop {
///     fn name(&self) -> &str { "nop" }
///     fn run(&mut self, _m: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
///         PassResult::Unchanged
///     }
/// }
///
/// let mut pm = PassManager::new();
/// pm.add(Nop);
/// let mut m = Module::new();
/// let reg = DialectRegistry::new();
/// let mut diags = DiagnosticEngine::new();
/// assert!(pm.run(&mut m, &reg, &mut diags).is_ok());
/// assert_eq!(pm.timings().len(), 1);
/// ```
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    timings: Vec<PassTiming>,
    /// Stop at the first failing pass (default true).
    pub abort_on_failure: bool,
}

impl PassManager {
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            timings: Vec::new(),
            abort_on_failure: true,
        }
    }

    /// Append a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Run all passes in order.
    ///
    /// # Errors
    /// Returns `Err(pass_name)` naming the first failed pass.
    pub fn run(
        &mut self,
        module: &mut Module,
        registry: &DialectRegistry,
        diags: &mut DiagnosticEngine,
    ) -> Result<(), String> {
        self.timings.clear();
        for pass in &mut self.passes {
            let start = Instant::now();
            let result = {
                let mut cx = PassContext { registry, diags };
                pass.run(module, &mut cx)
            };
            self.timings.push(PassTiming {
                name: pass.name().to_string(),
                duration: start.elapsed(),
                result,
            });
            if result == PassResult::Failed && self.abort_on_failure {
                return Err(pass.name().to_string());
            }
        }
        Ok(())
    }

    /// Per-pass timings of the last `run`.
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Total wall time of the last `run`.
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self
                    .passes
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("timings", &self.timings)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttrMap;
    use crate::location::Location;

    struct Adder;
    impl Pass for Adder {
        fn name(&self) -> &str {
            "adder"
        }
        fn run(&mut self, m: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
            let op = m.create_op("t.x", vec![], vec![], AttrMap::new(), Location::unknown());
            m.push_top(op);
            PassResult::Changed
        }
    }

    struct Failer;
    impl Pass for Failer {
        fn name(&self) -> &str {
            "failer"
        }
        fn run(&mut self, _m: &mut Module, cx: &mut PassContext<'_>) -> PassResult {
            cx.diags.error(Location::unknown(), "boom");
            PassResult::Failed
        }
    }

    #[test]
    fn runs_in_order_and_times() {
        let mut pm = PassManager::new();
        pm.add(Adder).add(Adder);
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        pm.run(&mut m, &reg, &mut diags).unwrap();
        assert_eq!(m.top_ops().len(), 2);
        assert_eq!(pm.timings().len(), 2);
        assert!(pm.total_time() >= Duration::ZERO);
    }

    #[test]
    fn aborts_on_failure() {
        let mut pm = PassManager::new();
        pm.add(Failer).add(Adder);
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        let err = pm.run(&mut m, &reg, &mut diags).unwrap_err();
        assert_eq!(err, "failer");
        assert!(m.top_ops().is_empty(), "later passes must not run");
        assert!(diags.has_errors());
    }
}
