//! Pass infrastructure: a [`Pass`] trait, a [`PassManager`] with MLIR-style
//! [`PassInstrumentation`] hooks, and [`PassResult`] bookkeeping.
//!
//! Every pass run is measured: wall time, live-op-count delta, and
//! diagnostics emitted are recorded in [`PassTiming`] (rendered by
//! [`PassManager::timing_report`]) and mirrored into the global [`obs`]
//! sink as a nested span per pass plus `passes.*` counters. These numbers
//! feed the paper's Table 6 experiment (HIR code-generation time vs. the
//! HLS baseline) and every performance comparison in the repo.

use crate::diagnostics::DiagnosticEngine;
use crate::dialect::DialectRegistry;
use crate::location::Location;
use crate::module::Module;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Outcome of one pass run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassResult {
    /// Pass ran and left the module unchanged.
    Unchanged,
    /// Pass ran and modified the module.
    Changed,
    /// Pass found errors (reported through the diagnostic engine).
    Failed,
}

impl PassResult {
    fn label(self) -> &'static str {
        match self {
            PassResult::Unchanged => "unchanged",
            PassResult::Changed => "changed",
            PassResult::Failed => "FAILED",
        }
    }
}

/// Why a pipeline run stopped early.
///
/// `PassFailed` is the "expected" failure mode — the pass reported errors
/// through the diagnostic engine and returned [`PassResult::Failed`]. The
/// other two variants are *internal* errors: a panic contained by the pass
/// manager, or (under [`PassManager::verify_each`]) a module the structural
/// verifier rejects after a pass that claimed success. Drivers map
/// [`PipelineError::is_internal`] to a distinct exit code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// A pass reported failure through diagnostics.
    PassFailed { pass: String },
    /// A pass panicked; the unwind was contained by the pass manager.
    PassPanicked { pass: String, message: String },
    /// `verify_each` found the module invalid after this pass ran.
    VerifyFailed { pass: String },
}

impl PipelineError {
    /// Name of the pass the pipeline stopped at.
    pub fn pass_name(&self) -> &str {
        match self {
            PipelineError::PassFailed { pass }
            | PipelineError::PassPanicked { pass, .. }
            | PipelineError::VerifyFailed { pass } => pass,
        }
    }

    /// Whether this is a compiler bug (panic / broken invariant) rather than
    /// a diagnosed input problem.
    pub fn is_internal(&self) -> bool {
        !matches!(self, PipelineError::PassFailed { .. })
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::PassFailed { pass } => write!(f, "pass '{pass}' failed"),
            PipelineError::PassPanicked { pass, message } => {
                write!(f, "pass '{pass}' panicked: {message}")
            }
            PipelineError::VerifyFailed { pass } => {
                write!(f, "module fails verification after pass '{pass}'")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Everything a pass may touch.
pub struct PassContext<'a> {
    pub registry: &'a DialectRegistry,
    pub diags: &'a mut DiagnosticEngine,
}

/// A module-level transformation or analysis.
pub trait Pass {
    /// Stable pass name (shown in statistics).
    fn name(&self) -> &str;

    /// Run on the module.
    fn run(&mut self, module: &mut Module, cx: &mut PassContext<'_>) -> PassResult;
}

/// Observes pass execution from outside the pass (MLIR's
/// `PassInstrumentation`): `run_before_pass` fires with the module exactly
/// as the pass will see it, `run_after_pass` with the module the pass left
/// behind. Instrumentations run in registration order before a pass and in
/// the same order after it.
pub trait PassInstrumentation {
    fn run_before_pass(&mut self, _pass: &dyn Pass, _module: &Module) {}
    fn run_after_pass(&mut self, _pass: &dyn Pass, _module: &Module, _result: PassResult) {}
}

/// Built-in instrumentation that prints the IR around passes (the engine
/// behind `hirc --print-ir-before-all` / `--print-ir-after-all`). Output
/// goes through a caller-supplied sink so drivers can route it to stderr
/// and tests can capture it.
pub struct IrPrintInstrumentation {
    before: bool,
    after: bool,
    sink: Box<dyn FnMut(&str)>,
}

impl IrPrintInstrumentation {
    pub fn new(before: bool, after: bool, sink: impl FnMut(&str) + 'static) -> Self {
        IrPrintInstrumentation {
            before,
            after,
            sink: Box::new(sink),
        }
    }

    /// Convenience: dump to stderr, MLIR-style.
    pub fn to_stderr(before: bool, after: bool) -> Self {
        Self::new(before, after, |text| eprint!("{text}"))
    }
}

impl PassInstrumentation for IrPrintInstrumentation {
    fn run_before_pass(&mut self, pass: &dyn Pass, module: &Module) {
        if self.before {
            let text = crate::printer::print_module(module);
            (self.sink)(&format!(
                "// ----- IR dump before {} -----\n{text}",
                pass.name()
            ));
        }
    }

    fn run_after_pass(&mut self, pass: &dyn Pass, module: &Module, result: PassResult) {
        if self.after {
            let text = crate::printer::print_module(module);
            (self.sink)(&format!(
                "// ----- IR dump after {} ({}) -----\n{text}",
                pass.name(),
                result.label()
            ));
        }
    }
}

/// Execution record for one pass.
#[derive(Clone, Debug)]
pub struct PassTiming {
    pub name: String,
    pub duration: Duration,
    pub result: PassResult,
    /// Live operations in the module before the pass ran.
    pub ops_before: usize,
    /// Live operations after the pass ran.
    pub ops_after: usize,
    /// Diagnostics the pass emitted.
    pub diagnostics: usize,
}

impl PassTiming {
    /// Net change in live op count (negative = ops removed).
    pub fn op_delta(&self) -> i64 {
        self.ops_after as i64 - self.ops_before as i64
    }
}

/// Runs a pipeline of passes in order, recording per-pass wall time,
/// op-count deltas, and diagnostics, and notifying registered
/// [`PassInstrumentation`]s around every pass.
///
/// # Examples
///
/// ```
/// use ir::{Module, PassManager, Pass, PassResult, PassContext, DialectRegistry, DiagnosticEngine};
///
/// struct Nop;
/// impl Pass for Nop {
///     fn name(&self) -> &str { "nop" }
///     fn run(&mut self, _m: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
///         PassResult::Unchanged
///     }
/// }
///
/// let mut pm = PassManager::new();
/// pm.add(Nop);
/// let mut m = Module::new();
/// let reg = DialectRegistry::new();
/// let mut diags = DiagnosticEngine::new();
/// assert!(pm.run(&mut m, &reg, &mut diags).is_ok());
/// assert_eq!(pm.timings().len(), 1);
/// assert_eq!(pm.timings()[0].op_delta(), 0);
/// ```
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    instrumentations: Vec<Box<dyn PassInstrumentation>>,
    timings: Vec<PassTiming>,
    /// Stop at the first failing pass (default true).
    pub abort_on_failure: bool,
    /// Run the structural verifier after every pass and abort (with
    /// [`PipelineError::VerifyFailed`]) on the first pass that breaks the
    /// module — MLIR's `-verify-each`. Localizes miscompiles to one pass.
    pub verify_each: bool,
    /// When set, write an MLIR-style crash reproducer (pre-pass IR snapshot
    /// plus the remaining pipeline) to this path whenever a pass panics or
    /// fails `verify_each`. Snapshots are only taken when this is set, so
    /// the happy path pays nothing.
    pub crash_reproducer: Option<PathBuf>,
    /// Where the last `run` actually wrote a reproducer, if it did.
    reproducer_written: Option<PathBuf>,
    /// Optimization remarks drained from the thread-local buffer after each
    /// pass of the last `run`, in emission order (pass-major).
    remarks: Vec<obs::Remark>,
}

impl PassManager {
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            instrumentations: Vec::new(),
            timings: Vec::new(),
            abort_on_failure: true,
            verify_each: false,
            crash_reproducer: None,
            reproducer_written: None,
            remarks: Vec::new(),
        }
    }

    /// Append a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Append an already-boxed pass (registry / pipeline-parsing use).
    pub fn add_boxed(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Names of the registered passes, in pipeline order.
    pub fn pass_names(&self) -> Vec<String> {
        self.passes.iter().map(|p| p.name().to_string()).collect()
    }

    /// Path of the reproducer written by the last `run`, if any.
    pub fn reproducer_path(&self) -> Option<&Path> {
        self.reproducer_written.as_deref()
    }

    /// Register an instrumentation observing every subsequent `run`.
    pub fn add_instrumentation(&mut self, ins: impl PassInstrumentation + 'static) -> &mut Self {
        self.instrumentations.push(Box::new(ins));
        self
    }

    /// Run all passes in order.
    ///
    /// Each pass body executes under `catch_unwind`: a panicking pass does
    /// not take the process down but is converted into a structured
    /// diagnostic naming the pass, a [`PipelineError::PassPanicked`], and —
    /// when [`PassManager::crash_reproducer`] is set — a reproducer file
    /// containing the pre-pass IR and the remaining pipeline.
    ///
    /// # Errors
    /// Returns the [`PipelineError`] describing the first failed pass.
    pub fn run(
        &mut self,
        module: &mut Module,
        registry: &DialectRegistry,
        diags: &mut DiagnosticEngine,
    ) -> Result<(), PipelineError> {
        self.timings.clear();
        self.reproducer_written = None;
        self.remarks.clear();
        // Discard any stale remarks a previous (aborted) run left in this
        // thread's buffer so they cannot leak into this run's output.
        let _ = obs::take_thread_remarks();
        let n_passes = self.passes.len();
        for idx in 0..n_passes {
            // Snapshot the IR before the pass only when a reproducer was
            // requested: printing every module is too expensive to do
            // unconditionally.
            let snapshot = self
                .crash_reproducer
                .is_some()
                .then(|| crate::printer::print_module(module));
            let pass = &mut self.passes[idx];
            let name = pass.name().to_string();
            let ops_before = module.op_count();
            let diags_before = diags.diagnostics().len();
            for ins in &mut self.instrumentations {
                ins.run_before_pass(pass.as_ref(), module);
            }
            let mut span = obs::span(format!("pass {name}"));
            let start = Instant::now();
            let outcome = {
                let mut cx = PassContext { registry, diags };
                // The module and context are exclusively borrowed here; on
                // unwind we stop the pipeline immediately (and say so), so
                // observing their torn state is intentional, not UB.
                catch_unwind(AssertUnwindSafe(|| pass.run(module, &mut cx)))
            };
            let duration = start.elapsed();
            let (result, panic_msg) = match outcome {
                Ok(r) => (r, None),
                Err(payload) => (PassResult::Failed, Some(panic_message(payload.as_ref()))),
            };
            let ops_after = module.op_count();
            // Drain this pass's remarks (deduplicated per pass) even when it
            // panicked or failed, so partial runs still explain themselves.
            self.remarks.extend(obs::take_thread_remarks());
            if let Some(msg) = &panic_msg {
                diags.emit(
                    crate::diagnostics::Diagnostic::error(
                        Location::unknown(),
                        format!("pass '{name}' panicked: {msg}"),
                    )
                    .with_note(
                        Location::unknown(),
                        "this is a compiler bug, not an input error; \
                         rerun with --crash-reproducer=PATH to capture a test case",
                    ),
                );
            }
            let diagnostics = diags.diagnostics().len() - diags_before;
            span.arg("ops_before", ops_before)
                .arg("ops_after", ops_after)
                .arg("result", result.label());
            drop(span);
            obs::counter_add("passes", "runs", 1);
            match result {
                PassResult::Changed => obs::counter_add("passes", "changed", 1),
                PassResult::Failed => obs::counter_add("passes", "failed", 1),
                PassResult::Unchanged => {}
            }
            if panic_msg.is_some() {
                obs::counter_add("passes", "panicked", 1);
            }
            obs::counter_add("passes", "diagnostics", diagnostics as u64);
            obs::counter_add(
                "passes",
                "ops_removed",
                ops_before.saturating_sub(ops_after) as u64,
            );
            obs::counter_add(
                "passes",
                "ops_added",
                ops_after.saturating_sub(ops_before) as u64,
            );
            let pass = &mut self.passes[idx];
            for ins in &mut self.instrumentations {
                ins.run_after_pass(pass.as_ref(), module, result);
            }
            self.timings.push(PassTiming {
                name: name.clone(),
                duration,
                result,
                ops_before,
                ops_after,
                diagnostics,
            });
            if let Some(message) = panic_msg {
                let err = PipelineError::PassPanicked {
                    pass: name,
                    message,
                };
                self.write_reproducer(idx, snapshot, &err.to_string(), diags);
                return Err(err);
            }
            if result == PassResult::Failed && self.abort_on_failure {
                return Err(PipelineError::PassFailed { pass: name });
            }
            if self.verify_each && crate::verifier::verify_module(module, registry, diags).is_err()
            {
                let err = PipelineError::VerifyFailed { pass: name };
                diags.emit(crate::diagnostics::Diagnostic::error(
                    Location::unknown(),
                    err.to_string(),
                ));
                self.write_reproducer(idx, snapshot, &err.to_string(), diags);
                return Err(err);
            }
        }
        Ok(())
    }

    /// Write a crash reproducer for the pass at `idx` (when configured):
    /// the pre-pass snapshot plus the remaining pipeline, so re-running the
    /// file re-triggers the failure.
    fn write_reproducer(
        &mut self,
        idx: usize,
        snapshot: Option<String>,
        error: &str,
        diags: &mut DiagnosticEngine,
    ) {
        let (Some(path), Some(ir_text)) = (self.crash_reproducer.clone(), snapshot) else {
            return;
        };
        let pipeline: Vec<String> = self.passes[idx..]
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        let text = crate::reproducer::format_reproducer(error, &pipeline, &ir_text);
        match std::fs::write(&path, text) {
            Ok(()) => self.reproducer_written = Some(path),
            Err(e) => diags.emit(crate::diagnostics::Diagnostic::warning(
                Location::unknown(),
                format!("could not write crash reproducer '{}': {e}", path.display()),
            )),
        }
    }

    /// Per-pass timings of the last `run`.
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Optimization remarks recorded by the last `run`, in emission order.
    pub fn remarks(&self) -> &[obs::Remark] {
        &self.remarks
    }

    /// Take ownership of the last `run`'s remarks (the parallel function
    /// pipeline moves them into per-function outcome slots).
    pub fn take_remarks(&mut self) -> Vec<obs::Remark> {
        std::mem::take(&mut self.remarks)
    }

    /// Total wall time of the last `run`.
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }

    /// Render the last `run` as an aligned table: per-pass wall time, live
    /// op-count delta, and result, with a `total` footer row.
    pub fn timing_report(&self) -> String {
        render_timing_report(&self.timings)
    }
}

/// Render a timing table for any pipeline (serial [`PassManager`] or the
/// parallel function pipeline): per-pass wall time, live op-count delta, and
/// result, with a `total` footer row.
pub fn render_timing_report(timings: &[PassTiming]) -> String {
    let name_w = timings
        .iter()
        .map(|t| t.name.len())
        .max()
        .unwrap_or(4)
        .max("total".len());
    let mut rows: Vec<(String, String, String, String)> = timings
        .iter()
        .map(|t| {
            (
                t.name.clone(),
                obs::format_duration_ns(t.duration.as_nanos() as u64),
                format_delta(t.op_delta()),
                t.result.label().to_string(),
            )
        })
        .collect();
    let total_delta: i64 = timings.iter().map(PassTiming::op_delta).sum();
    let total_time: Duration = timings.iter().map(|t| t.duration).sum();
    let total = (
        "total".to_string(),
        obs::format_duration_ns(total_time.as_nanos() as u64),
        format_delta(total_delta),
        String::new(),
    );
    let time_w = rows
        .iter()
        .map(|r| r.1.len())
        .chain([total.1.len(), "time".len()])
        .max()
        .unwrap();
    let delta_w = rows
        .iter()
        .map(|r| r.2.len())
        .chain([total.2.len(), "Δops".chars().count()])
        .max()
        .unwrap();
    rows.push(total);

    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:>time_w$}  {:>delta_w$}  result\n",
        "pass", "time", "Δops",
    ));
    let rule_len = name_w + time_w + delta_w + 12;
    out.push_str(&format!("{}\n", "-".repeat(rule_len)));
    let n = rows.len();
    for (i, (name, time, delta, result)) in rows.into_iter().enumerate() {
        if i + 1 == n {
            out.push_str(&format!("{}\n", "-".repeat(rule_len)));
        }
        let line = format!("{name:<name_w$}  {time:>time_w$}  {delta:>delta_w$}  {result}");
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Extract a human-readable message from a `catch_unwind` payload.
/// `panic!("...")` yields `&'static str`; `panic!("{x}")` yields `String`;
/// anything else (custom payloads) gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn format_delta(delta: i64) -> String {
    match delta.cmp(&0) {
        std::cmp::Ordering::Greater => format!("+{delta}"),
        std::cmp::Ordering::Equal => "0".to_string(),
        std::cmp::Ordering::Less => delta.to_string(),
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self
                    .passes
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("timings", &self.timings)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttrMap;
    use crate::location::Location;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Adder;
    impl Pass for Adder {
        fn name(&self) -> &str {
            "adder"
        }
        fn run(&mut self, m: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
            let op = m.create_op("t.x", vec![], vec![], AttrMap::new(), Location::unknown());
            m.push_top(op);
            PassResult::Changed
        }
    }

    struct Failer;
    impl Pass for Failer {
        fn name(&self) -> &str {
            "failer"
        }
        fn run(&mut self, _m: &mut Module, cx: &mut PassContext<'_>) -> PassResult {
            cx.diags.error(Location::unknown(), "boom");
            PassResult::Failed
        }
    }

    #[test]
    fn runs_in_order_and_times() {
        let mut pm = PassManager::new();
        pm.add(Adder).add(Adder);
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        pm.run(&mut m, &reg, &mut diags).unwrap();
        assert_eq!(m.top_ops().len(), 2);
        assert_eq!(pm.timings().len(), 2);
        assert!(pm.total_time() >= Duration::ZERO);
    }

    #[test]
    fn aborts_on_failure() {
        let mut pm = PassManager::new();
        pm.add(Failer).add(Adder);
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        let err = pm.run(&mut m, &reg, &mut diags).unwrap_err();
        assert_eq!(
            err,
            PipelineError::PassFailed {
                pass: "failer".into()
            }
        );
        assert_eq!(err.pass_name(), "failer");
        assert!(
            !err.is_internal(),
            "diagnosed failure is not a compiler bug"
        );
        assert!(m.top_ops().is_empty(), "later passes must not run");
        assert!(diags.has_errors());
    }

    struct Panicker;
    impl Pass for Panicker {
        fn name(&self) -> &str {
            "panicker"
        }
        fn run(&mut self, _m: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
            panic!("deliberate test panic")
        }
    }

    /// Silence the default panic hook for the duration of a closure so
    /// deliberately-panicking tests do not spam stderr. The hook is global,
    /// so tests using this must not rely on other threads' panic output.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn panicking_pass_is_contained_and_diagnosed() {
        with_quiet_panics(|| {
            let mut pm = PassManager::new();
            pm.add(Panicker).add(Adder);
            let mut m = Module::new();
            let reg = DialectRegistry::new();
            let mut diags = DiagnosticEngine::new();
            let err = pm.run(&mut m, &reg, &mut diags).unwrap_err();
            assert_eq!(
                err,
                PipelineError::PassPanicked {
                    pass: "panicker".into(),
                    message: "deliberate test panic".into()
                }
            );
            assert!(err.is_internal());
            assert!(m.top_ops().is_empty(), "later passes must not run");
            // The panic became a diagnostic naming the pass.
            let rendered = diags.render();
            assert!(
                rendered.contains("pass 'panicker' panicked: deliberate test panic"),
                "{rendered}"
            );
            // Timings still record the aborted pass.
            assert_eq!(pm.timings().len(), 1);
            assert_eq!(pm.timings()[0].result, PassResult::Failed);
        });
    }

    #[test]
    fn panic_writes_roundtrippable_reproducer() {
        with_quiet_panics(|| {
            let dir = std::env::temp_dir().join("hir-pass-tests");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("panic-repro.mlir");
            let _ = std::fs::remove_file(&path);

            let mut pm = PassManager::new();
            pm.crash_reproducer = Some(path.clone());
            pm.add(Adder).add(Panicker).add(Adder);
            let mut m = Module::new();
            let reg = DialectRegistry::new();
            let mut diags = DiagnosticEngine::new();
            let err = pm.run(&mut m, &reg, &mut diags).unwrap_err();
            assert_eq!(err.pass_name(), "panicker");
            assert_eq!(pm.reproducer_path(), Some(path.as_path()));

            let text = std::fs::read_to_string(&path).unwrap();
            let repro = crate::reproducer::parse_reproducer(&text).expect("has header");
            // Remaining pipeline starts at the crashing pass.
            assert_eq!(repro.pipeline, vec!["panicker", "adder"]);
            assert!(repro.error.contains("panicker"));
            // The snapshot is the *pre-pass* IR: Adder ran once before the
            // panic, so exactly one op — and the file re-parses as a module.
            let m2 = crate::parser::parse_module(&repro.ir).expect("reproducer IR parses");
            assert_eq!(m2.top_ops().len(), 1);
            let _ = std::fs::remove_file(&path);
        });
    }

    #[test]
    fn no_reproducer_without_flag_and_none_on_success() {
        let mut pm = PassManager::new();
        pm.add(Adder);
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        pm.run(&mut m, &reg, &mut diags).unwrap();
        assert_eq!(pm.reproducer_path(), None);
    }

    /// Emits an op unknown to the loaded `t` dialect, which the structural
    /// verifier rejects — simulating a pass that corrupts the module while
    /// still returning success.
    struct Breaker;
    impl Pass for Breaker {
        fn name(&self) -> &str {
            "breaker"
        }
        fn run(&mut self, m: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
            let op = m.create_op(
                "t.not_a_registered_op",
                vec![],
                vec![],
                AttrMap::new(),
                Location::unknown(),
            );
            m.push_top(op);
            PassResult::Changed
        }
    }

    #[test]
    fn verify_each_localizes_module_breaking_pass() {
        let mut d = crate::dialect::Dialect::new("t");
        d.add_op(crate::dialect::OpSpec::new("t.x"));
        let mut reg = DialectRegistry::new();
        reg.register(d);
        let mut pm = PassManager::new();
        pm.verify_each = true;
        pm.add(Adder).add(Breaker).add(Adder);
        let mut m = Module::new();
        let mut diags = DiagnosticEngine::new();
        let err = pm.run(&mut m, &reg, &mut diags).unwrap_err();
        assert_eq!(
            err,
            PipelineError::VerifyFailed {
                pass: "breaker".into()
            }
        );
        assert!(err.is_internal());
        assert!(diags.has_errors());
        // Only the adder+breaker ran; the final adder did not.
        assert_eq!(pm.timings().len(), 2);
    }

    #[test]
    fn timings_record_op_deltas_and_diagnostics() {
        let mut pm = PassManager::new();
        pm.abort_on_failure = false;
        pm.add(Adder).add(Failer);
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        pm.run(&mut m, &reg, &mut diags).unwrap();
        let t = pm.timings();
        assert_eq!(t[0].ops_before, 0);
        assert_eq!(t[0].ops_after, 1);
        assert_eq!(t[0].op_delta(), 1);
        assert_eq!(t[0].diagnostics, 0);
        assert_eq!(t[1].op_delta(), 0);
        assert_eq!(t[1].diagnostics, 1);
    }

    /// Logs every instrumentation callback into a shared vector.
    struct Logger {
        log: Rc<RefCell<Vec<String>>>,
    }
    impl PassInstrumentation for Logger {
        fn run_before_pass(&mut self, pass: &dyn Pass, module: &Module) {
            self.log
                .borrow_mut()
                .push(format!("before:{}:{}", pass.name(), module.op_count()));
        }
        fn run_after_pass(&mut self, pass: &dyn Pass, module: &Module, result: PassResult) {
            self.log.borrow_mut().push(format!(
                "after:{}:{}:{:?}",
                pass.name(),
                module.op_count(),
                result
            ));
        }
    }

    #[test]
    fn instrumentation_ordering_and_module_visibility() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut pm = PassManager::new();
        pm.add(Adder).add(Adder);
        pm.add_instrumentation(Logger { log: log.clone() });
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        pm.run(&mut m, &reg, &mut diags).unwrap();
        assert_eq!(
            *log.borrow(),
            vec![
                // before sees the pre-pass module, after the post-pass one.
                "before:adder:0",
                "after:adder:1:Changed",
                "before:adder:1",
                "after:adder:2:Changed",
            ]
        );
    }

    #[test]
    fn multiple_instrumentations_run_in_registration_order() {
        struct Tag {
            tag: &'static str,
            log: Rc<RefCell<Vec<String>>>,
        }
        impl PassInstrumentation for Tag {
            fn run_before_pass(&mut self, _pass: &dyn Pass, _m: &Module) {
                self.log.borrow_mut().push(format!("{}:before", self.tag));
            }
            fn run_after_pass(&mut self, _pass: &dyn Pass, _m: &Module, _r: PassResult) {
                self.log.borrow_mut().push(format!("{}:after", self.tag));
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut pm = PassManager::new();
        pm.add(Adder);
        pm.add_instrumentation(Tag {
            tag: "first",
            log: log.clone(),
        });
        pm.add_instrumentation(Tag {
            tag: "second",
            log: log.clone(),
        });
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        pm.run(&mut m, &reg, &mut diags).unwrap();
        assert_eq!(
            *log.borrow(),
            vec![
                "first:before",
                "second:before",
                "first:after",
                "second:after"
            ]
        );
    }

    #[test]
    fn ir_print_instrumentation_dumps_parseable_ir() {
        let dumps = Rc::new(RefCell::new(Vec::<String>::new()));
        let sink = {
            let dumps = dumps.clone();
            move |text: &str| dumps.borrow_mut().push(text.to_string())
        };
        let mut pm = PassManager::new();
        pm.add(Adder);
        pm.add_instrumentation(IrPrintInstrumentation::new(true, true, sink));
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        pm.run(&mut m, &reg, &mut diags).unwrap();
        let dumps = dumps.borrow();
        assert_eq!(dumps.len(), 2);
        assert!(dumps[0].starts_with("// ----- IR dump before adder -----\n"));
        assert!(dumps[1].starts_with("// ----- IR dump after adder (changed) -----\n"));
        // Each dump body round-trips through the parser.
        for d in dumps.iter() {
            let body: String = d
                .lines()
                .filter(|l| !l.starts_with("// -----"))
                .collect::<Vec<_>>()
                .join("\n");
            crate::parser::parse_module(&body)
                .unwrap_or_else(|e| panic!("dump must reparse: {e}\n{body}"));
        }
    }

    #[test]
    fn timing_report_has_delta_column_and_total_footer() {
        let mut pm = PassManager::new();
        pm.add(Adder).add(Adder);
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        pm.run(&mut m, &reg, &mut diags).unwrap();
        let report = pm.timing_report();
        assert!(report.contains("pass"), "{report}");
        assert!(report.contains("Δops"), "{report}");
        assert!(report.contains("adder"), "{report}");
        assert!(report.contains("+1"), "{report}");
        let total_line = report.lines().last().unwrap();
        assert!(total_line.starts_with("total"), "{report}");
        assert!(total_line.contains("+2"), "{report}");
    }
}
