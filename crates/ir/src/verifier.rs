//! Structural IR verification: arities, terminators, SSA visibility.
//!
//! Dialect-specific semantic checks (e.g. HIR's schedule verification) are
//! layered on top: first via per-op [`crate::dialect::OpSpec`] verifiers run
//! here, then via whole-module analyses such as `hir-verify`.

use crate::diagnostics::{Diagnostic, DiagnosticEngine};
use crate::dialect::{traits, DialectRegistry};
use crate::module::{BlockId, Module, OpId, ValueDef, ValueId};

/// Verify the whole module. Returns `Ok(())` when no errors were emitted.
///
/// # Errors
/// Emits diagnostics into `diags` and returns `Err(count)` with the number of
/// errors found.
pub fn verify_module(
    module: &Module,
    registry: &DialectRegistry,
    diags: &mut DiagnosticEngine,
) -> Result<(), usize> {
    let before = diags.error_count();
    for &top in module.top_ops() {
        verify_op_tree(module, registry, top, diags);
    }
    let found = diags.error_count() - before;
    if found == 0 {
        Ok(())
    } else {
        Err(found)
    }
}

fn verify_op_tree(
    module: &Module,
    registry: &DialectRegistry,
    root: OpId,
    diags: &mut DiagnosticEngine,
) {
    module.walk(root, &mut |op| {
        verify_single_op(module, registry, op, diags);
    });
}

fn verify_single_op(
    module: &Module,
    registry: &DialectRegistry,
    op: OpId,
    diags: &mut DiagnosticEngine,
) {
    let data = module.op(op);
    let name = data.name().clone();

    if let Some(spec) = registry.spec(name.as_str()) {
        if !spec.operand_arity().check(data.operands().len()) {
            diags.emit(Diagnostic::error(
                data.loc().clone(),
                format!(
                    "'{name}' expects {} operands but has {}",
                    spec.operand_arity(),
                    data.operands().len()
                ),
            ));
        }
        if !spec.result_arity().check(data.results().len()) {
            diags.emit(Diagnostic::error(
                data.loc().clone(),
                format!(
                    "'{name}' expects {} results but has {}",
                    spec.result_arity(),
                    data.results().len()
                ),
            ));
        }
        if !spec.region_arity().check(data.regions().len()) {
            diags.emit(Diagnostic::error(
                data.loc().clone(),
                format!(
                    "'{name}' expects {} regions but has {}",
                    spec.region_arity(),
                    data.regions().len()
                ),
            ));
        }
        // Terminator placement: a TERMINATOR op must be last in its block.
        if spec.has_trait(traits::TERMINATOR) {
            if let Some(parent) = data.parent() {
                let ops = module.block(parent).ops();
                if ops.last() != Some(&op) {
                    diags.emit(Diagnostic::error(
                        data.loc().clone(),
                        format!("'{name}' must terminate its block"),
                    ));
                }
            }
        }
    } else if !name.dialect().is_empty() && registry.dialects().iter().any(|d| d == name.dialect())
    {
        diags.emit(Diagnostic::error(
            data.loc().clone(),
            format!(
                "unregistered operation '{name}' in loaded dialect '{}'",
                name.dialect()
            ),
        ));
    }

    // SSA visibility for each operand.
    for (i, &operand) in data.operands().iter().enumerate() {
        if !value_visible_at(module, operand, op) {
            diags.emit(Diagnostic::error(
                data.loc().clone(),
                format!("operand #{i} of '{name}' does not dominate its use"),
            ));
        }
    }

    // Semantic per-op verifier.
    if let Some(v) = registry.spec(name.as_str()).and_then(|s| s.verifier()) {
        v(module, op, diags);
    }
}

/// Whether `value` is visible (dominates) at op `user`.
///
/// Rules for our single-block-per-region IR:
/// * an op result is visible to later ops in the same block, and to anything
///   nested in regions of those later ops;
/// * a block argument is visible to all ops in that block and anything nested
///   within them.
pub fn value_visible_at(module: &Module, value: ValueId, user: OpId) -> bool {
    match module.value(value).def() {
        ValueDef::OpResult { op: def_op, .. } => {
            let Some(def_block) = module.op(def_op).parent() else {
                // Top-level op results are visible everywhere below top level.
                return true;
            };
            // Climb ancestors of `user` until one lives in `def_block`.
            let mut cur = user;
            loop {
                match module.op(cur).parent() {
                    Some(b) if b == def_block => {
                        return module.position_in_block(def_op) < module.position_in_block(cur);
                    }
                    Some(b) => cur = module.block_parent_op(b),
                    None => return false,
                }
            }
        }
        ValueDef::BlockArg { block, .. } => block_encloses(module, block, user),
    }
}

/// Whether `block` contains `op` directly or transitively.
fn block_encloses(module: &Module, block: BlockId, op: OpId) -> bool {
    let mut cur = op;
    loop {
        match module.op(cur).parent() {
            Some(b) if b == block => return true,
            Some(b) => cur = module.block_parent_op(b),
            None => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttrMap;
    use crate::dialect::{Arity, Dialect, OpSpec};
    use crate::location::Location;
    use crate::types::Type;

    fn registry() -> DialectRegistry {
        let mut d = Dialect::new("t");
        d.add_op(OpSpec::new("t.func").with_regions(Arity::Exact(1)));
        d.add_op(
            OpSpec::new("t.add")
                .with_operands(Arity::Exact(2))
                .with_results(Arity::Exact(1)),
        );
        d.add_op(OpSpec::new("t.ret").with_traits(traits::TERMINATOR));
        d.add_op(OpSpec::new("t.const").with_results(Arity::Exact(1)));
        d.add_op(OpSpec::new("t.loop").with_regions(Arity::Exact(1)));
        let mut reg = DialectRegistry::new();
        reg.register(d);
        reg
    }

    #[test]
    fn well_formed_module_verifies() {
        let mut m = Module::new();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![Type::int(32)]);
        let arg = m.block(b).args()[0];
        let add = m.create_op(
            "t.add",
            vec![arg, arg],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, add);
        let ret = m.create_op("t.ret", vec![], vec![], AttrMap::new(), Location::unknown());
        m.append_op(b, ret);
        m.push_top(f);
        let mut diags = DiagnosticEngine::new();
        assert!(
            verify_module(&m, &registry(), &mut diags).is_ok(),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn wrong_operand_count_reported() {
        let mut m = Module::new();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![Type::int(32)]);
        let arg = m.block(b).args()[0];
        let add = m.create_op(
            "t.add",
            vec![arg],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, add);
        m.push_top(f);
        let mut diags = DiagnosticEngine::new();
        assert!(verify_module(&m, &registry(), &mut diags).is_err());
        assert!(diags
            .render()
            .contains("expects exactly 2 operands but has 1"));
    }

    #[test]
    fn terminator_must_be_last() {
        let mut m = Module::new();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![]);
        let ret = m.create_op("t.ret", vec![], vec![], AttrMap::new(), Location::unknown());
        m.append_op(b, ret);
        let c = m.create_op(
            "t.const",
            vec![],
            vec![Type::int(1)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, c);
        m.push_top(f);
        let mut diags = DiagnosticEngine::new();
        assert!(verify_module(&m, &registry(), &mut diags).is_err());
        assert!(diags.render().contains("must terminate its block"));
    }

    #[test]
    fn use_before_def_reported() {
        let mut m = Module::new();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![]);
        let c = m.create_op(
            "t.const",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        let v = m.op(c).results()[0];
        let add = m.create_op(
            "t.add",
            vec![v, v],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        // Insert the use BEFORE the def.
        m.append_op(b, add);
        m.append_op(b, c);
        m.push_top(f);
        let mut diags = DiagnosticEngine::new();
        assert!(verify_module(&m, &registry(), &mut diags).is_err());
        assert!(diags.render().contains("does not dominate its use"));
    }

    #[test]
    fn value_from_enclosing_scope_is_visible() {
        let mut m = Module::new();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![Type::int(32)]);
        let arg = m.block(b).args()[0];
        let c = m.create_op(
            "t.const",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, c);
        let cv = m.op(c).results()[0];
        let lp = m.create_op(
            "t.loop",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, lp);
        let lr = m.add_region(lp);
        let lb = m.add_block(lr, vec![]);
        // Inner op uses outer block arg and an outer const defined before the loop.
        let add = m.create_op(
            "t.add",
            vec![arg, cv],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(lb, add);
        m.push_top(f);
        let mut diags = DiagnosticEngine::new();
        assert!(
            verify_module(&m, &registry(), &mut diags).is_ok(),
            "{}",
            diags.render()
        );
    }

    #[test]
    fn value_defined_after_loop_not_visible_inside() {
        let mut m = Module::new();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![]);
        let lp = m.create_op(
            "t.loop",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, lp);
        let c = m.create_op(
            "t.const",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, c); // defined after the loop
        let cv = m.op(c).results()[0];
        let lr = m.add_region(lp);
        let lb = m.add_block(lr, vec![]);
        let add = m.create_op(
            "t.add",
            vec![cv, cv],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(lb, add);
        m.push_top(f);
        let mut diags = DiagnosticEngine::new();
        assert!(verify_module(&m, &registry(), &mut diags).is_err());
    }
}
