//! MLIR-style parallel function pipelines.
//!
//! HIR functions are *isolated from above* — they reference each other only
//! through symbol attributes, never through SSA values — which is exactly
//! the property MLIR's pass manager exploits to run per-function pipelines
//! concurrently. [`FunctionPipeline`] does the same with nothing but the
//! standard library: it splits a module's top-level ops into owned
//! per-function sub-modules ([`Module::split_top`]), runs a pass pipeline
//! over them on a `std::thread::scope` worker pool, and splices the results
//! back in original order ([`Module::splice_top`]).
//!
//! ## Determinism
//!
//! Output is bit-identical at any thread count:
//!
//! * functions are claimed from an atomic work queue, but every result is
//!   stored in a slot indexed by the function's *module position*, and the
//!   merge walks those slots in order — worker interleaving never leaks
//!   into the merged module, diagnostics, timings, or the returned error;
//! * each worker runs the whole pipeline over its function with a private
//!   [`DiagnosticEngine`], so the merged diagnostic order is "all of
//!   function 0's pipeline, then all of function 1's, …" — the same order
//!   the single-threaded path produces, because the single-threaded path is
//!   the same code with one inline worker;
//! * sub-modules print identically to the functions they were cloned from
//!   (value names are assigned positionally), so the spliced module prints
//!   identically to what serial execution would leave behind.
//!
//! ## Containment
//!
//! Each function's pipeline runs in an inner [`PassManager`], so a
//! panicking pass is contained per function: sibling workers finish their
//! functions normally, every function's diagnostics are still merged, and
//! the error reported (plus the optional crash reproducer, which names the
//! function) is the one from the *first failing function in module order* —
//! again independent of thread interleaving.

use crate::diagnostics::{Diagnostic, DiagnosticEngine};
use crate::dialect::DialectRegistry;
use crate::module::Module;
use crate::pass::{Pass, PassManager, PassResult, PassTiming, PipelineError};
use crate::symbol::SYM_NAME;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Builds one fresh pass instance per worker invocation. Factories (not
/// `Box<dyn Pass>`) are what the pipeline stores, because passes are neither
/// `Send` nor `Clone` in general — each function gets its own instances.
pub type PassFactory = Box<dyn Fn() -> Box<dyn Pass> + Send + Sync>;

/// Chrome-trace thread-id base for worker tracks: worker `w` renders as
/// `(pid 1, tid WORKER_TID_BASE + w)`, clear of the small sequential tids
/// auto-assigned to stage tracks.
pub const WORKER_TID_BASE: u32 = 1000;

/// Outcome of one function's pipeline run, reported by
/// [`FunctionPipeline::function_reports`] in module order.
#[derive(Debug)]
pub struct FunctionReport {
    /// `sym_name` of the function, or `top#<i>` for unnamed top-level ops.
    pub func: String,
    /// Worker that ran this function (0 for the single-threaded path).
    pub worker: usize,
    /// Per-pass timings, in pipeline order (shorter if the pipeline
    /// aborted on this function).
    pub timings: Vec<PassTiming>,
    /// The error this function's pipeline stopped at, if any.
    pub error: Option<PipelineError>,
}

/// What one worker hands back for one function.
struct FuncOutcome {
    /// Function label captured before the pipeline ran (`sym_name` or
    /// `top#<i>`), so renames/failures can't lose it.
    func: String,
    sub: Module,
    diags: Vec<Diagnostic>,
    /// Remarks the function's pipeline emitted, drained from the worker's
    /// thread-local buffer right after its `PassManager::run` returned.
    remarks: Vec<obs::Remark>,
    timings: Vec<PassTiming>,
    error: Option<PipelineError>,
    /// Pre-pipeline IR of the function, captured only when a crash
    /// reproducer was requested.
    snapshot: Option<String>,
    worker: usize,
}

/// A pass pipeline replicated over every top-level function, executed on a
/// scoped worker pool. See the module docs for the determinism and
/// containment contract.
///
/// # Examples
///
/// ```
/// use ir::{FunctionPipeline, Module, Pass, PassContext, PassResult};
///
/// struct Nop;
/// impl Pass for Nop {
///     fn name(&self) -> &str { "nop" }
///     fn run(&mut self, _m: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
///         PassResult::Unchanged
///     }
/// }
///
/// let mut fp = FunctionPipeline::new();
/// fp.add_factory(|| Box::new(Nop));
/// fp.threads = 2;
/// let mut m = Module::new();
/// let reg = ir::DialectRegistry::new();
/// let mut diags = ir::DiagnosticEngine::new();
/// assert!(fp.run(&mut m, &reg, &mut diags).is_ok());
/// ```
#[derive(Default)]
pub struct FunctionPipeline {
    factories: Vec<(String, PassFactory)>,
    /// Worker threads to use; `0` resolves via [`default_thread_count`]
    /// (`HIRC_THREADS`, then `std::thread::available_parallelism`).
    pub threads: usize,
    /// Forwarded to each function's inner [`PassManager::verify_each`].
    pub verify_each: bool,
    /// Write a crash reproducer (pre-pipeline function IR + the full
    /// pipeline) here when a function's pipeline hits an internal error.
    /// Only the first failing function in module order writes one.
    pub crash_reproducer: Option<PathBuf>,
    timings: Vec<PassTiming>,
    reports: Vec<FunctionReport>,
    reproducer_written: Option<PathBuf>,
    /// Remarks from every function, merged in module order (same
    /// determinism scheme as diagnostics: per-function slots, merged by
    /// module position — byte-identical at any thread count).
    remarks: Vec<obs::Remark>,
}

impl FunctionPipeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a pass to the pipeline via its factory. The factory is called
    /// once immediately to learn the pass name, then once per function run.
    pub fn add_factory(
        &mut self,
        factory: impl Fn() -> Box<dyn Pass> + Send + Sync + 'static,
    ) -> &mut Self {
        let name = factory().name().to_string();
        self.factories.push((name, Box::new(factory)));
        self
    }

    /// Names of the registered passes, in pipeline order.
    pub fn pass_names(&self) -> Vec<String> {
        self.factories.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Aggregated per-pass timings of the last `run`: one row per pipeline
    /// position, durations/op-counts/diagnostics summed across functions.
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Per-function outcomes of the last `run`, in module order.
    pub fn function_reports(&self) -> &[FunctionReport] {
        &self.reports
    }

    /// Optimization remarks of the last `run`, merged in module order
    /// (independent of worker interleaving).
    pub fn remarks(&self) -> &[obs::Remark] {
        &self.remarks
    }

    /// Take ownership of the last run's remarks (module order).
    pub fn take_remarks(&mut self) -> Vec<obs::Remark> {
        std::mem::take(&mut self.remarks)
    }

    /// Path of the reproducer written by the last `run`, if any.
    pub fn reproducer_path(&self) -> Option<&Path> {
        self.reproducer_written.as_deref()
    }

    /// Run the pipeline over every top-level op of `module`.
    ///
    /// # Errors
    /// Returns the [`PipelineError`] of the first failing function in
    /// module order (diagnostics from *all* functions are still merged).
    pub fn run(
        &mut self,
        module: &mut Module,
        registry: &DialectRegistry,
        diags: &mut DiagnosticEngine,
    ) -> Result<(), PipelineError> {
        self.timings.clear();
        self.reports.clear();
        self.reproducer_written = None;
        self.remarks.clear();

        let subs = module.split_top();
        let n = subs.len();
        let workers = resolve_thread_count(self.threads).min(n.max(1));
        let mut outer = obs::span("function-pipeline");
        outer.arg("functions", n).arg("workers", workers);

        let mut outcomes: Vec<Option<FuncOutcome>> = Vec::with_capacity(n);
        if workers <= 1 {
            for (idx, sub) in subs.into_iter().enumerate() {
                outcomes.push(Some(self.run_one(sub, idx, 0, registry)));
            }
        } else {
            let slots: Vec<Mutex<Option<Module>>> =
                subs.into_iter().map(|s| Mutex::new(Some(s))).collect();
            let done: Vec<Mutex<Option<FuncOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let slots = &slots;
                    let done = &done;
                    let next = &next;
                    let this = &*self;
                    scope.spawn(move || loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let sub = slots[idx].lock().unwrap().take().expect("unclaimed slot");
                        *done[idx].lock().unwrap() = Some(this.run_one(sub, idx, w, registry));
                    });
                }
            });
            outcomes.extend(
                done.into_iter()
                    .map(|m| Some(m.into_inner().unwrap().expect("worker completed slot"))),
            );
        }

        // Deterministic merge: everything below iterates in module order.
        let processed: Vec<Module> = outcomes
            .iter_mut()
            .map(|o| std::mem::take(&mut o.as_mut().expect("outcome").sub))
            .collect();
        *module = Module::splice_top(&processed);

        let mut first_error: Option<(usize, PipelineError, Option<String>)> = None;
        for (idx, outcome) in outcomes.into_iter().enumerate() {
            let outcome = outcome.expect("outcome");
            for d in outcome.diags {
                diags.emit(d);
            }
            self.remarks.extend(outcome.remarks);
            self.fold_timings(&outcome.timings);
            if outcome.error.is_some() && first_error.is_none() {
                first_error = Some((
                    idx,
                    outcome.error.clone().unwrap(),
                    outcome.snapshot.clone(),
                ));
            }
            self.reports.push(FunctionReport {
                func: outcome.func,
                worker: outcome.worker,
                timings: outcome.timings,
                error: outcome.error,
            });
        }
        drop(outer);

        match first_error {
            None => Ok(()),
            Some((idx, err, snapshot)) => {
                self.write_reproducer(idx, &err, snapshot, diags);
                Err(err)
            }
        }
    }

    /// Run the whole pipeline over one function's sub-module. Shared by the
    /// inline (single-threaded) and pooled paths so both produce identical
    /// outcomes.
    fn run_one(
        &self,
        mut sub: Module,
        idx: usize,
        worker: usize,
        registry: &DialectRegistry,
    ) -> FuncOutcome {
        let func = sub
            .top_ops()
            .first()
            .and_then(|&t| sub.op(t).attr(SYM_NAME))
            .and_then(|a| a.as_str().map(str::to_owned))
            .unwrap_or_else(|| format!("top#{idx}"));
        let mut span = obs::span_in(format!("worker {worker}"), format!("@{func} pipeline"));
        span.pid_tid(1, WORKER_TID_BASE + worker as u32)
            .arg("function", &func)
            .arg("index", idx);
        let snapshot = self
            .crash_reproducer
            .is_some()
            .then(|| crate::printer::print_module(&sub));
        let mut pm = PassManager::new();
        for (_, factory) in &self.factories {
            pm.add_boxed(factory());
        }
        pm.verify_each = self.verify_each;
        let mut local = DiagnosticEngine::new();
        let error = pm.run(&mut sub, registry, &mut local).err();
        FuncOutcome {
            func,
            sub,
            diags: local.take(),
            remarks: pm.take_remarks(),
            timings: pm.timings().to_vec(),
            error,
            snapshot,
            worker,
        }
    }

    /// Fold one function's pass timings into the aggregated per-position
    /// rows (durations, op counts and diagnostics sum; the "worst" result
    /// wins so a single failure is visible in the aggregate).
    fn fold_timings(&mut self, timings: &[PassTiming]) {
        for (pos, t) in timings.iter().enumerate() {
            if pos == self.timings.len() {
                self.timings.push(t.clone());
                continue;
            }
            let agg = &mut self.timings[pos];
            agg.duration += t.duration;
            agg.ops_before += t.ops_before;
            agg.ops_after += t.ops_after;
            agg.diagnostics += t.diagnostics;
            agg.result = match (agg.result, t.result) {
                (PassResult::Failed, _) | (_, PassResult::Failed) => PassResult::Failed,
                (PassResult::Changed, _) | (_, PassResult::Changed) => PassResult::Changed,
                _ => PassResult::Unchanged,
            };
        }
    }

    /// Write a crash reproducer for the first failing function: its
    /// pre-pipeline IR plus the *full* pipeline, so re-running the file
    /// re-triggers the failure. Only internal errors (panic / verify-each)
    /// produce reproducers, mirroring [`PassManager`].
    fn write_reproducer(
        &mut self,
        idx: usize,
        err: &PipelineError,
        snapshot: Option<String>,
        diags: &mut DiagnosticEngine,
    ) {
        if !err.is_internal() {
            return;
        }
        let (Some(path), Some(ir_text)) = (self.crash_reproducer.clone(), snapshot) else {
            return;
        };
        let func = self
            .reports
            .get(idx)
            .map(|r| r.func.clone())
            .unwrap_or_else(|| format!("top#{idx}"));
        let error = format!("function '@{func}': {err}");
        let pipeline = self.pass_names();
        let text = crate::reproducer::format_reproducer(&error, &pipeline, &ir_text);
        match std::fs::write(&path, text) {
            Ok(()) => self.reproducer_written = Some(path),
            Err(e) => diags.emit(Diagnostic::warning(
                crate::location::Location::unknown(),
                format!("could not write crash reproducer '{}': {e}", path.display()),
            )),
        }
    }

    /// Total wall time across all functions of the last `run` (CPU time,
    /// not wall clock, when running multi-threaded).
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }

    /// Render the aggregated per-pass timings of the last `run` as the same
    /// aligned table [`PassManager::timing_report`] produces. Durations sum
    /// CPU time across workers, so rows can exceed wall-clock time.
    pub fn timing_report(&self) -> String {
        crate::pass::render_timing_report(&self.timings)
    }
}

/// Resolve a requested thread count: `0` means "auto" — `HIRC_THREADS` if
/// set to a positive integer, else [`std::thread::available_parallelism`].
pub fn resolve_thread_count(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    default_thread_count()
}

/// The "auto" thread count: `HIRC_THREADS` (positive integer) if set, else
/// [`std::thread::available_parallelism`], else 1.
pub fn default_thread_count() -> usize {
    if let Ok(v) = std::env::var("HIRC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl std::fmt::Debug for FunctionPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionPipeline")
            .field("passes", &self.pass_names())
            .field("threads", &self.threads)
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

/// `&DialectRegistry` is shared across the worker pool.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<DialectRegistry>()
};

impl PassManager {
    /// Nest a [`FunctionPipeline`] into this pass manager as a single pass
    /// (MLIR's `OpPassManager` nesting): the outer manager times and
    /// instruments the whole parallel fan-out as one unit.
    pub fn nest_function_pipeline(&mut self, fp: FunctionPipeline) -> &mut Self {
        self.add(fp);
        self
    }
}

impl Pass for FunctionPipeline {
    fn name(&self) -> &str {
        "function-pipeline"
    }

    fn run(&mut self, module: &mut Module, cx: &mut crate::pass::PassContext<'_>) -> PassResult {
        match FunctionPipeline::run(self, module, cx.registry, cx.diags) {
            // Splicing rebuilds the module even when no pass changed
            // anything; report Changed only when a pass did.
            Ok(()) => {
                if self.timings.iter().any(|t| t.result == PassResult::Changed) {
                    PassResult::Changed
                } else {
                    PassResult::Unchanged
                }
            }
            Err(_) => PassResult::Failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrMap, Attribute};
    use crate::location::Location;
    use crate::pass::PassContext;
    use crate::types::Type;

    /// Emits one diagnostic naming the function, tagged with the pass run.
    struct Announce;
    impl Pass for Announce {
        fn name(&self) -> &str {
            "announce"
        }
        fn run(&mut self, m: &mut Module, cx: &mut PassContext<'_>) -> PassResult {
            let func = m
                .top_ops()
                .first()
                .and_then(|&t| m.op(t).attr(SYM_NAME))
                .and_then(|a| a.as_str())
                .unwrap_or("?")
                .to_string();
            cx.diags.emit(Diagnostic::warning(
                Location::unknown(),
                format!("announce: visiting @{func}"),
            ));
            PassResult::Unchanged
        }
    }

    /// Panics on the function whose `sym_name` matches.
    struct PanicOn(&'static str);
    impl Pass for PanicOn {
        fn name(&self) -> &str {
            "panic-on"
        }
        fn run(&mut self, m: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
            let func = m
                .top_ops()
                .first()
                .and_then(|&t| m.op(t).attr(SYM_NAME))
                .and_then(|a| a.as_str())
                .unwrap_or("?")
                .to_string();
            assert!(func != self.0, "intentional panic in @{func}");
            PassResult::Unchanged
        }
    }

    fn funcs_module(names: &[&str]) -> Module {
        let mut m = Module::new();
        for name in names {
            let f = m.create_op(
                "t.func",
                vec![],
                vec![],
                [(SYM_NAME.to_string(), Attribute::string(*name))]
                    .into_iter()
                    .collect(),
                Location::unknown(),
            );
            let r = m.add_region(f);
            let b = m.add_block(r, vec![]);
            let c = m.create_op(
                "t.const",
                vec![],
                vec![Type::int(32)],
                AttrMap::new(),
                Location::unknown(),
            );
            m.append_op(b, c);
            m.push_top(f);
        }
        m
    }

    fn run_at(threads: usize, names: &[&str]) -> (Module, Vec<String>, Vec<String>) {
        let mut m = funcs_module(names);
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        let mut fp = FunctionPipeline::new();
        fp.add_factory(|| Box::new(Announce));
        fp.threads = threads;
        fp.run(&mut m, &reg, &mut diags).unwrap();
        let msgs = diags
            .take()
            .into_iter()
            .map(|d| d.message)
            .collect::<Vec<_>>();
        let workers = fp
            .function_reports()
            .iter()
            .map(|r| r.func.clone())
            .collect();
        (m, msgs, workers)
    }

    #[test]
    fn diagnostics_merge_in_module_order_at_any_thread_count() {
        let names = ["f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"];
        let (m1, d1, r1) = run_at(1, &names);
        let (m8, d8, r8) = run_at(8, &names);
        assert_eq!(
            d1,
            names
                .iter()
                .map(|n| format!("announce: visiting @{n}"))
                .collect::<Vec<_>>()
        );
        assert_eq!(d1, d8, "diagnostic order must not depend on threads");
        assert_eq!(r1, r8, "report order must not depend on threads");
        assert_eq!(
            crate::printer::print_module(&m1),
            crate::printer::print_module(&m8),
        );
    }

    /// Emits one applied remark naming the function.
    struct Remarker;
    impl Pass for Remarker {
        fn name(&self) -> &str {
            "remarker"
        }
        fn run(&mut self, m: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
            let func = m
                .top_ops()
                .first()
                .and_then(|&t| m.op(t).attr(SYM_NAME))
                .and_then(|a| a.as_str())
                .unwrap_or("?")
                .to_string();
            obs::emit_remark(obs::Remark::applied(
                "remarker",
                "test:1:1",
                format!("visited @{func}"),
            ));
            PassResult::Unchanged
        }
    }

    #[test]
    fn remarks_merge_in_module_order_at_any_thread_count() {
        let names = ["f0", "f1", "f2", "f3", "f4", "f5"];
        let prev = obs::set_remarks_enabled(true);
        let run = |threads: usize| {
            let mut m = funcs_module(&names);
            let reg = DialectRegistry::new();
            let mut diags = DiagnosticEngine::new();
            let mut fp = FunctionPipeline::new();
            fp.add_factory(|| Box::new(Remarker));
            fp.threads = threads;
            fp.run(&mut m, &reg, &mut diags).unwrap();
            fp.remarks().to_vec()
        };
        let r1 = run(1);
        let r8 = run(8);
        obs::set_remarks_enabled(prev);
        assert_eq!(
            r1.iter().map(|r| r.message.as_str()).collect::<Vec<_>>(),
            names
                .iter()
                .map(|n| format!("visited @{n}"))
                .collect::<Vec<_>>()
        );
        assert_eq!(r1, r8, "remark order must not depend on threads");
    }

    #[test]
    fn panicking_function_does_not_poison_siblings() {
        let names = ["ok0", "boom", "ok1", "ok2"];
        let mut m = funcs_module(&names);
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        let mut fp = FunctionPipeline::new();
        fp.add_factory(|| Box::new(PanicOn("boom")));
        fp.add_factory(|| Box::new(Announce));
        fp.threads = 4;
        let err = fp.run(&mut m, &reg, &mut diags).unwrap_err();
        assert!(matches!(err, PipelineError::PassPanicked { .. }));
        // Every sibling still ran its whole pipeline and announced itself;
        // the panicking function's announce never ran.
        let msgs: Vec<String> = diags.take().into_iter().map(|d| d.message).collect();
        for ok in ["ok0", "ok1", "ok2"] {
            assert!(
                msgs.iter()
                    .any(|m| m == &format!("announce: visiting @{ok}")),
                "{msgs:?}"
            );
        }
        assert!(!msgs.iter().any(|m| m == "announce: visiting @boom"));
        // All four functions are still present after splice-back.
        assert_eq!(m.top_ops().len(), 4);
        let failing: Vec<_> = fp
            .function_reports()
            .iter()
            .filter(|r| r.error.is_some())
            .map(|r| r.func.as_str())
            .collect();
        assert_eq!(failing, ["boom"]);
    }

    #[test]
    fn reproducer_names_the_failing_function() {
        let dir = std::env::temp_dir().join(format!(
            "hir-par-repro-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repro.mlir");
        let mut m = funcs_module(&["fine", "bad"]);
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        let mut fp = FunctionPipeline::new();
        fp.add_factory(|| Box::new(PanicOn("bad")));
        fp.threads = 2;
        fp.crash_reproducer = Some(path.clone());
        fp.run(&mut m, &reg, &mut diags).unwrap_err();
        assert_eq!(fp.reproducer_path(), Some(path.as_path()));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("function '@bad'"), "{text}");
        assert!(text.contains("panic-on"), "{text}");
        assert!(
            !text.contains("@fine"),
            "reproducer holds only the failing function: {text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nested_in_outer_pass_manager() {
        let mut m = funcs_module(&["x", "y"]);
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        let mut fp = FunctionPipeline::new();
        fp.add_factory(|| Box::new(Announce));
        fp.threads = 2;
        let mut pm = PassManager::new();
        pm.nest_function_pipeline(fp);
        pm.run(&mut m, &reg, &mut diags).unwrap();
        assert_eq!(pm.timings().len(), 1);
        assert_eq!(pm.timings()[0].name, "function-pipeline");
        assert_eq!(diags.diagnostics().len(), 2);
    }

    #[test]
    fn empty_module_is_a_no_op() {
        let mut m = Module::new();
        let reg = DialectRegistry::new();
        let mut diags = DiagnosticEngine::new();
        let mut fp = FunctionPipeline::new();
        fp.add_factory(|| Box::new(Announce));
        fp.run(&mut m, &reg, &mut diags).unwrap();
        assert!(diags.diagnostics().is_empty());
    }
}
