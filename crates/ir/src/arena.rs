//! A simple generational slot arena used for all IR entities.
//!
//! Every IR object (operation, value, block, region) lives in an arena owned
//! by the enclosing [`crate::Module`] and is referred to by a small copyable
//! id. Generations catch use-after-erase bugs in passes: accessing an erased
//! slot panics with a clear message instead of silently aliasing a new
//! entity.

use std::fmt;
use std::marker::PhantomData;

/// Raw index + generation pair identifying a slot in an [`Arena`].
///
/// The type parameter ties the id to the entity type it indexes so that an
/// operation id can never be used to look up a value, etc.
pub struct Id<T> {
    index: u32,
    generation: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Id<T> {
    #[inline]
    pub(crate) fn new(index: u32, generation: u32) -> Self {
        Id {
            index,
            generation,
            _marker: PhantomData,
        }
    }

    /// The raw slot index. Stable for the lifetime of the entity; reused
    /// after erasure (with a bumped generation).
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl<T> Clone for Id<T> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Id<T> {}
impl<T> PartialEq for Id<T> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.generation == other.generation
    }
}
impl<T> Eq for Id<T> {}
impl<T> std::hash::Hash for Id<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
        self.generation.hash(state);
    }
}
impl<T> PartialOrd for Id<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Id<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.index, self.generation).cmp(&(other.index, other.generation))
    }
}
impl<T> fmt::Debug for Id<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}g{}", self.index, self.generation)
    }
}

#[derive(Clone)]
enum Slot<T> {
    Occupied { generation: u32, data: T },
    Free { next_generation: u32 },
}

/// Generational arena. See module docs.
#[derive(Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Arena<T> {
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live entities.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Exclusive upper bound on raw slot indices ever handed out, including
    /// freed slots. Side tables indexed by [`Id::index`] can size themselves
    /// with this.
    pub fn slot_bound(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub fn alloc(&mut self, data: T) -> Id<T> {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            let generation = match *slot {
                Slot::Free { next_generation } => next_generation,
                Slot::Occupied { .. } => unreachable!("free list pointed at occupied slot"),
            };
            *slot = Slot::Occupied { generation, data };
            Id::new(index, generation)
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot::Occupied {
                generation: 0,
                data,
            });
            Id::new(index, 0)
        }
    }

    /// Returns `true` if `id` refers to a live entity.
    pub fn contains(&self, id: Id<T>) -> bool {
        matches!(
            self.slots.get(id.index()),
            Some(Slot::Occupied { generation, .. }) if *generation == id.generation
        )
    }

    /// # Panics
    /// Panics if `id` was erased or never allocated in this arena.
    #[track_caller]
    pub fn get(&self, id: Id<T>) -> &T {
        match self.slots.get(id.index()) {
            Some(Slot::Occupied { generation, data }) if *generation == id.generation => data,
            _ => panic!("stale or foreign arena id {:?}", id),
        }
    }

    /// # Panics
    /// Panics if `id` was erased or never allocated in this arena.
    #[track_caller]
    pub fn get_mut(&mut self, id: Id<T>) -> &mut T {
        match self.slots.get_mut(id.index()) {
            Some(Slot::Occupied { generation, data }) if *generation == id.generation => data,
            _ => panic!("stale or foreign arena id {:?}", id),
        }
    }

    /// Erase an entity, recycling its slot.
    ///
    /// # Panics
    /// Panics if `id` is already stale.
    #[track_caller]
    pub fn erase(&mut self, id: Id<T>) -> T {
        let slot = self
            .slots
            .get_mut(id.index())
            .expect("arena id out of range");
        match slot {
            Slot::Occupied { generation, .. } if *generation == id.generation => {
                let next = *generation + 1;
                let old = std::mem::replace(
                    slot,
                    Slot::Free {
                        next_generation: next,
                    },
                );
                self.free.push(id.index() as u32);
                self.live -= 1;
                match old {
                    Slot::Occupied { data, .. } => data,
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => panic!("double erase or stale arena id {:?}", id),
        }
    }

    /// Iterate over all live `(id, &data)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Id<T>, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Slot::Occupied { generation, data } => Some((Id::new(i as u32, *generation), data)),
                Slot::Free { .. } => None,
            })
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_roundtrip() {
        let mut a = Arena::new();
        let x = a.alloc(41);
        let y = a.alloc(42);
        assert_eq!(*a.get(x), 41);
        assert_eq!(*a.get(y), 42);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn erase_recycles_slot_with_new_generation() {
        let mut a = Arena::new();
        let x = a.alloc("a");
        assert_eq!(a.erase(x), "a");
        let y = a.alloc("b");
        assert_eq!(y.index(), x.index());
        assert_ne!(x, y, "recycled slot must get a fresh generation");
        assert!(!a.contains(x));
        assert!(a.contains(y));
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_access_panics() {
        let mut a = Arena::new();
        let x = a.alloc(1u8);
        a.erase(x);
        let _ = a.get(x);
    }

    #[test]
    fn iter_skips_erased() {
        let mut a = Arena::new();
        let ids: Vec<_> = (0..5).map(|i| a.alloc(i)).collect();
        a.erase(ids[1]);
        a.erase(ids[3]);
        let live: Vec<i32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    fn mutation_through_get_mut() {
        let mut a = Arena::new();
        let x = a.alloc(vec![1]);
        a.get_mut(x).push(2);
        assert_eq!(a.get(x), &vec![1, 2]);
    }
}
