//! Worklist-driven pattern rewriting (MLIR's greedy pattern driver).
//!
//! Patterns match a single op and either rewrite it (returning
//! [`RewriteStatus::Changed`]) or decline. The driver visits every op,
//! re-queueing users of replaced values until a fixpoint is reached.

use crate::dialect::DialectRegistry;
use crate::module::{Module, OpId, ValueId};
use std::collections::VecDeque;

/// Result of one pattern application attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewriteStatus {
    /// Pattern did not apply.
    NoMatch,
    /// Pattern rewrote the IR; `op` may now be invalid.
    Changed,
}

/// A rewrite pattern on a single operation.
pub trait RewritePattern {
    /// Pattern name (for debugging).
    fn name(&self) -> &str;

    /// Attempt to match and rewrite `op`.
    ///
    /// Implementations must perform all IR mutation through `rewriter` so the
    /// driver can track what changed.
    fn match_and_rewrite(&self, op: OpId, rewriter: &mut Rewriter<'_>) -> RewriteStatus;
}

/// Mutation interface handed to patterns; records changes for the driver.
pub struct Rewriter<'m> {
    module: &'m mut Module,
    registry: &'m DialectRegistry,
    /// Ops whose operands changed (users of replaced values).
    touched: Vec<OpId>,
    /// Ops erased during the current pattern application.
    erased: Vec<OpId>,
}

impl<'m> Rewriter<'m> {
    /// Read access to the module.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Mutable access for mutations not covered by the helpers below.
    /// Prefer the tracked helpers where possible.
    pub fn module_mut(&mut self) -> &mut Module {
        self.module
    }

    /// The dialect registry (to query op traits).
    pub fn registry(&self) -> &DialectRegistry {
        self.registry
    }

    /// Replace all uses of `old` with `new`, re-queueing the affected users.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        let users: Vec<OpId> = self.module.value(old).uses().iter().map(|u| u.op).collect();
        self.module.replace_all_uses(old, new);
        self.touched.extend(users);
    }

    /// Replace the op's results with `new_values` and erase it.
    ///
    /// # Panics
    /// Panics if result/new value counts differ.
    pub fn replace_op(&mut self, op: OpId, new_values: &[ValueId]) {
        let results = self.module.op(op).results().to_vec();
        assert_eq!(
            results.len(),
            new_values.len(),
            "replacement arity mismatch"
        );
        for (old, &new) in results.iter().zip(new_values) {
            if *old != new {
                self.replace_all_uses(*old, new);
            }
        }
        self.erase_op(op);
    }

    /// Erase an op whose results are unused.
    pub fn erase_op(&mut self, op: OpId) {
        // Re-queue defining ops of the operands: they may become dead.
        for &operand in self.module.op(op).operands() {
            if let Some(def) = self.module.defining_op(operand) {
                self.touched.push(def);
            }
        }
        self.module.erase_op(op);
        self.erased.push(op);
    }
}

/// Statistics from a driver run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Number of successful pattern applications.
    pub applications: usize,
    /// Number of driver iterations over the worklist.
    pub iterations: usize,
}

/// Apply `patterns` greedily until fixpoint over all ops under the module's
/// top-level ops. Returns statistics.
pub fn apply_patterns_greedily(
    module: &mut Module,
    registry: &DialectRegistry,
    patterns: &[Box<dyn RewritePattern>],
) -> RewriteStats {
    let mut stats = RewriteStats::default();
    // Seed with every op, innermost first so folding propagates outward.
    let mut worklist: VecDeque<OpId> = VecDeque::new();
    for &top in module.top_ops() {
        let mut post = Vec::new();
        module.walk_post(top, &mut |op| post.push(op));
        worklist.extend(post);
    }

    // Bound iterations defensively: patterns should converge, but a buggy
    // pattern pair must not hang the compiler.
    let max_applications = 64 + module.op_count() * 16 * (1 + patterns.len());

    while let Some(op) = worklist.pop_front() {
        stats.iterations += 1;
        if !module.is_live(op) {
            continue;
        }
        for pattern in patterns {
            let mut rewriter = Rewriter {
                module,
                registry,
                touched: Vec::new(),
                erased: Vec::new(),
            };
            match pattern.match_and_rewrite(op, &mut rewriter) {
                RewriteStatus::NoMatch => continue,
                RewriteStatus::Changed => {
                    let touched = std::mem::take(&mut rewriter.touched);
                    stats.applications += 1;
                    obs::counter_add("rewrite", pattern.name(), 1);
                    assert!(
                        stats.applications <= max_applications,
                        "rewrite driver exceeded {max_applications} applications; \
                         pattern '{}' likely loops",
                        pattern.name()
                    );
                    for t in touched {
                        if module.is_live(t) {
                            worklist.push_back(t);
                        }
                    }
                    if module.is_live(op) {
                        // Re-run remaining patterns on the updated op later.
                        worklist.push_back(op);
                    }
                    break;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrMap, Attribute};
    use crate::location::Location;
    use crate::types::Type;

    /// Folds "t.double(const c)" into a constant 2c.
    struct FoldDouble;
    impl RewritePattern for FoldDouble {
        fn name(&self) -> &str {
            "fold-double"
        }
        fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
            let m = rw.module();
            if m.op(op).name().as_str() != "t.double" {
                return RewriteStatus::NoMatch;
            }
            let src = m.op(op).operands()[0];
            let Some(def) = m.defining_op(src) else {
                return RewriteStatus::NoMatch;
            };
            if m.op(def).name().as_str() != "t.const" {
                return RewriteStatus::NoMatch;
            }
            let v = m.op(def).attr("value").and_then(|a| a.as_int()).unwrap();
            let loc = m.op(op).loc().clone();
            let mut attrs = AttrMap::new();
            attrs.insert("value".into(), Attribute::int(v * 2, 32));
            let m = rw.module_mut();
            let new_op = m.create_op("t.const", vec![], vec![Type::int(32)], attrs, loc);
            m.insert_op_before(op, new_op);
            let new_val = m.op(new_op).results()[0];
            rw.replace_op(op, &[new_val]);
            RewriteStatus::Changed
        }
    }

    /// Erases dead "t.const" ops.
    struct DceConst;
    impl RewritePattern for DceConst {
        fn name(&self) -> &str {
            "dce-const"
        }
        fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
            let m = rw.module();
            if m.op(op).name().as_str() != "t.const" {
                return RewriteStatus::NoMatch;
            }
            if m.op(op)
                .results()
                .iter()
                .any(|&r| !m.value(r).uses().is_empty())
            {
                return RewriteStatus::NoMatch;
            }
            rw.erase_op(op);
            RewriteStatus::Changed
        }
    }

    #[test]
    fn folds_to_fixpoint_and_cleans_up() {
        let mut m = Module::new();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![]);
        let mut attrs = AttrMap::new();
        attrs.insert("value".into(), Attribute::int(3, 32));
        let c = m.create_op(
            "t.const",
            vec![],
            vec![Type::int(32)],
            attrs,
            Location::unknown(),
        );
        m.append_op(b, c);
        let cv = m.op(c).results()[0];
        // double(double(3)) -> 12
        let d1 = m.create_op(
            "t.double",
            vec![cv],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, d1);
        let d1v = m.op(d1).results()[0];
        let d2 = m.create_op(
            "t.double",
            vec![d1v],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, d2);
        let d2v = m.op(d2).results()[0];
        let sink = m.create_op(
            "t.sink",
            vec![d2v],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, sink);
        m.push_top(f);

        let reg = DialectRegistry::new();
        let patterns: Vec<Box<dyn RewritePattern>> = vec![Box::new(FoldDouble), Box::new(DceConst)];
        let stats = apply_patterns_greedily(&mut m, &reg, &patterns);
        assert!(stats.applications >= 2, "{stats:?}");

        // The sink's operand is now a constant 12 and intermediates are gone.
        let sink_operand = m.op(sink).operands()[0];
        let def = m.defining_op(sink_operand).unwrap();
        assert_eq!(m.op(def).name().as_str(), "t.const");
        assert_eq!(m.op(def).attr("value").unwrap().as_int(), Some(12));
        let remaining: Vec<String> = m
            .block(b)
            .ops()
            .iter()
            .map(|&o| m.op(o).name().to_string())
            .collect();
        assert_eq!(remaining, vec!["t.const", "t.sink"]);
    }
}
