//! The IR object graph: operations, SSA values, blocks and regions, all owned
//! by a [`Module`].
//!
//! The design follows MLIR: an *operation* has operands, typed results, named
//! attributes, nested *regions*; a region holds *blocks*; a block holds block
//! arguments and an ordered list of operations. A [`Module`] owns the arenas
//! for all four entity kinds plus an ordered list of top-level operations
//! (HIR functions).
//!
//! All mutation goes through `Module` methods so that use-def chains stay
//! consistent.

use crate::arena::{Arena, Id};
use crate::attributes::{AttrMap, Attribute};
use crate::location::Location;
use crate::types::Type;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::Arc;

/// Id of an operation.
pub type OpId = Id<OpData>;
/// Id of an SSA value (operation result or block argument).
pub type ValueId = Id<ValueData>;
/// Id of a block.
pub type BlockId = Id<BlockData>;
/// Id of a region.
pub type RegionId = Id<RegionData>;

/// Fully-qualified operation name, e.g. `hir.for`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpName(Arc<str>);

impl OpName {
    pub fn new(full: impl AsRef<str>) -> Self {
        OpName(Arc::from(full.as_ref()))
    }

    /// The full `dialect.op` string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The dialect prefix (`hir` in `hir.for`); empty if unqualified.
    pub fn dialect(&self) -> &str {
        self.0.split_once('.').map_or("", |(d, _)| d)
    }

    /// The op suffix (`for` in `hir.for`).
    pub fn op(&self) -> &str {
        self.0.split_once('.').map_or(&self.0, |(_, o)| o)
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl fmt::Debug for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl From<&str> for OpName {
    fn from(s: &str) -> Self {
        OpName::new(s)
    }
}

/// How a value came to exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueDef {
    /// The `index`-th result of an operation.
    OpResult { op: OpId, index: usize },
    /// The `index`-th argument of a block.
    BlockArg { block: BlockId, index: usize },
}

/// One use of a value: operand `operand_index` of `op`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Use {
    pub op: OpId,
    pub operand_index: usize,
}

/// Payload of an SSA value.
#[derive(Clone, Debug)]
pub struct ValueData {
    ty: Type,
    def: ValueDef,
    uses: Vec<Use>,
}

impl ValueData {
    pub fn ty(&self) -> &Type {
        &self.ty
    }
    pub fn def(&self) -> ValueDef {
        self.def
    }
    pub fn uses(&self) -> &[Use] {
        &self.uses
    }
}

/// Payload of an operation.
#[derive(Clone, Debug)]
pub struct OpData {
    name: OpName,
    operands: Vec<ValueId>,
    results: Vec<ValueId>,
    attrs: AttrMap,
    regions: Vec<RegionId>,
    loc: Location,
    parent: Option<BlockId>,
}

impl OpData {
    pub fn name(&self) -> &OpName {
        &self.name
    }
    pub fn operands(&self) -> &[ValueId] {
        &self.operands
    }
    pub fn results(&self) -> &[ValueId] {
        &self.results
    }
    pub fn attrs(&self) -> &AttrMap {
        &self.attrs
    }
    pub fn attr(&self, key: &str) -> Option<&Attribute> {
        self.attrs.get(key)
    }
    pub fn regions(&self) -> &[RegionId] {
        &self.regions
    }
    pub fn loc(&self) -> &Location {
        &self.loc
    }
    /// The block containing this op, or `None` for top-level ops.
    pub fn parent(&self) -> Option<BlockId> {
        self.parent
    }
}

/// Payload of a block.
#[derive(Clone, Debug)]
pub struct BlockData {
    args: Vec<ValueId>,
    ops: Vec<OpId>,
    parent: RegionId,
}

impl BlockData {
    pub fn args(&self) -> &[ValueId] {
        &self.args
    }
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }
    pub fn parent(&self) -> RegionId {
        self.parent
    }
}

/// Payload of a region.
#[derive(Clone, Debug)]
pub struct RegionData {
    blocks: Vec<BlockId>,
    parent: OpId,
}

impl RegionData {
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }
    pub fn parent(&self) -> OpId {
        self.parent
    }
}

/// Owner of the whole IR graph.
///
/// # Examples
///
/// ```
/// use ir::{Module, Type, Attribute, Location};
///
/// let mut m = Module::new();
/// let c = m.create_op(
///     "hir.constant",
///     vec![],
///     vec![Type::index()],
///     [("value".to_string(), Attribute::index(7))].into_iter().collect(),
///     Location::unknown(),
/// );
/// m.push_top(c);
/// assert_eq!(m.op(c).results().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Module {
    ops: Arena<OpData>,
    values: Arena<ValueData>,
    blocks: Arena<BlockData>,
    regions: Arena<RegionData>,
    top: Vec<OpId>,
    /// Bumped by every mutation that changes op placement or order; stamps
    /// [`Self::pos_cache`] entries so stale positions are never served.
    layout_stamp: Cell<u64>,
    /// Lazily-built op-position cache: slot-indexed `(stamp, position)`
    /// pairs, rebuilt one block at a time on demand. Makes
    /// [`Module::position_in_block`] (and through it the verifier's
    /// dominance check) O(1) amortized instead of a linear scan per query.
    pos_cache: RefCell<Vec<(u64, u32)>>,
}

/// Stamp value that never matches [`Module::layout_stamp`]: fresh cache
/// slots start invalid.
const NEVER_STAMP: u64 = u64::MAX;

impl Module {
    pub fn new() -> Self {
        Self::default()
    }

    // ---------------------------------------------------------------- reads

    pub fn op(&self, id: OpId) -> &OpData {
        self.ops.get(id)
    }
    pub fn value(&self, id: ValueId) -> &ValueData {
        self.values.get(id)
    }
    pub fn block(&self, id: BlockId) -> &BlockData {
        self.blocks.get(id)
    }
    pub fn region(&self, id: RegionId) -> &RegionData {
        self.regions.get(id)
    }

    /// Whether `id` still refers to a live operation.
    pub fn is_live(&self, id: OpId) -> bool {
        self.ops.contains(id)
    }

    /// Top-level operations in order (e.g. HIR functions).
    pub fn top_ops(&self) -> &[OpId] {
        &self.top
    }

    /// Type of a value.
    pub fn value_type(&self, v: ValueId) -> Type {
        self.values.get(v).ty.clone()
    }

    /// Number of live operations in the module.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The operation defining `v`, if it is an op result.
    pub fn defining_op(&self, v: ValueId) -> Option<OpId> {
        match self.value(v).def {
            ValueDef::OpResult { op, .. } => Some(op),
            ValueDef::BlockArg { .. } => None,
        }
    }

    /// The region's parent operation, walking up from a block.
    pub fn block_parent_op(&self, b: BlockId) -> OpId {
        let r = self.block(b).parent;
        self.region(r).parent
    }

    /// Iterate over every live op id (unordered).
    pub fn all_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops.iter().map(|(id, _)| id)
    }

    // ------------------------------------------------------------- creation

    /// Create a detached operation with fresh result values.
    ///
    /// The op must subsequently be placed with [`Module::push_top`],
    /// [`Module::append_op`] or [`Module::insert_op`].
    pub fn create_op(
        &mut self,
        name: impl Into<OpName>,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: AttrMap,
        loc: Location,
    ) -> OpId {
        let id = self.ops.alloc(OpData {
            name: name.into(),
            operands: operands.clone(),
            results: Vec::new(),
            attrs,
            regions: Vec::new(),
            loc,
            parent: None,
        });
        for (i, &v) in operands.iter().enumerate() {
            self.values.get_mut(v).uses.push(Use {
                op: id,
                operand_index: i,
            });
        }
        let results: Vec<ValueId> = result_types
            .into_iter()
            .enumerate()
            .map(|(index, ty)| {
                self.values.alloc(ValueData {
                    ty,
                    def: ValueDef::OpResult { op: id, index },
                    uses: Vec::new(),
                })
            })
            .collect();
        self.ops.get_mut(id).results = results;
        id
    }

    /// Add an empty region to `op`, returning its id.
    pub fn add_region(&mut self, op: OpId) -> RegionId {
        let r = self.regions.alloc(RegionData {
            blocks: Vec::new(),
            parent: op,
        });
        self.ops.get_mut(op).regions.push(r);
        r
    }

    /// Append a block with the given argument types to a region.
    pub fn add_block(&mut self, region: RegionId, arg_types: Vec<Type>) -> BlockId {
        let b = self.blocks.alloc(BlockData {
            args: Vec::new(),
            ops: Vec::new(),
            parent: region,
        });
        let args: Vec<ValueId> = arg_types
            .into_iter()
            .enumerate()
            .map(|(index, ty)| {
                self.values.alloc(ValueData {
                    ty,
                    def: ValueDef::BlockArg { block: b, index },
                    uses: Vec::new(),
                })
            })
            .collect();
        self.blocks.get_mut(b).args = args;
        self.regions.get_mut(region).blocks.push(b);
        b
    }

    /// Place a detached op at module top level.
    ///
    /// # Panics
    /// Panics if the op is already placed.
    pub fn push_top(&mut self, op: OpId) {
        assert!(self.op(op).parent.is_none(), "op is already inside a block");
        self.top.push(op);
    }

    /// Append a detached op to the end of `block`.
    pub fn append_op(&mut self, block: BlockId, op: OpId) {
        assert!(self.op(op).parent.is_none(), "op is already inside a block");
        self.bump_layout();
        self.ops.get_mut(op).parent = Some(block);
        self.blocks.get_mut(block).ops.push(op);
    }

    /// Insert a detached op into `block` at position `index`.
    pub fn insert_op(&mut self, block: BlockId, index: usize, op: OpId) {
        assert!(self.op(op).parent.is_none(), "op is already inside a block");
        self.bump_layout();
        self.ops.get_mut(op).parent = Some(block);
        self.blocks.get_mut(block).ops.insert(index, op);
    }

    /// Insert a detached op immediately before `before` in its block.
    ///
    /// # Panics
    /// Panics if `before` is not inside a block.
    pub fn insert_op_before(&mut self, before: OpId, op: OpId) {
        let block = self
            .op(before)
            .parent
            .expect("anchor op has no parent block");
        let index = self.position_in_block(before);
        self.insert_op(block, index, op);
    }

    /// Position of an op inside its parent block.
    ///
    /// O(1) amortized: answered from [`Self::pos_cache`] when the layout has
    /// not changed since the op's block was last indexed; a miss re-indexes
    /// just that block.
    pub fn position_in_block(&self, op: OpId) -> usize {
        let stamp = self.layout_stamp.get();
        if let Some(&(s, p)) = self.pos_cache.borrow().get(op.index()) {
            if s == stamp {
                return p as usize;
            }
        }
        let block = self.op(op).parent.expect("op has no parent block");
        let mut cache = self.pos_cache.borrow_mut();
        let bound = self.ops.slot_bound();
        if cache.len() < bound {
            cache.resize(bound, (NEVER_STAMP, 0));
        }
        for (i, &o) in self.block(block).ops.iter().enumerate() {
            cache[o.index()] = (stamp, i as u32);
        }
        let (s, p) = cache[op.index()];
        assert!(s == stamp, "op missing from its parent block list");
        p as usize
    }

    /// Invalidate [`Self::pos_cache`] after any change to op placement.
    #[inline]
    fn bump_layout(&mut self) {
        let stamp = self.layout_stamp.get();
        // Wrapping to NEVER_STAMP would validate every stale entry at once;
        // practically unreachable (2^64 mutations) but cheap to rule out.
        assert!(stamp < NEVER_STAMP - 1, "layout stamp overflow");
        self.layout_stamp.set(stamp + 1);
    }

    // ------------------------------------------------------------- mutation

    /// Replace operand `index` of `op` with `value`, updating use lists.
    pub fn set_operand(&mut self, op: OpId, index: usize, value: ValueId) {
        let old = self.ops.get(op).operands[index];
        if old == value {
            return;
        }
        self.values
            .get_mut(old)
            .uses
            .retain(|u| !(u.op == op && u.operand_index == index));
        self.values.get_mut(value).uses.push(Use {
            op,
            operand_index: index,
        });
        self.ops.get_mut(op).operands[index] = value;
    }

    /// Replace every use of `old` with `new`.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        assert_ne!(old, new, "replacing a value with itself");
        let uses = std::mem::take(&mut self.values.get_mut(old).uses);
        for u in &uses {
            self.ops.get_mut(u.op).operands[u.operand_index] = new;
        }
        self.values.get_mut(new).uses.extend(uses);
    }

    /// Set (or overwrite) a named attribute on an op.
    pub fn set_attr(&mut self, op: OpId, key: impl Into<String>, value: Attribute) {
        self.ops.get_mut(op).attrs.insert(key.into(), value);
    }

    /// Remove a named attribute from an op.
    pub fn remove_attr(&mut self, op: OpId, key: &str) -> Option<Attribute> {
        self.ops.get_mut(op).attrs.remove(key)
    }

    /// Change the type of a value in place (used by precision optimization).
    pub fn set_value_type(&mut self, v: ValueId, ty: Type) {
        self.values.get_mut(v).ty = ty;
    }

    /// Detach `op` from its parent block (or the top level) without erasing.
    pub fn detach_op(&mut self, op: OpId) {
        self.bump_layout();
        match self.op(op).parent {
            Some(block) => {
                self.blocks.get_mut(block).ops.retain(|&o| o != op);
                self.ops.get_mut(op).parent = None;
            }
            None => self.top.retain(|&o| o != op),
        }
    }

    /// Erase an op, its regions, and its results.
    ///
    /// # Panics
    /// Panics if any result still has uses.
    pub fn erase_op(&mut self, op: OpId) {
        for &r in &self.op(op).results.clone() {
            assert!(
                self.value(r).uses.is_empty(),
                "erasing op {} whose result still has uses",
                self.op(op).name()
            );
        }
        self.detach_op(op);
        self.erase_op_inner(op);
    }

    /// Erase a batch of ops (each with use-free results) in one sweep.
    ///
    /// Equivalent to [`Module::erase_op`] on each, but every affected block
    /// list is compacted exactly once, so erasing `k` ops out of a block of
    /// `n` costs O(n + k) instead of the O(n·k) that per-op removal pays.
    /// Bulk-erasing passes (CSE, DCE) depend on this for linear hot paths.
    ///
    /// # Panics
    /// Panics if any result of a listed op still has uses after the whole
    /// batch is accounted for (uses *between* listed ops are fine only when
    /// the user is also erasing the user, which `erase_op` would reject too).
    pub fn erase_ops(&mut self, ops: &[OpId]) {
        if ops.is_empty() {
            return;
        }
        let doomed: std::collections::HashSet<OpId> = ops.iter().copied().collect();
        for &op in &doomed {
            for &r in self.op(op).results() {
                assert!(
                    self.value(r).uses.iter().all(|u| doomed.contains(&u.op)),
                    "erasing op {} whose result still has uses",
                    self.op(op).name()
                );
            }
        }
        self.bump_layout();
        let parents: std::collections::HashSet<Option<BlockId>> =
            doomed.iter().map(|&op| self.op(op).parent).collect();
        for parent in parents {
            match parent {
                Some(block) => self
                    .blocks
                    .get_mut(block)
                    .ops
                    .retain(|o| !doomed.contains(o)),
                None => self.top.retain(|o| !doomed.contains(o)),
            }
        }
        // Remove all doomed uses from each operand value in ONE retain per
        // value: per-op removal would rescan a shared operand's use list
        // (think a constant feeding thousands of ops) once per erased op.
        let operand_values: std::collections::HashSet<ValueId> = doomed
            .iter()
            .flat_map(|&op| self.op(op).operands().iter().copied())
            .collect();
        for v in operand_values {
            self.values
                .get_mut(v)
                .uses
                .retain(|u| !doomed.contains(&u.op));
        }
        for &op in &doomed {
            // An op nested in another doomed op's region is erased by the
            // recursive sweep before we reach it here.
            if !self.ops.contains(op) {
                continue;
            }
            let data = self.ops.get(op);
            let results = data.results.clone();
            let regions = data.regions.clone();
            for r in regions {
                self.erase_region_inner(r);
            }
            for v in results {
                self.values.erase(v);
            }
            self.ops.erase(op);
        }
    }

    fn erase_op_inner(&mut self, op: OpId) {
        let data = self.ops.get(op);
        let operands = data.operands.clone();
        let results = data.results.clone();
        let regions = data.regions.clone();
        for (i, v) in operands.into_iter().enumerate() {
            // A batch erase may have already dropped the defining op (and its
            // result values) of an operand that only doomed ops consumed.
            if !self.values.contains(v) {
                continue;
            }
            self.values
                .get_mut(v)
                .uses
                .retain(|u| !(u.op == op && u.operand_index == i));
        }
        for r in regions {
            self.erase_region_inner(r);
        }
        for v in results {
            self.values.erase(v);
        }
        self.ops.erase(op);
    }

    fn erase_region_inner(&mut self, region: RegionId) {
        for b in self.regions.get(region).blocks.clone() {
            // Erase ops in reverse so later uses disappear before defs.
            for o in self.blocks.get(b).ops.clone().into_iter().rev() {
                self.erase_op_inner(o);
            }
            for a in self.blocks.get(b).args.clone() {
                self.values.erase(a);
            }
            self.blocks.erase(b);
        }
        self.regions.erase(region);
    }

    // ------------------------------------------------------- extract/splice

    /// Deep-clone the op tree rooted at `root` of `src` into this module,
    /// returning the new (detached) root op id.
    ///
    /// The tree must be *isolated from above*: every operand must be defined
    /// by an op or block argument inside the tree (HIR functions satisfy
    /// this; cross-function references go through symbol attributes). This is
    /// the primitive behind [`Module::split_top`] / [`Module::splice_top`],
    /// which hand whole functions to pass-pipeline worker threads as owned
    /// sub-modules with their own layout-stamp caches.
    ///
    /// # Panics
    /// Panics if an operand of a cloned op is defined outside the tree.
    pub fn clone_op_from(&mut self, src: &Module, root: OpId) -> OpId {
        self.bump_layout();
        let mut value_map: std::collections::HashMap<ValueId, ValueId> =
            std::collections::HashMap::new();
        let mut pairs: Vec<(OpId, OpId)> = Vec::new();
        let new_root = self.clone_structure(src, root, None, &mut value_map, &mut pairs);
        // Second pass: operands may reference results of ops cloned later in
        // the same region (use-before-def across blocks), so the whole tree's
        // values must exist before any operand list is resolved.
        for (s, d) in pairs {
            let operands: Vec<ValueId> = src
                .op(s)
                .operands()
                .iter()
                .map(|v| {
                    *value_map
                        .get(v)
                        .expect("cloned op tree is not isolated from above")
                })
                .collect();
            for (i, &v) in operands.iter().enumerate() {
                self.values.get_mut(v).uses.push(Use {
                    op: d,
                    operand_index: i,
                });
            }
            self.ops.get_mut(d).operands = operands;
        }
        new_root
    }

    /// First clone pass: ops, results, regions, blocks and block arguments,
    /// recording old→new value mappings. Operands stay empty until pass two.
    fn clone_structure(
        &mut self,
        src: &Module,
        op: OpId,
        parent: Option<BlockId>,
        value_map: &mut std::collections::HashMap<ValueId, ValueId>,
        pairs: &mut Vec<(OpId, OpId)>,
    ) -> OpId {
        let sd = src.op(op);
        let name = sd.name().clone();
        let attrs = sd.attrs().clone();
        let loc = sd.loc().clone();
        let id = self.ops.alloc(OpData {
            name,
            operands: Vec::new(),
            results: Vec::new(),
            attrs,
            regions: Vec::new(),
            loc,
            parent,
        });
        let results: Vec<ValueId> = src
            .op(op)
            .results()
            .iter()
            .enumerate()
            .map(|(index, &r)| {
                let nv = self.values.alloc(ValueData {
                    ty: src.value(r).ty().clone(),
                    def: ValueDef::OpResult { op: id, index },
                    uses: Vec::new(),
                });
                value_map.insert(r, nv);
                nv
            })
            .collect();
        self.ops.get_mut(id).results = results;
        pairs.push((op, id));
        for &r in src.op(op).regions() {
            let nr = self.add_region(id);
            for &b in src.region(r).blocks() {
                let arg_types: Vec<Type> = src
                    .block(b)
                    .args()
                    .iter()
                    .map(|&a| src.value(a).ty().clone())
                    .collect();
                let nb = self.add_block(nr, arg_types);
                for (&old, &new) in src.block(b).args().iter().zip(self.block(nb).args()) {
                    value_map.insert(old, new);
                }
                for &o in src.block(b).ops() {
                    let no = self.clone_structure(src, o, Some(nb), value_map, pairs);
                    self.blocks.get_mut(nb).ops.push(no);
                }
            }
        }
        id
    }

    /// Split each top-level op into its own freshly-arena'd module, in
    /// module order. Sub-modules are `Send`, own all their storage, and carry
    /// fresh layout-stamp caches, so a worker pool can run pass pipelines
    /// over them concurrently with no shared state.
    pub fn split_top(&self) -> Vec<Module> {
        self.top
            .iter()
            .map(|&t| {
                let mut sub = Module::new();
                let op = sub.clone_op_from(self, t);
                sub.top.push(op);
                sub
            })
            .collect()
    }

    /// Rebuild a module from per-function sub-modules, splicing every
    /// sub-module's top-level ops back in slice order. Inverse of
    /// [`Module::split_top`] (up to arena ids; the printed form is
    /// identical because value names are assigned positionally).
    pub fn splice_top(subs: &[Module]) -> Module {
        let mut m = Module::new();
        for sub in subs {
            for &t in sub.top_ops() {
                let op = m.clone_op_from(sub, t);
                m.top.push(op);
            }
        }
        m
    }

    // ----------------------------------------------------------------- walk

    /// Pre-order walk of `root` and every op nested in its regions.
    pub fn walk(&self, root: OpId, f: &mut dyn FnMut(OpId)) {
        f(root);
        for &r in self.op(root).regions() {
            for &b in self.region(r).blocks() {
                for &o in self.block(b).ops() {
                    self.walk(o, f);
                }
            }
        }
    }

    /// Post-order walk (children before parents).
    pub fn walk_post(&self, root: OpId, f: &mut dyn FnMut(OpId)) {
        for &r in self.op(root).regions() {
            for &b in self.region(r).blocks() {
                for &o in self.block(b).ops() {
                    self.walk_post(o, f);
                }
            }
        }
        f(root);
    }

    /// Collect, in pre-order, `root` and all nested ops. Useful when the
    /// visitor needs `&mut Module`.
    pub fn collect_ops(&self, root: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        self.walk(root, &mut |op| out.push(op));
        out
    }

    /// Collect every op in the module, walking all top-level ops.
    pub fn collect_all_ops(&self) -> Vec<OpId> {
        let mut out = Vec::new();
        for &t in &self.top {
            self.walk(t, &mut |op| out.push(op));
        }
        out
    }

    /// Whether `maybe_ancestor` is `op` itself or encloses it via regions.
    pub fn is_ancestor(&self, maybe_ancestor: OpId, op: OpId) -> bool {
        let mut cur = op;
        loop {
            if cur == maybe_ancestor {
                return true;
            }
            match self.op(cur).parent {
                Some(b) => cur = self.block_parent_op(b),
                None => return false,
            }
        }
    }

    /// Find the enclosing op with the given name, starting from `op`'s parent.
    pub fn enclosing_op(&self, op: OpId, name: &str) -> Option<OpId> {
        let mut cur = self.op(op).parent?;
        loop {
            let parent = self.block_parent_op(cur);
            if self.op(parent).name().as_str() == name {
                return Some(parent);
            }
            cur = self.op(parent).parent?;
        }
    }
}

/// Compile-time proof that modules (and thus per-function sub-modules) can
/// move to pass-pipeline worker threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Module>()
};

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Module {
        Module::new()
    }

    #[test]
    fn op_name_parsing() {
        let n = OpName::new("hir.mem_read");
        assert_eq!(n.dialect(), "hir");
        assert_eq!(n.op(), "mem_read");
        assert_eq!(n.to_string(), "hir.mem_read");
    }

    #[test]
    fn create_and_use_values() {
        let mut m = mk();
        let c = m.create_op(
            "t.const",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        let v = m.op(c).results()[0];
        let add = m.create_op(
            "t.add",
            vec![v, v],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        assert_eq!(m.value(v).uses().len(), 2);
        assert_eq!(m.op(add).operands(), &[v, v]);
        assert_eq!(m.defining_op(v), Some(c));
    }

    #[test]
    fn regions_blocks_and_args() {
        let mut m = mk();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![Type::int(8), Type::index()]);
        assert_eq!(m.block(b).args().len(), 2);
        let arg0 = m.block(b).args()[0];
        assert_eq!(m.value_type(arg0), Type::int(8));
        assert_eq!(m.block_parent_op(b), f);
    }

    #[test]
    fn replace_all_uses_moves_use_list() {
        let mut m = mk();
        let a = m.create_op(
            "t.a",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        let b = m.create_op(
            "t.b",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        let va = m.op(a).results()[0];
        let vb = m.op(b).results()[0];
        let user = m.create_op(
            "t.use",
            vec![va, va],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.replace_all_uses(va, vb);
        assert!(m.value(va).uses().is_empty());
        assert_eq!(m.value(vb).uses().len(), 2);
        assert_eq!(m.op(user).operands(), &[vb, vb]);
    }

    #[test]
    fn erase_op_recursively_erases_region_contents() {
        let mut m = mk();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![]);
        let c = m.create_op(
            "t.const",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, c);
        let v = m.op(c).results()[0];
        let u = m.create_op(
            "t.use",
            vec![v],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, u);
        m.push_top(f);
        assert_eq!(m.op_count(), 3);
        m.erase_op(f);
        assert_eq!(m.op_count(), 0);
        assert!(m.top_ops().is_empty());
    }

    #[test]
    #[should_panic(expected = "still has uses")]
    fn erase_used_op_panics() {
        let mut m = mk();
        let c = m.create_op(
            "t.const",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        let v = m.op(c).results()[0];
        let _u = m.create_op(
            "t.use",
            vec![v],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.erase_op(c);
    }

    #[test]
    fn insertion_order_and_position() {
        let mut m = mk();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![]);
        let o1 = m.create_op("t.one", vec![], vec![], AttrMap::new(), Location::unknown());
        let o2 = m.create_op("t.two", vec![], vec![], AttrMap::new(), Location::unknown());
        let o3 = m.create_op(
            "t.three",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, o1);
        m.append_op(b, o3);
        m.insert_op_before(o3, o2);
        let names: Vec<_> = m
            .block(b)
            .ops()
            .iter()
            .map(|&o| m.op(o).name().to_string())
            .collect();
        assert_eq!(names, vec!["t.one", "t.two", "t.three"]);
        assert_eq!(m.position_in_block(o2), 1);
    }

    #[test]
    fn position_cache_invalidated_on_layout_change() {
        let mut m = mk();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![]);
        let o1 = m.create_op("t.one", vec![], vec![], AttrMap::new(), Location::unknown());
        let o2 = m.create_op("t.two", vec![], vec![], AttrMap::new(), Location::unknown());
        m.append_op(b, o1);
        m.append_op(b, o2);
        // Prime the cache.
        assert_eq!(m.position_in_block(o1), 0);
        assert_eq!(m.position_in_block(o2), 1);
        // Insert in front: cached positions must shift.
        let o0 = m.create_op(
            "t.zero",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.insert_op(b, 0, o0);
        assert_eq!(m.position_in_block(o0), 0);
        assert_eq!(m.position_in_block(o1), 1);
        assert_eq!(m.position_in_block(o2), 2);
        // Detach and re-append: position moves to the end.
        m.detach_op(o0);
        m.append_op(b, o0);
        assert_eq!(m.position_in_block(o1), 0);
        assert_eq!(m.position_in_block(o0), 2);
        // Slot reuse: erase an op, allocate a new one into (possibly) the
        // same slot, place it elsewhere — must not see the stale position.
        m.detach_op(o0);
        m.erase_op(o0);
        let o4 = m.create_op(
            "t.four",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.insert_op(b, 0, o4);
        assert_eq!(m.position_in_block(o4), 0);
    }

    #[test]
    fn walk_orders() {
        let mut m = mk();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![]);
        let inner = m.create_op(
            "t.loop",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r2 = m.add_region(inner);
        let b2 = m.add_block(r2, vec![]);
        let leaf = m.create_op(
            "t.leaf",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b2, leaf);
        m.append_op(b, inner);
        m.push_top(f);

        let mut pre = Vec::new();
        m.walk(f, &mut |o| pre.push(m.op(o).name().to_string()));
        assert_eq!(pre, vec!["t.func", "t.loop", "t.leaf"]);

        let mut post = Vec::new();
        m.walk_post(f, &mut |o| post.push(m.op(o).name().to_string()));
        assert_eq!(post, vec!["t.leaf", "t.loop", "t.func"]);
    }

    #[test]
    fn ancestor_queries() {
        let mut m = mk();
        let f = m.create_op(
            "t.func",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        let r = m.add_region(f);
        let b = m.add_block(r, vec![]);
        let leaf = m.create_op(
            "t.leaf",
            vec![],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.append_op(b, leaf);
        assert!(m.is_ancestor(f, leaf));
        assert!(!m.is_ancestor(leaf, f));
        assert_eq!(m.enclosing_op(leaf, "t.func"), Some(f));
        assert_eq!(m.enclosing_op(leaf, "t.other"), None);
    }

    /// A two-function module with bodies, block args, nested regions and
    /// operand chains, for clone/split/splice tests.
    fn two_func_module() -> Module {
        let mut m = mk();
        for fname in ["alpha", "beta"] {
            let f = m.create_op(
                "t.func",
                vec![],
                vec![],
                [(
                    crate::symbol::SYM_NAME.to_string(),
                    Attribute::string(fname),
                )]
                .into_iter()
                .collect(),
                Location::file_line_col("split.mlir", 1, 1),
            );
            let r = m.add_region(f);
            let b = m.add_block(r, vec![Type::int(32)]);
            let arg = m.block(b).args()[0];
            let c = m.create_op(
                "t.const",
                vec![],
                vec![Type::int(32)],
                AttrMap::new(),
                Location::unknown(),
            );
            m.append_op(b, c);
            let cv = m.op(c).results()[0];
            let add = m.create_op(
                "t.add",
                vec![arg, cv],
                vec![Type::int(32)],
                AttrMap::new(),
                Location::unknown(),
            );
            m.append_op(b, add);
            let loop_op = m.create_op(
                "t.loop",
                vec![m.op(add).results()[0]],
                vec![],
                AttrMap::new(),
                Location::unknown(),
            );
            let lr = m.add_region(loop_op);
            let lb = m.add_block(lr, vec![Type::index()]);
            let use_outer = m.create_op(
                "t.use",
                vec![cv, m.block(lb).args()[0]],
                vec![],
                AttrMap::new(),
                Location::unknown(),
            );
            m.append_op(lb, use_outer);
            m.append_op(b, loop_op);
            m.push_top(f);
        }
        m
    }

    #[test]
    fn split_splice_roundtrips_printed_form() {
        let m = two_func_module();
        let subs = m.split_top();
        assert_eq!(subs.len(), 2);
        for sub in &subs {
            assert_eq!(sub.top_ops().len(), 1);
        }
        let merged = Module::splice_top(&subs);
        assert_eq!(
            crate::printer::print_module(&m),
            crate::printer::print_module(&merged)
        );
        assert_eq!(m.op_count(), merged.op_count());
    }

    #[test]
    fn clone_op_from_rebuilds_use_def_chains() {
        let m = two_func_module();
        let mut dst = mk();
        let root = dst.clone_op_from(&m, m.top_ops()[0]);
        dst.push_top(root);
        // Every operand in the clone must be a live value whose use list
        // points back at the using op.
        for op in dst.collect_ops(root) {
            for (i, &v) in dst.op(op).operands().iter().enumerate() {
                assert!(dst
                    .value(v)
                    .uses()
                    .iter()
                    .any(|u| u.op == op && u.operand_index == i));
            }
        }
        // Mutating the clone leaves the source untouched.
        let ops = dst.collect_ops(root);
        let last = *ops.last().unwrap();
        dst.detach_op(last);
        dst.erase_op(last);
        assert_eq!(m.op_count(), 2 * 5);
    }

    #[test]
    #[should_panic(expected = "isolated from above")]
    fn clone_non_isolated_tree_panics() {
        let mut m = mk();
        let c = m.create_op(
            "t.const",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        m.push_top(c);
        let v = m.op(c).results()[0];
        let user = m.create_op(
            "t.use",
            vec![v],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.push_top(user);
        let mut dst = mk();
        // `user` references a value defined outside its own tree.
        dst.clone_op_from(&m, user);
    }

    #[test]
    fn set_operand_updates_uses() {
        let mut m = mk();
        let a = m.create_op(
            "t.a",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        let b = m.create_op(
            "t.b",
            vec![],
            vec![Type::int(32)],
            AttrMap::new(),
            Location::unknown(),
        );
        let va = m.op(a).results()[0];
        let vb = m.op(b).results()[0];
        let u = m.create_op(
            "t.use",
            vec![va],
            vec![],
            AttrMap::new(),
            Location::unknown(),
        );
        m.set_operand(u, 0, vb);
        assert!(m.value(va).uses().is_empty());
        assert_eq!(
            m.value(vb).uses(),
            &[Use {
                op: u,
                operand_index: 0
            }]
        );
    }
}
