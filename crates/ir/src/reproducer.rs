//! MLIR-style crash reproducers.
//!
//! When a pass panics (or, under `--verify-each`, leaves the module in a
//! state the verifier rejects), the pass manager snapshots the IR *before*
//! the failing pass and writes it to a reproducer file together with the
//! remaining pipeline. The file is an ordinary `.mlir` input — the header is
//! line comments the parser skips — so `hirc reproducer.mlir` re-parses it,
//! detects the embedded pipeline, and re-triggers the failure with no other
//! flags.
//!
//! ```text
//! // HIR crash reproducer
//! // error: pass 'hir-cse' panicked: index out of bounds
//! // pipeline: hir-cse,hir-retime
//! "hir.func"() ({ ... }) : () -> ()
//! ```

use std::fmt::Write as _;

/// Marker on the first line of every reproducer file.
pub const REPRODUCER_HEADER: &str = "// HIR crash reproducer";

/// A parsed reproducer file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reproducer {
    /// The failure description recorded when the reproducer was written.
    pub error: String,
    /// Pass names of the remaining pipeline, starting with the failing pass.
    pub pipeline: Vec<String>,
    /// The full file text (header included): feed it straight to
    /// [`crate::parse_module`], which skips the comment header.
    pub ir: String,
}

/// Render a reproducer file: header comments followed by the pre-pass IR.
pub fn format_reproducer(error: &str, pipeline: &[String], ir_text: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{REPRODUCER_HEADER}");
    // Keep the error on one comment line so the file stays parseable even
    // when the panic message contains newlines.
    let one_line = error.replace('\n', " \\n ");
    let _ = writeln!(out, "// error: {one_line}");
    let _ = writeln!(out, "// pipeline: {}", pipeline.join(","));
    out.push_str(ir_text);
    if !ir_text.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Recognize and decode a reproducer file. Returns `None` when `text` is not
/// a reproducer (no header within the leading comment block).
pub fn parse_reproducer(text: &str) -> Option<Reproducer> {
    let mut error = String::new();
    let mut pipeline: Option<Vec<String>> = None;
    let mut saw_header = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if !trimmed.starts_with("//") {
            break; // end of the leading comment block
        }
        if trimmed == REPRODUCER_HEADER {
            saw_header = true;
        } else if let Some(rest) = trimmed.strip_prefix("// error:") {
            error = rest.trim().to_string();
        } else if let Some(rest) = trimmed.strip_prefix("// pipeline:") {
            pipeline = Some(
                rest.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect(),
            );
        }
    }
    if !saw_header {
        return None;
    }
    Some(Reproducer {
        error,
        pipeline: pipeline.unwrap_or_default(),
        ir: text.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_header_and_pipeline() {
        let ir = "\"t.x\"() : () -> ()\n";
        let text = format_reproducer(
            "pass 'a' panicked: boom",
            &["a".to_string(), "b".to_string()],
            ir,
        );
        let r = parse_reproducer(&text).expect("is a reproducer");
        assert_eq!(r.error, "pass 'a' panicked: boom");
        assert_eq!(r.pipeline, vec!["a", "b"]);
        // The whole file re-parses as a module (comments skipped).
        let m = crate::parser::parse_module(&r.ir).expect("reproducer IR parses");
        assert_eq!(m.top_ops().len(), 1);
    }

    #[test]
    fn multiline_panic_messages_stay_on_one_comment_line() {
        let text = format_reproducer("a\nb", &[], "");
        assert!(parse_reproducer(&text).unwrap().error.contains("a \\n b"));
        assert_eq!(
            text.lines().filter(|l| l.starts_with("// error:")).count(),
            1
        );
    }

    #[test]
    fn ordinary_files_are_not_reproducers() {
        assert!(parse_reproducer("// a comment\n\"t.x\"() : () -> ()\n").is_none());
        assert!(parse_reproducer("").is_none());
    }
}
