//! Dialect and operation registration.
//!
//! A [`Dialect`] contributes a set of [`OpSpec`]s: per-op structural
//! constraints, trait flags and a verifier callback. The [`DialectRegistry`]
//! plays the role of MLIR's `MLIRContext`: the verifier and passes consult it
//! to check and transform ops generically.

use crate::diagnostics::DiagnosticEngine;
use crate::module::{Module, OpId};
use std::collections::HashMap;
use std::fmt;

/// Trait flags an op can carry (a tiny subset of MLIR's op traits).
pub mod traits {
    /// Must be the last op in its block.
    pub const TERMINATOR: u32 = 1 << 0;
    /// No side effects: eligible for CSE and DCE.
    pub const PURE: u32 = 1 << 1;
    /// Materializes a compile-time constant (has a `value` attribute).
    pub const CONSTANT_LIKE: u32 = 1 << 2;
    /// Commutative binary op (operands may be canonically reordered).
    pub const COMMUTATIVE: u32 = 1 << 3;
    /// Writes or reads memory / has observable effects tied to time.
    pub const MEMORY_EFFECT: u32 = 1 << 4;
    /// Defines a new scheduling scope with its own time variable.
    pub const TIME_SCOPE: u32 = 1 << 5;
    /// Symbol-defining op (e.g. a function).
    pub const SYMBOL: u32 = 1 << 6;
}

/// Expected count for operands/results/regions: exact or variadic minimum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n`.
    Exact(usize),
    /// At least `n`.
    AtLeast(usize),
    /// Anything.
    Any,
}

impl Arity {
    /// Whether `n` satisfies this arity constraint.
    pub fn check(self, n: usize) -> bool {
        match self {
            Arity::Exact(k) => n == k,
            Arity::AtLeast(k) => n >= k,
            Arity::Any => true,
        }
    }
}

impl fmt::Display for Arity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arity::Exact(k) => write!(f, "exactly {k}"),
            Arity::AtLeast(k) => write!(f, "at least {k}"),
            Arity::Any => write!(f, "any number of"),
        }
    }
}

/// Per-op verification callback.
pub type OpVerifier = fn(&Module, OpId, &mut DiagnosticEngine);

/// Static description of one operation kind.
#[derive(Clone)]
pub struct OpSpec {
    name: String,
    traits: u32,
    operands: Arity,
    results: Arity,
    regions: Arity,
    verifier: Option<OpVerifier>,
    summary: String,
}

impl OpSpec {
    /// Start describing an op with the fully-qualified `dialect.op` name.
    pub fn new(name: impl Into<String>) -> Self {
        OpSpec {
            name: name.into(),
            traits: 0,
            operands: Arity::Any,
            results: Arity::Any,
            regions: Arity::Exact(0),
            verifier: None,
            summary: String::new(),
        }
    }

    /// Add trait flags (see [`traits`]).
    pub fn with_traits(mut self, t: u32) -> Self {
        self.traits |= t;
        self
    }

    /// Constrain the operand count.
    pub fn with_operands(mut self, a: Arity) -> Self {
        self.operands = a;
        self
    }

    /// Constrain the result count.
    pub fn with_results(mut self, a: Arity) -> Self {
        self.results = a;
        self
    }

    /// Constrain the region count.
    pub fn with_regions(mut self, a: Arity) -> Self {
        self.regions = a;
        self
    }

    /// Install a semantic verifier run after structural checks.
    pub fn with_verifier(mut self, v: OpVerifier) -> Self {
        self.verifier = Some(v);
        self
    }

    /// One-line human-readable summary (shown by `--help`-style listings).
    pub fn with_summary(mut self, s: impl Into<String>) -> Self {
        self.summary = s.into();
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }
    pub fn has_trait(&self, t: u32) -> bool {
        self.traits & t != 0
    }
    pub fn operand_arity(&self) -> Arity {
        self.operands
    }
    pub fn result_arity(&self) -> Arity {
        self.results
    }
    pub fn region_arity(&self) -> Arity {
        self.regions
    }
    pub fn verifier(&self) -> Option<OpVerifier> {
        self.verifier
    }
    pub fn summary(&self) -> &str {
        &self.summary
    }
}

impl fmt::Debug for OpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpSpec")
            .field("name", &self.name)
            .field("traits", &format_args!("{:#b}", self.traits))
            .finish_non_exhaustive()
    }
}

/// A dialect: a named bundle of op specs.
#[derive(Debug, Default)]
pub struct Dialect {
    name: String,
    ops: Vec<OpSpec>,
}

impl Dialect {
    pub fn new(name: impl Into<String>) -> Self {
        Dialect {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register an op spec; its name must be prefixed by this dialect.
    ///
    /// # Panics
    /// Panics if the spec's name is not within this dialect.
    pub fn add_op(&mut self, spec: OpSpec) -> &mut Self {
        assert!(
            spec.name().starts_with(&format!("{}.", self.name)),
            "op {} registered on wrong dialect {}",
            spec.name(),
            self.name
        );
        self.ops.push(spec);
        self
    }

    pub fn ops(&self) -> &[OpSpec] {
        &self.ops
    }
}

/// The registry of all loaded dialects (MLIR's context role).
#[derive(Debug, Default)]
pub struct DialectRegistry {
    dialects: Vec<String>,
    specs: HashMap<String, OpSpec>,
}

impl DialectRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a dialect, registering all its op specs.
    pub fn register(&mut self, dialect: Dialect) {
        for spec in &dialect.ops {
            self.specs.insert(spec.name().to_string(), spec.clone());
        }
        self.dialects.push(dialect.name);
    }

    /// Names of loaded dialects.
    pub fn dialects(&self) -> &[String] {
        &self.dialects
    }

    /// Look up the spec for an op name.
    pub fn spec(&self, name: &str) -> Option<&OpSpec> {
        self.specs.get(name)
    }

    /// Whether the op has the given trait; unknown ops have no traits.
    pub fn op_has_trait(&self, name: &str, t: u32) -> bool {
        self.spec(name).is_some_and(|s| s.has_trait(t))
    }

    /// Iterate all registered op specs in name order.
    pub fn all_specs(&self) -> Vec<&OpSpec> {
        let mut v: Vec<&OpSpec> = self.specs.values().collect();
        v.sort_by(|a, b| a.name().cmp(b.name()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_checks() {
        assert!(Arity::Exact(2).check(2));
        assert!(!Arity::Exact(2).check(3));
        assert!(Arity::AtLeast(1).check(5));
        assert!(!Arity::AtLeast(1).check(0));
        assert!(Arity::Any.check(0));
    }

    #[test]
    fn registry_lookup_and_traits() {
        let mut d = Dialect::new("x");
        d.add_op(OpSpec::new("x.add").with_traits(traits::PURE | traits::COMMUTATIVE));
        d.add_op(OpSpec::new("x.store").with_traits(traits::MEMORY_EFFECT));
        let mut reg = DialectRegistry::new();
        reg.register(d);
        assert!(reg.op_has_trait("x.add", traits::PURE));
        assert!(reg.op_has_trait("x.add", traits::COMMUTATIVE));
        assert!(!reg.op_has_trait("x.store", traits::PURE));
        assert!(!reg.op_has_trait("y.unknown", traits::PURE));
        assert_eq!(reg.dialects(), &["x".to_string()]);
    }

    #[test]
    #[should_panic(expected = "wrong dialect")]
    fn cross_dialect_registration_rejected() {
        let mut d = Dialect::new("x");
        d.add_op(OpSpec::new("y.add"));
    }
}
