//! # `synth` — FPGA resource estimation (the Vivado-synthesis stand-in)
//!
//! Maps a [`verilog::Design`] onto a Xilinx-7-series-like fabric and counts
//! LUTs, flip-flops, DSP blocks and block RAMs, using the well-known
//! mapping rules for that architecture:
//!
//! * a `w`-bit add/subtract costs `w` LUTs (carry chain);
//! * a wide multiply maps to DSP48-style blocks (25×18 each); narrow or
//!   constant multiplies stay in LUTs;
//! * bitwise logic and 2:1 muxes pack two bits per LUT6;
//! * registers cost one FF per bit;
//! * memories map by their `ram_style` attribute — block RAM (18Kb units),
//!   distributed LUT RAM (64×1 per LUT single-port, 32×1 dual-port) or
//!   plain registers;
//! * comparisons use the carry chain at roughly one LUT per two bits.
//!
//! The paper's Tables 4 and 5 compare *relative* LUT/FF/DSP/BRAM usage of
//! HIR-generated versus HLS-generated RTL. A deterministic mapper preserves
//! those relations because the differences originate in the RTL itself
//! (extra pipeline registers, wider counters, handshake logic), not in
//! vendor-tool heuristics.

use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, AddAssign};
use verilog::{BinOp, Design, Expr, MemDecl, NetKind, Stmt, UnOp, VModule};

/// Counted FPGA resources.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Resources {
    pub lut: u64,
    pub ff: u64,
    pub dsp: u64,
    pub bram: u64,
}

impl Resources {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, o: Resources) -> Resources {
        Resources {
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            dsp: self.dsp + o.dsp,
            bram: self.bram + o.bram,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, o: Resources) {
        *self = *self + o;
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT={} FF={} DSP={} BRAM={}",
            self.lut, self.ff, self.dsp, self.bram
        )
    }
}

/// Tunable cost model (defaults approximate a 7-series fabric).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Minimum operand width for a multiply to claim a DSP block.
    pub dsp_mult_threshold: u32,
    /// DSP multiplier geometry (25x18 on 7-series).
    pub dsp_a_width: u32,
    pub dsp_b_width: u32,
    /// Block RAM unit capacity in bits (BRAM18).
    pub bram_bits: u64,
    /// Max native BRAM word width before cascading.
    pub bram_max_width: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            dsp_mult_threshold: 11,
            dsp_a_width: 25,
            dsp_b_width: 18,
            bram_bits: 18 * 1024,
            bram_max_width: 18,
        }
    }
}

/// Estimate resources of `top` (recursively including its instances).
///
/// # Panics
/// Panics if an instantiated module is missing from the design — external
/// blackboxes must be present (or use [`estimate_module`] per module).
pub fn estimate_design(design: &Design, top: &str, model: &CostModel) -> Resources {
    let mut memo: HashMap<String, Resources> = HashMap::new();
    estimate_rec(design, top, model, &mut memo)
}

/// Per-module breakdown of `top`'s resources: `(module name, instance
/// count, per-instance resources)`, sorted by total LUT contribution.
pub fn estimate_breakdown(
    design: &Design,
    top: &str,
    model: &CostModel,
) -> Vec<(String, u64, Resources)> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    fn count(design: &Design, name: &str, counts: &mut HashMap<String, u64>) {
        *counts.entry(name.to_string()).or_default() += 1;
        if let Some(m) = design.find(name) {
            for inst in &m.instances {
                count(design, &inst.module, counts);
            }
        }
    }
    count(design, top, &mut counts);
    let mut rows: Vec<(String, u64, Resources)> = counts
        .into_iter()
        .filter_map(|(name, n)| {
            design
                .find(&name)
                .map(|m| (name, n, estimate_module(m, model)))
        })
        .collect();
    rows.sort_by_key(|(_, n, r)| std::cmp::Reverse(n * r.lut));
    rows
}

fn estimate_rec(
    design: &Design,
    name: &str,
    model: &CostModel,
    memo: &mut HashMap<String, Resources>,
) -> Resources {
    if let Some(&r) = memo.get(name) {
        return r;
    }
    let module = design
        .find(name)
        .unwrap_or_else(|| panic!("module '{name}' not found in design (missing blackbox?)"));
    let mut total = estimate_module(module, model);
    for inst in &module.instances {
        total += estimate_rec(design, &inst.module, model, memo);
    }
    memo.insert(name.to_string(), total);
    total
}

/// Estimate one module in isolation (instances excluded).
pub fn estimate_module(m: &VModule, model: &CostModel) -> Resources {
    let mut r = Resources::new();

    // Registers.
    for n in &m.nets {
        if n.kind == NetKind::Reg {
            r.ff += n.width as u64;
        }
    }
    for p in &m.ports {
        if p.is_reg {
            r.ff += p.width as u64;
        }
    }

    // Memories.
    for mem in &m.memories {
        r += memory_cost(m, mem, model);
    }

    // Combinational logic.
    let mut est = ExprEstimator {
        m,
        model,
        r: Resources::new(),
    };
    for a in &m.assigns {
        est.expr(&a.rhs);
    }
    for blk in &m.always {
        for s in &blk.stmts {
            est.stmt(s);
        }
    }
    r += est.r;
    r
}

fn memory_cost(m: &VModule, mem: &MemDecl, model: &CostModel) -> Resources {
    let mut r = Resources::new();
    let style = mem.style.as_deref().unwrap_or("bram");
    match style {
        "bram" => {
            let width_units = mem.width.div_ceil(model.bram_max_width) as u64;
            let depth_bits = mem.depth * model.bram_max_width as u64;
            let depth_units = depth_bits.div_ceil(model.bram_bits).max(1);
            r.bram += width_units * depth_units;
        }
        "lutram" => {
            // Dual-port when reads and writes use distinct addressing.
            let dual = is_dual_ported(m, &mem.name);
            let per_lut_depth = if dual { 32 } else { 64 };
            r.lut += mem.depth.div_ceil(per_lut_depth).max(1) * mem.width as u64;
        }
        _ => {
            r.ff += mem.depth * mem.width as u64;
            // Asynchronous read mux over the register file.
            r.lut += (mem.depth.saturating_sub(1)) * (mem.width as u64).div_ceil(2);
        }
    }
    r
}

/// A memory is dual-ported if it is both read and written and the module
/// drives them through different address expressions.
fn is_dual_ported(m: &VModule, mem_name: &str) -> bool {
    let mut read_addrs: Vec<String> = Vec::new();
    let mut write_addrs: Vec<String> = Vec::new();
    for a in &m.assigns {
        collect_mem_reads(&a.rhs, mem_name, &mut read_addrs);
    }
    for blk in &m.always {
        for s in &blk.stmts {
            scan_stmt(s, mem_name, &mut read_addrs, &mut write_addrs);
        }
    }
    if read_addrs.is_empty() || write_addrs.is_empty() {
        return false;
    }
    read_addrs.iter().any(|ra| !write_addrs.contains(ra))
}

fn scan_stmt(
    s: &Stmt,
    mem_name: &str,
    read_addrs: &mut Vec<String>,
    write_addrs: &mut Vec<String>,
) {
    match s {
        Stmt::NonBlocking { lhs, rhs } => {
            if let verilog::LValue::MemElem { mem, addr } = lhs {
                if mem == mem_name {
                    write_addrs.push(verilog::print_expr(addr));
                }
            }
            collect_mem_reads(rhs, mem_name, read_addrs);
        }
        Stmt::If { cond, then, els } => {
            collect_mem_reads(cond, mem_name, read_addrs);
            for t in then {
                scan_stmt(t, mem_name, read_addrs, write_addrs);
            }
            for e in els {
                scan_stmt(e, mem_name, read_addrs, write_addrs);
            }
        }
        Stmt::Assert { .. } => {}
    }
}

fn collect_mem_reads(e: &Expr, mem_name: &str, out: &mut Vec<String>) {
    match e {
        Expr::MemRead { mem, addr } => {
            if mem == mem_name {
                out.push(verilog::print_expr(addr));
            }
            collect_mem_reads(addr, mem_name, out);
        }
        Expr::Slice { base, .. } => collect_mem_reads(base, mem_name, out),
        Expr::Unary { arg, .. } => collect_mem_reads(arg, mem_name, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_mem_reads(lhs, mem_name, out);
            collect_mem_reads(rhs, mem_name, out);
        }
        Expr::Ternary { cond, then, els } => {
            collect_mem_reads(cond, mem_name, out);
            collect_mem_reads(then, mem_name, out);
            collect_mem_reads(els, mem_name, out);
        }
        Expr::Concat(parts) => {
            for p in parts {
                collect_mem_reads(p, mem_name, out);
            }
        }
        Expr::SignExtend { arg, .. } => collect_mem_reads(arg, mem_name, out),
        Expr::Const { .. } | Expr::Ref(_) => {}
    }
}

struct ExprEstimator<'a> {
    m: &'a VModule,
    model: &'a CostModel,
    r: Resources,
}

impl ExprEstimator<'_> {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::NonBlocking { lhs, rhs } => {
                if let verilog::LValue::MemElem { addr, .. } = lhs {
                    self.expr(addr);
                }
                self.expr(rhs);
            }
            Stmt::If { cond, then, els } => {
                self.expr(cond);
                for t in then {
                    self.stmt(t);
                }
                for e in els {
                    self.stmt(e);
                }
            }
            Stmt::Assert { .. } => {} // simulation-only
        }
    }

    /// Width of an expression, for costing.
    fn width(&self, e: &Expr) -> u32 {
        match e {
            Expr::Const { width, .. } => *width,
            Expr::Ref(n) => self.m.width_of(n).unwrap_or(1),
            Expr::MemRead { mem, .. } => self.m.width_of(mem).unwrap_or(32),
            Expr::Slice { hi, lo, .. } => hi - lo + 1,
            Expr::Unary { op, arg } => match op {
                UnOp::Not => self.width(arg),
                UnOp::LNot | UnOp::RedOr => 1,
            },
            Expr::Binary { op, lhs, rhs } => {
                if op.is_comparison() {
                    1
                } else if *op == BinOp::Mul {
                    (self.width(lhs) + self.width(rhs)).min(64)
                } else {
                    self.width(lhs).max(self.width(rhs))
                }
            }
            Expr::Ternary { then, els, .. } => self.width(then).max(self.width(els)),
            Expr::Concat(parts) => parts.iter().map(|p| self.width(p)).sum(),
            Expr::SignExtend { to, .. } => *to,
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Const { .. } | Expr::Ref(_) => {}
            Expr::MemRead { addr, .. } => self.expr(addr),
            Expr::Slice { base, .. } => self.expr(base),
            Expr::Unary { op, arg } => {
                self.expr(arg);
                let w = self.width(arg) as u64;
                match op {
                    UnOp::Not => {} // absorbed into downstream LUTs
                    UnOp::LNot | UnOp::RedOr => self.r.lut += w.div_ceil(6),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
                let wl = self.width(lhs);
                let wr = self.width(rhs);
                let w = wl.max(wr) as u64;
                match op {
                    BinOp::Add | BinOp::Sub => self.r.lut += w,
                    BinOp::Mul => self.mult(lhs, rhs, wl, wr),
                    BinOp::And | BinOp::Or | BinOp::Xor => self.r.lut += w.div_ceil(2),
                    BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                        if matches!(**rhs, Expr::Const { .. }) {
                            // Constant shift: pure wiring.
                        } else {
                            // Barrel shifter.
                            let stages = (64 - (w.max(2) - 1).leading_zeros()) as u64;
                            self.r.lut += w * stages / 2;
                        }
                    }
                    BinOp::Eq | BinOp::Ne => self.r.lut += w.div_ceil(3),
                    BinOp::SLt | BinOp::SLe | BinOp::SGt | BinOp::SGe | BinOp::ULt | BinOp::ULe => {
                        self.r.lut += w.div_ceil(2)
                    }
                }
            }
            Expr::Ternary { cond, then, els } => {
                self.expr(cond);
                self.expr(then);
                self.expr(els);
                let w = self.width(then).max(self.width(els)) as u64;
                self.r.lut += w.div_ceil(2);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    self.expr(p);
                }
            }
            Expr::SignExtend { arg, .. } => self.expr(arg),
        }
    }

    fn mult(&mut self, lhs: &Expr, rhs: &Expr, wl: u32, wr: u32) {
        let lhs_const = matches!(lhs, Expr::Const { .. });
        let rhs_const = matches!(rhs, Expr::Const { .. });
        if lhs_const || rhs_const {
            // Constant multiply: shift-add network in LUTs.
            let (cw, vw) = if lhs_const { (wl, wr) } else { (wr, wl) };
            self.r.lut += (vw as u64) * (cw as u64).div_ceil(8).max(1);
            return;
        }
        let small = wl.min(wr);
        let big = wl.max(wr);
        if small < self.model.dsp_mult_threshold {
            // Small multiply in fabric: ~ w*w/2 LUTs.
            self.r.lut += (wl as u64 * wr as u64).div_ceil(2);
        } else {
            // Area-based DSP48 tiling: a 32x32 multiply costs 3 blocks on
            // 7-series (two 25x18 partial products plus a cascade).
            let area = big as u64 * small as u64;
            let unit = self.model.dsp_a_width as u64 * self.model.dsp_b_width as u64;
            self.r.dsp += area.div_ceil(unit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verilog::{Dir, Expr, LValue, VModule};

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn registers_count_as_ffs() {
        let mut m = VModule::new("t");
        m.reg("a", 8);
        m.reg("b", 32);
        m.wire("c", 16);
        let r = estimate_module(&m, &model());
        assert_eq!(r.ff, 40);
        assert_eq!(r.lut, 0);
    }

    #[test]
    fn adders_cost_one_lut_per_bit() {
        let mut m = VModule::new("t");
        m.port("a", Dir::Input, 32);
        m.port("b", Dir::Input, 32);
        m.wire("s", 32);
        m.assign("s", Expr::add(Expr::r("a"), Expr::r("b")));
        let r = estimate_module(&m, &model());
        assert_eq!(r.lut, 32);
    }

    #[test]
    fn wide_multiply_claims_dsp_narrow_stays_in_luts() {
        let mut m = VModule::new("t");
        m.port("a", Dir::Input, 32);
        m.port("b", Dir::Input, 32);
        m.port("x", Dir::Input, 6);
        m.port("y", Dir::Input, 6);
        m.wire("p", 64);
        m.wire("q", 12);
        m.assign("p", Expr::bin(BinOp::Mul, Expr::r("a"), Expr::r("b")));
        m.assign("q", Expr::bin(BinOp::Mul, Expr::r("x"), Expr::r("y")));
        let r = estimate_module(&m, &model());
        // 32x32 on 25x18 DSPs: ceil(1024/450) = 3 (two partials + cascade).
        assert_eq!(r.dsp, 3);
        assert!(r.lut >= 18, "narrow multiply in LUTs, got {}", r.lut);
    }

    #[test]
    fn constant_multiply_uses_no_dsp() {
        let mut m = VModule::new("t");
        m.port("a", Dir::Input, 32);
        m.wire("p", 40);
        m.assign("p", Expr::bin(BinOp::Mul, Expr::r("a"), Expr::c(100, 8)));
        let r = estimate_module(&m, &model());
        assert_eq!(r.dsp, 0);
        assert!(r.lut > 0);
    }

    #[test]
    fn bram_and_lutram_mapping() {
        let mut m = VModule::new("t");
        m.memory("big", 32, 1024, Some("bram")); // 2 width units of 18
        m.memory("small", 8, 32, Some("lutram"));
        let r = estimate_module(&m, &model());
        assert_eq!(r.bram, 2);
        // 32-deep single-port lutram: 1 LUT per bit -> 8 LUTs.
        assert_eq!(r.lut, 8);
    }

    #[test]
    fn dual_port_lutram_costs_double() {
        let mut single = VModule::new("s");
        single.port("clk", Dir::Input, 1);
        single.port("addr", Dir::Input, 6);
        single.memory("ram", 8, 64, Some("lutram"));
        single.wire("q", 8);
        single.assign(
            "q",
            Expr::MemRead {
                mem: "ram".into(),
                addr: Box::new(Expr::r("addr")),
            },
        );
        single.main_always().stmts.push(Stmt::NonBlocking {
            lhs: LValue::MemElem {
                mem: "ram".into(),
                addr: Expr::r("addr"),
            },
            rhs: Expr::c(0, 8),
        });
        let r_single = estimate_module(&single, &model());

        let mut dual = VModule::new("d");
        dual.port("clk", Dir::Input, 1);
        dual.port("raddr", Dir::Input, 6);
        dual.port("waddr", Dir::Input, 6);
        dual.memory("ram", 8, 64, Some("lutram"));
        dual.wire("q", 8);
        dual.assign(
            "q",
            Expr::MemRead {
                mem: "ram".into(),
                addr: Box::new(Expr::r("raddr")),
            },
        );
        dual.main_always().stmts.push(Stmt::NonBlocking {
            lhs: LValue::MemElem {
                mem: "ram".into(),
                addr: Expr::r("waddr"),
            },
            rhs: Expr::c(0, 8),
        });
        let r_dual = estimate_module(&dual, &model());
        assert!(
            r_dual.lut > r_single.lut,
            "dual-port LUTRAM must cost more: {} vs {}",
            r_dual.lut,
            r_single.lut
        );
    }

    #[test]
    fn hierarchical_estimation_sums_instances() {
        let mut child = VModule::new("child");
        child.reg("r", 16);
        let mut top = VModule::new("top");
        top.reg("r", 4);
        top.instances.push(verilog::Instance {
            module: "child".into(),
            name: "u0".into(),
            connections: vec![],
        });
        top.instances.push(verilog::Instance {
            module: "child".into(),
            name: "u1".into(),
            connections: vec![],
        });
        let mut d = Design::new();
        d.add(child);
        d.add(top);
        let r = estimate_design(&d, "top", &model());
        assert_eq!(r.ff, 4 + 16 + 16);
    }

    #[test]
    fn assertions_are_free() {
        let mut m = VModule::new("t");
        m.port("clk", Dir::Input, 1);
        m.main_always().stmts.push(Stmt::Assert {
            guard: Expr::r("clk"),
            cond: Expr::r("clk"),
            message: "x".into(),
        });
        let r = estimate_module(&m, &model());
        assert_eq!(r, Resources::new());
    }

    #[test]
    fn breakdown_accounts_for_instance_multiplicity() {
        let mut child = VModule::new("child");
        child.reg("r", 16);
        let mut top = VModule::new("top");
        top.reg("r", 4);
        for i in 0..3 {
            top.instances.push(verilog::Instance {
                module: "child".into(),
                name: format!("u{i}"),
                connections: vec![],
            });
        }
        let mut d = Design::new();
        d.add(child);
        d.add(top);
        let rows = estimate_breakdown(&d, "top", &model());
        let child_row = rows.iter().find(|(n, _, _)| n == "child").unwrap();
        assert_eq!(child_row.1, 3, "three instances");
        assert_eq!(child_row.2.ff, 16, "per-instance resources");
        // Breakdown totals match the flat estimate.
        let total: u64 = rows.iter().map(|(_, n, r)| n * r.ff).sum();
        assert_eq!(total, estimate_design(&d, "top", &model()).ff);
    }

    #[test]
    fn register_file_mapping() {
        let mut m = VModule::new("t");
        m.memory("rf", 32, 2, Some("reg"));
        let r = estimate_module(&m, &model());
        assert_eq!(r.ff, 64);
        assert!(r.lut >= 16, "read mux expected, got {}", r.lut);
    }
}
