//! A small CDCL SAT solver.
//!
//! Classic architecture — two watched literals, first-UIP conflict-clause
//! learning with activity-based branching (VSIDS-lite: additive bumps with
//! periodic rescale), phase saving, and Luby restarts — kept deliberately
//! compact: this solver exists to discharge the bounded equivalence queries
//! of [`crate::equiv`], offline, with no external dependencies.
//!
//! Solving is incremental: clauses may be added between [`Solver::solve`]
//! calls, and queries take assumption literals. Every query accepts a
//! conflict budget and an optional wall-clock deadline and returns
//! [`SatResult::Unknown`] when exceeded — budget exhaustion is a first-class
//! outcome the callers must surface, never an error.

use std::time::Instant;

/// A literal: variable index shifted left once, low bit = negated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    pub fn pos(var: u32) -> Lit {
        Lit(var << 1)
    }

    pub fn neg(var: u32) -> Lit {
        Lit(var << 1 | 1)
    }

    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    pub fn is_neg(self) -> bool {
        self.0 & 1 != 0
    }

    /// The complement literal.
    #[must_use]
    pub fn flip(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// DIMACS integer form (1-based, negative when negated).
    pub fn dimacs(self) -> i64 {
        let v = i64::from(self.var()) + 1;
        if self.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Parse DIMACS integer form.
    pub fn from_dimacs(n: i64) -> Option<Lit> {
        let v = u32::try_from(n.unsigned_abs().checked_sub(1)?).ok()?;
        Some(if n < 0 { Lit::neg(v) } else { Lit::pos(v) })
    }
}

impl std::fmt::Debug for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.dimacs())
    }
}

/// Result of a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatResult {
    Sat,
    Unsat,
    /// Budget (conflicts or wall clock) exhausted before an answer.
    Unknown,
}

/// Resource budget for one [`Solver::solve`] call.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum number of conflicts before giving up.
    pub max_conflicts: u64,
    /// Optional wall-clock deadline.
    pub deadline: Option<Instant>,
}

impl Budget {
    pub const UNLIMITED: Budget = Budget {
        max_conflicts: u64::MAX,
        deadline: None,
    };

    pub fn conflicts(n: u64) -> Budget {
        Budget {
            max_conflicts: n,
            deadline: None,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Assign {
    Unset,
    True,
    False,
}

struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Move-to-front score for learnt-clause reduction.
    activity: f64,
}

/// Watcher entry: clause index plus the blocking literal fast path.
#[derive(Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

/// The solver.
pub struct Solver {
    num_vars: u32,
    clauses: Vec<Clause>,
    /// Indexed by `Lit.0`: clauses watching that literal.
    watches: Vec<Vec<Watch>>,
    assigns: Vec<Assign>,
    /// Saved phase per variable.
    phase: Vec<bool>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Reason clause per variable (u32::MAX = decision/assumption).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    /// Start of each decision level in `trail`.
    trail_lim: Vec<u32>,
    prop_head: usize,
    /// VSIDS activity per variable, plus the additive bump.
    activity: Vec<f64>,
    var_inc: f64,
    /// Empty clause added → permanently unsat.
    unsat: bool,
    /// Statistics over the solver's lifetime.
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
    pub restarts: u64,
    /// Length of every learnt clause (including unit learnts).
    pub learnt_len: obs::Histogram,
    /// Decision level at each decision (trail depth in levels).
    pub decision_depth: obs::Histogram,
}

const NO_REASON: u32 = u32::MAX;

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    pub fn new() -> Solver {
        Solver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            unsat: false,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            restarts: 0,
            learnt_len: obs::Histogram::new(),
            decision_depth: obs::Histogram::new(),
        }
    }

    /// Allocate a fresh variable and return its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assigns.push(Assign::Unset);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        v
    }

    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Total clauses in the database (problem + surviving learnts).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    fn value(&self, l: Lit) -> Assign {
        match self.assigns[l.var() as usize] {
            Assign::Unset => Assign::Unset,
            Assign::True => {
                if l.is_neg() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
            Assign::False => {
                if l.is_neg() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
        }
    }

    /// Add a clause. Backtracks to the root level first, so any model from
    /// a previous [`Solver::solve`] call is invalidated. Returns `false`
    /// when the clause makes the instance unsat.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.trail_lim.is_empty() {
            self.backtrack_to(0);
        }
        if self.unsat {
            return false;
        }
        // Simplify: drop duplicate/false literals, detect tautology.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(l.var() < self.num_vars, "literal for unallocated var");
            match self.value(l) {
                Assign::True => return true, // satisfied at level 0
                Assign::False => continue,
                Assign::Unset => {}
            }
            if c.contains(&l.flip()) {
                return true; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach(c, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].flip().0 as usize].push(Watch {
            clause: idx,
            blocker: lits[1],
        });
        self.watches[lits[1].flip().0 as usize].push(Watch {
            clause: idx,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.value(l), Assign::Unset);
        let v = l.var() as usize;
        self.assigns[v] = if l.is_neg() {
            Assign::False
        } else {
            Assign::True
        };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            self.propagations += 1;
            // All clauses watching ¬l (stored under l) must find new homes.
            let mut ws = std::mem::take(&mut self.watches[l.0 as usize]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                if self.value(w.blocker) == Assign::True {
                    i += 1;
                    continue;
                }
                let ci = w.clause as usize;
                // Normalize: watched literal we're processing at slot 1.
                let false_lit = l.flip();
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.value(first) == Assign::True {
                    ws[i] = Watch {
                        clause: w.clause,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    if self.value(self.clauses[ci].lits[k]) != Assign::False {
                        self.clauses[ci].lits.swap(1, k);
                        let nw = self.clauses[ci].lits[1];
                        self.watches[nw.flip().0 as usize].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                if self.value(first) == Assign::False {
                    self.watches[l.0 as usize] = ws;
                    // Re-append anything we haven't processed is not needed:
                    // ws still contains all remaining watches.
                    return Some(w.clause);
                }
                self.enqueue(first, w.clause);
                i += 1;
            }
            self.watches[l.0 as usize] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP learning. Returns (learnt clause, backtrack level); the
    /// asserting literal is first.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for the UIP
        let mut seen = vec![false; self.num_vars as usize];
        let mut counter = 0u32;
        let mut confl = confl as usize;
        let mut trail_idx = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;
        #[allow(unused_assignments)]
        let mut uip = Lit(0);
        loop {
            self.clauses[confl].activity += 1.0;
            let lits_len = self.clauses[confl].lits.len();
            for k in 0..lits_len {
                let q = self.clauses[confl].lits[k];
                let v = q.var() as usize;
                if seen[v] || self.level[v] == 0 {
                    continue;
                }
                // Skip the literal currently being resolved (it is assigned
                // true; every other clause literal is false).
                if self.value(q) == Assign::True {
                    continue;
                }
                seen[v] = true;
                self.bump_var(q.var());
                if self.level[v] == cur_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Pick the next current-level literal off the trail.
            loop {
                trail_idx -= 1;
                if seen[self.trail[trail_idx].var() as usize] {
                    break;
                }
            }
            uip = self.trail[trail_idx];
            seen[uip.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[uip.var() as usize] as usize;
        }
        learnt[0] = uip.flip();
        // Backtrack level: highest level among the other literals.
        let bt = learnt[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Move a literal of the backtrack level into slot 1 so the watches
        // are on the two highest levels.
        if learnt.len() > 1 {
            let mut mi = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var() as usize] > self.level[learnt[mi].var() as usize] {
                    mi = k;
                }
            }
            learnt.swap(1, mi);
        }
        (learnt, bt)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap() as usize;
            for &l in &self.trail[lim..] {
                self.assigns[l.var() as usize] = Assign::Unset;
                self.reason[l.var() as usize] = NO_REASON;
            }
            self.trail.truncate(lim);
        }
        self.prop_head = self.prop_head.min(self.trail.len());
    }

    /// Drop the least active half of the learnt clauses. Rebuilds watches
    /// from scratch and forces full re-propagation of the trail, so it must
    /// only run at decision level 0 (we call it on restart).
    fn reduce_learnts(&mut self) {
        debug_assert!(self.trail_lim.is_empty());
        let mut learnt_idx: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].learnt && self.clauses[i].lits.len() > 2)
            .collect();
        if learnt_idx.len() < 64 {
            return;
        }
        // Locked clauses (reason of a current assignment) must survive.
        let locked: std::collections::HashSet<u32> = self
            .trail
            .iter()
            .map(|l| self.reason[l.var() as usize])
            .filter(|&r| r != NO_REASON)
            .collect();
        learnt_idx.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let drop: std::collections::HashSet<usize> = learnt_idx[..learnt_idx.len() / 2]
            .iter()
            .copied()
            .filter(|&i| !locked.contains(&(i as u32)))
            .collect();
        if drop.is_empty() {
            return;
        }
        // Compact the clause database and remap indices.
        let mut remap = vec![NO_REASON; self.clauses.len()];
        let mut kept: Vec<Clause> = Vec::with_capacity(self.clauses.len() - drop.len());
        for (i, c) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if drop.contains(&i) {
                continue;
            }
            remap[i] = kept.len() as u32;
            kept.push(c);
        }
        self.clauses = kept;
        for r in &mut self.reason {
            if *r != NO_REASON {
                *r = remap[*r as usize];
                debug_assert_ne!(*r, NO_REASON, "dropped a locked clause");
            }
        }
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].flip().0 as usize].push(Watch {
                clause: i as u32,
                blocker: c.lits[1],
            });
            self.watches[c.lits[1].flip().0 as usize].push(Watch {
                clause: i as u32,
                blocker: c.lits[0],
            });
        }
        // The rebuilt watches may sit on literals that are already false;
        // re-propagating the whole trail restores the watch invariant.
        self.prop_head = 0;
    }

    /// Luby restart sequence (unit 256 conflicts).
    fn luby(i: u64) -> u64 {
        // Find the finite subsequence containing i and its position.
        let (mut k, mut size) = (1u64, 1u64);
        while size < i + 1 {
            k += 1;
            size = 2 * size + 1;
        }
        let mut i = i;
        while size - 1 != i {
            size = (size - 1) / 2;
            k -= 1;
            i %= size;
        }
        1u64 << (k - 1)
    }

    /// Decide: pick the unassigned variable with highest activity, assign
    /// its saved phase.
    fn decide(&mut self) -> bool {
        let mut best: Option<u32> = None;
        for v in 0..self.num_vars {
            if self.assigns[v as usize] == Assign::Unset {
                match best {
                    Some(b) if self.activity[b as usize] >= self.activity[v as usize] => {}
                    _ => best = Some(v),
                }
            }
        }
        let Some(v) = best else {
            return false;
        };
        self.decisions += 1;
        self.decision_depth.record(self.trail_lim.len() as u64);
        self.trail_lim.push(self.trail.len() as u32);
        let l = if self.phase[v as usize] {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        };
        self.enqueue(l, NO_REASON);
        true
    }

    /// Solve under assumptions. The model (for Sat) is readable via
    /// [`Solver::model_value`] until the next call that modifies the solver.
    pub fn solve(&mut self, assumptions: &[Lit], budget: Budget) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }

        let start_conflicts = self.conflicts;
        let mut restart_round = 0u64;
        let mut conflicts_this_round = 0u64;
        let mut restart_limit = Self::luby(0) * 256;

        'outer: loop {
            // An already-expired deadline must yield Unknown even for
            // queries that would never conflict (the in-conflict check
            // below only fires every 512 conflicts).
            if let Some(d) = budget.deadline {
                if Instant::now() >= d {
                    self.backtrack_to(0);
                    return SatResult::Unknown;
                }
            }
            // (Re-)apply assumptions above the root level.
            self.backtrack_to(0);
            for &a in assumptions {
                match self.value(a) {
                    Assign::True => continue,
                    Assign::False => return SatResult::Unsat,
                    Assign::Unset => {
                        self.trail_lim.push(self.trail.len() as u32);
                        self.enqueue(a, NO_REASON);
                        if self.propagate().is_some() {
                            return SatResult::Unsat;
                        }
                    }
                }
            }
            let assumption_level = self.trail_lim.len() as u32;

            loop {
                if let Some(confl) = self.propagate() {
                    self.conflicts += 1;
                    conflicts_this_round += 1;
                    if self.trail_lim.len() as u32 <= assumption_level {
                        // Conflict at (or below) the assumption level: the
                        // assumptions themselves are inconsistent.
                        return SatResult::Unsat;
                    }
                    let (learnt, bt) = self.analyze(confl);
                    self.learnt_len.record(learnt.len() as u64);
                    self.var_inc *= 1.0 / 0.95;
                    self.backtrack_to(bt.max(assumption_level));
                    if learnt.len() == 1 {
                        self.backtrack_to(assumption_level);
                        if self.value(learnt[0]) == Assign::False {
                            return SatResult::Unsat;
                        }
                        if self.value(learnt[0]) == Assign::Unset {
                            self.enqueue(learnt[0], NO_REASON);
                        }
                    } else {
                        let ci = self.attach(learnt.clone(), true);
                        if self.value(learnt[0]) == Assign::Unset {
                            self.enqueue(learnt[0], ci);
                        }
                    }
                    if self.conflicts - start_conflicts >= budget.max_conflicts {
                        self.backtrack_to(0);
                        return SatResult::Unknown;
                    }
                    if self.conflicts.is_multiple_of(512) {
                        if let Some(d) = budget.deadline {
                            if Instant::now() >= d {
                                self.backtrack_to(0);
                                return SatResult::Unknown;
                            }
                        }
                    }
                    if conflicts_this_round >= restart_limit {
                        self.restarts += 1;
                        restart_round += 1;
                        conflicts_this_round = 0;
                        restart_limit = Self::luby(restart_round) * 256;
                        self.backtrack_to(0);
                        self.reduce_learnts();
                        continue 'outer;
                    }
                } else if !self.decide() {
                    return SatResult::Sat;
                }
            }
        }
    }

    /// Value of a literal in the current model (valid after Sat).
    pub fn model_value(&self, l: Lit) -> bool {
        match self.value(l) {
            Assign::True => true,
            // Unconstrained variables default to false.
            Assign::False | Assign::Unset => false,
        }
    }

    // ----------------------------------------------------------- DIMACS

    /// Serialize the problem clauses (not learnt ones) as DIMACS CNF.
    pub fn to_dimacs(&self) -> String {
        let n = self
            .clauses
            .iter()
            .filter(|c| !c.learnt)
            .count()
            // Level-0 units live on the trail, not in the clause list.
            + self.trail_level0_len();
        let mut out = format!("p cnf {} {n}\n", self.num_vars);
        for i in 0..self.trail_level0_len() {
            out.push_str(&format!("{} 0\n", self.trail[i].dimacs()));
        }
        for c in self.clauses.iter().filter(|c| !c.learnt) {
            for &l in &c.lits {
                out.push_str(&format!("{} ", l.dimacs()));
            }
            out.push_str("0\n");
        }
        out
    }

    fn trail_level0_len(&self) -> usize {
        match self.trail_lim.first() {
            Some(&lim) => lim as usize,
            None => self.trail.len(),
        }
    }

    /// Parse DIMACS CNF into a fresh solver.
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn from_dimacs(text: &str) -> Result<Solver, String> {
        let mut solver = Solver::new();
        let mut declared_vars: Option<u32> = None;
        let mut clause: Vec<Lit> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("p cnf") {
                let mut it = rest.split_whitespace();
                let nv: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("line {}: bad p header", lineno + 1))?;
                declared_vars = Some(nv);
                while solver.num_vars < nv {
                    solver.new_var();
                }
                continue;
            }
            for tok in line.split_whitespace() {
                let n: i64 = tok
                    .parse()
                    .map_err(|_| format!("line {}: bad literal '{tok}'", lineno + 1))?;
                if n == 0 {
                    solver.add_clause(&clause);
                    clause.clear();
                    continue;
                }
                let l = Lit::from_dimacs(n)
                    .ok_or_else(|| format!("line {}: bad literal '{tok}'", lineno + 1))?;
                if l.var() >= solver.num_vars {
                    if declared_vars.is_some_and(|nv| l.var() >= nv) {
                        return Err(format!(
                            "line {}: variable {} beyond declared count",
                            lineno + 1,
                            l.var() + 1
                        ));
                    }
                    while solver.num_vars <= l.var() {
                        solver.new_var();
                    }
                }
                clause.push(l);
            }
        }
        if !clause.is_empty() {
            return Err("unterminated clause at end of input".into());
        }
        Ok(solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n).unwrap()
    }

    fn solver_with(num_vars: u32, clauses: &[&[i64]]) -> Solver {
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&n| lit(n)).collect();
            s.add_clause(&lits);
        }
        s
    }

    #[test]
    fn golden_sat_instance() {
        // (1 ∨ 2) ∧ (¬1 ∨ 3) ∧ (¬2 ∨ ¬3) ∧ (1 ∨ 3)
        let mut s = solver_with(3, &[&[1, 2], &[-1, 3], &[-2, -3], &[1, 3]]);
        assert_eq!(s.solve(&[], Budget::UNLIMITED), SatResult::Sat);
        // Model must actually satisfy every clause.
        for c in [[1i64, 2], [-1, 3], [-2, -3], [1, 3]] {
            assert!(c.iter().any(|&n| s.model_value(lit(n))), "clause {c:?}");
        }
    }

    #[test]
    fn golden_unsat_instance() {
        // All four sign combinations over two variables: classic UNSAT core.
        let mut s = solver_with(2, &[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]);
        assert_eq!(s.solve(&[], Budget::UNLIMITED), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,h}: pigeon i in hole h. Vars 1..=6 as (i,h) row-major.
        let p = |i: i64, h: i64| i * 2 + h + 1; // i in 0..3, h in 0..2
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![p(i, 0), p(i, 1)]);
        }
        for h in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-p(a, h), -p(b, h)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve(&[], Budget::UNLIMITED), SatResult::Unsat);
    }

    #[test]
    fn assumptions_flip_outcomes_incrementally() {
        let mut s = solver_with(3, &[&[-1, 2], &[-2, 3]]);
        assert_eq!(
            s.solve(&[lit(1), lit(-3)], Budget::UNLIMITED),
            SatResult::Unsat
        );
        assert_eq!(s.solve(&[lit(1)], Budget::UNLIMITED), SatResult::Sat);
        assert!(s.model_value(lit(3)), "1 → 2 → 3 must propagate");
        // Adding a clause between queries must be honored.
        s.add_clause(&[lit(-1)]);
        assert_eq!(s.solve(&[lit(1)], Budget::UNLIMITED), SatResult::Unsat);
        assert_eq!(s.solve(&[], Budget::UNLIMITED), SatResult::Sat);
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard-enough instance: pigeonhole 5→4.
        let p = |i: i64, h: i64| i * 4 + h + 1;
        let mut s = Solver::new();
        for _ in 0..20 {
            s.new_var();
        }
        for i in 0..5 {
            let c: Vec<Lit> = (0..4).map(|h| lit(p(i, h))).collect();
            s.add_clause(&c);
        }
        for h in 0..4 {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    s.add_clause(&[lit(-p(a, h)), lit(-p(b, h))]);
                }
            }
        }
        assert_eq!(s.solve(&[], Budget::conflicts(3)), SatResult::Unknown);
        // And with a real budget it finishes (pigeonhole 5→4 is small).
        assert_eq!(s.solve(&[], Budget::UNLIMITED), SatResult::Unsat);
    }

    #[test]
    fn dimacs_round_trip_preserves_semantics() {
        let mut s = solver_with(4, &[&[1, 2], &[-1, 3], &[-3, -2], &[2, 4], &[-4, 1]]);
        let text = s.to_dimacs();
        assert!(text.starts_with("p cnf 4 5"), "{text}");
        let mut s2 = Solver::from_dimacs(&text).expect("parse");
        let r1 = s.solve(&[], Budget::UNLIMITED);
        let r2 = s2.solve(&[], Budget::UNLIMITED);
        assert_eq!(r1, r2);
        // Round-trip again: output of parse prints back to the same clause
        // set. Literal order within a clause is not significant (solving
        // normalizes watched positions), so compare sorted sets.
        let text2 = s2.to_dimacs();
        let norm = |t: &str| {
            let mut lines: Vec<Vec<i64>> = t
                .lines()
                .filter(|l| !l.starts_with('p'))
                .map(|l| {
                    let mut c: Vec<i64> = l
                        .split_whitespace()
                        .map(|w| w.parse().unwrap())
                        .filter(|&x| x != 0)
                        .collect();
                    c.sort_unstable();
                    c
                })
                .collect();
            lines.sort_unstable();
            lines
        };
        assert_eq!(norm(&text), norm(&text2));
    }

    #[test]
    fn dimacs_rejects_malformed_input() {
        assert!(Solver::from_dimacs("p cnf x 1\n1 0\n").is_err());
        assert!(Solver::from_dimacs("p cnf 2 1\n1 banana 0\n").is_err());
        assert!(
            Solver::from_dimacs("p cnf 2 1\n1 2\n").is_err(),
            "unterminated"
        );
        assert!(
            Solver::from_dimacs("p cnf 1 1\n5 0\n").is_err(),
            "var beyond p"
        );
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 = 1  ⇒  x2 = 0, x3 = 1.
        let mut s = solver_with(3, &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1]]);
        assert_eq!(s.solve(&[], Budget::UNLIMITED), SatResult::Sat);
        assert!(s.model_value(lit(1)));
        assert!(!s.model_value(lit(2)));
        assert!(s.model_value(lit(3)));
    }
}
