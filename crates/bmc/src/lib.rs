//! Formal equivalence backend: translation validation for the HIR
//! optimization pipeline.
//!
//! The crate stacks four layers:
//!
//! 1. [`verilog::tsys`] (lives in the `verilog` crate) lowers a simulator
//!    bytecode tape into a word-level transition system with BTOR2 export.
//! 2. [`sat`] — a small in-house CDCL SAT solver (two watched literals,
//!    VSIDS-style activities, Luby restarts, assumptions, budgets).
//! 3. [`blast`] — Tseitin bit-blasting of bit-vector operations onto the
//!    solver, with global structural hashing so identical subterms across
//!    the two miter sides collapse to identical literals.
//! 4. [`equiv`] — the miter: both designs unrolled K cycles under one
//!    shared symbolic environment, divergence queried per cycle,
//!    SAT models replay-confirmed, budget exhaustion loudly degraded to a
//!    sampled differential.

pub mod blast;
pub mod equiv;
pub mod sat;
pub mod unroll;

pub use equiv::{
    check_func_equivalence, check_module_equivalence, export_btor2, sampled_divergence,
    Counterexample, EquivError, EquivOptions, EquivStatus, FrameStats, FuncReport, SolverStats,
    StimulusArg,
};
pub use sat::{Budget, Lit, SatResult, Solver};
