//! Bounded equivalence checking of two HIR modules' generated designs.
//!
//! For one function, both modules are lowered through the regular codegen
//! path to Verilog, then to word-level transition systems
//! ([`verilog::tsys`]), and unrolled K cycles inside one shared [`Blaster`]
//! under a symbolic copy of the simulation harness's environment
//! ([`hir_codegen::testbench::Harness`]): `start` pulses at cycle 0, scalar
//! arguments are free symbolic words held stable, and every memref argument
//! bus talks to a symbolic read-first memory — the same word, same cycle,
//! on both sides. The *miter* asks, cycle by cycle, for any input valuation
//! where the two sides' observables diverge: `result{i}_valid` streams,
//! result words at valid pulses, or external memory contents.
//!
//! Robustness invariants (see DESIGN.md):
//!
//! * **Counterexamples are replay-confirmed.** A SAT answer is only a
//!   *candidate*: the model's stimulus is extracted into concrete harness
//!   arguments and replayed through both designs in both simulator engines.
//!   Only a reproduced divergence is reported as a counterexample; an
//!   unconfirmed one degrades to sampling (and is reported as such).
//! * **Degradation is loud.** Budget exhaustion (conflicts or wall clock)
//!   never silently passes: the result downgrades to an N-sample
//!   differential simulation and says so in the status, the remark, and the
//!   machine-readable report.

use crate::blast::{Blaster, BV};
use crate::sat::{Budget, Lit, SatResult};
use crate::unroll::{eval_frame, next_state, Frame};
use hir::ops::FuncOp;
use hir::types::MemrefInfo;
use hir_codegen::testbench::{Harness, HarnessArg, HarnessReport};
use hir_codegen::{bus, extern_stubs, generate_design, module_name, CodegenOptions};
use ir::Module;
use std::time::Instant;
use verilog::tsys::{lower, TransitionSystem};
use verilog::Design;

/// Options for one equivalence check.
#[derive(Clone, Debug)]
pub struct EquivOptions {
    /// Cycles to unroll (the bound K).
    pub k_cycles: u32,
    /// SAT conflict budget per function, across all K queries.
    pub conflict_budget: u64,
    /// Wall-clock budget per function. `None` = conflict budget only
    /// (required for deterministic runs, e.g. under the fuzzer).
    pub time_budget_ms: Option<u64>,
    /// Stimulus vectors for the sampled fallback.
    pub samples: u32,
    /// Simulation cycle bound for replays and sampling.
    pub replay_max_cycles: u64,
}

impl Default for EquivOptions {
    fn default() -> Self {
        EquivOptions {
            k_cycles: 16,
            conflict_budget: 500_000,
            time_budget_ms: Some(60_000),
            samples: 8,
            replay_max_cycles: hir_codegen::testbench::DEFAULT_SIM_MAX_CYCLES,
        }
    }
}

/// One concrete stimulus argument of a counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StimulusArg {
    Int(i128),
    Mem(Vec<i128>),
}

impl StimulusArg {
    pub fn to_harness_arg(&self) -> HarnessArg {
        match self {
            StimulusArg::Int(v) => HarnessArg::Int(*v),
            StimulusArg::Mem(d) => HarnessArg::Mem(d.clone()),
        }
    }
}

/// A replay-confirmed divergence between the two designs.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Cycle at which the miter first diverged (SAT query index).
    pub cycle: u32,
    /// Concrete stimulus, one entry per function argument.
    pub stimulus: Vec<StimulusArg>,
    /// Human-readable description of the observed divergence.
    pub detail: String,
}

/// Outcome of one function's check.
#[derive(Clone, Debug)]
pub enum EquivStatus {
    /// UNSAT at every cycle ≤ K: the designs agree on all observables for
    /// K cycles, for every input.
    Proved,
    /// A replay-confirmed miscompile.
    Counterexample(Counterexample),
    /// Proof did not complete; equivalence was checked on `samples`
    /// concrete stimulus vectors instead. `reason` says why the proof
    /// degraded. This is weaker evidence and is never reported as a pass
    /// without the degradation being visible.
    Sampled { samples: u32, reason: String },
}

impl EquivStatus {
    pub fn label(&self) -> &'static str {
        match self {
            EquivStatus::Proved => "proved",
            EquivStatus::Counterexample(_) => "counterexample",
            EquivStatus::Sampled { .. } => "sampled",
        }
    }
}

/// Per-function proof report.
#[derive(Clone, Debug)]
pub struct FuncReport {
    pub func: String,
    /// The bound that was requested.
    pub k: u32,
    pub status: EquivStatus,
    /// SAT conflicts spent on this function.
    pub conflicts: u64,
    /// SAT variables allocated for the miter.
    pub vars: u32,
    /// Wall-clock time spent, in milliseconds.
    pub time_ms: u64,
    /// Solver, blaster, and per-phase statistics for this proof.
    pub solver: SolverStats,
}

/// CNF size snapshot after unrolling (and solving) one cycle of the miter.
#[derive(Clone, Copy, Debug)]
pub struct FrameStats {
    /// Unroll cycle this frame corresponds to.
    pub cycle: u32,
    /// Problem + learnt clauses added while blasting this frame.
    pub clauses_added: u64,
    /// SAT variables allocated while blasting this frame.
    pub vars_added: u64,
}

/// Solver/blaster counters and per-phase wall-clock times for one proof.
/// Everything except the `*_ms` fields is deterministic for a fixed input.
#[derive(Clone, Debug, Default)]
pub struct SolverStats {
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
    pub restarts: u64,
    /// Length distribution of learnt clauses.
    pub learnt_len: obs::Histogram,
    /// Decision-level distribution at each decision.
    pub decision_depth: obs::Histogram,
    /// Structural-hash gate cache hits/misses in the blaster.
    pub blast_cache_hits: u64,
    pub blast_cache_misses: u64,
    /// Final clause-database size (problem + surviving learnts).
    pub clauses: u64,
    /// Final variable count.
    pub vars: u64,
    /// Per-unroll-frame CNF growth.
    pub frames: Vec<FrameStats>,
    /// Wall-clock per phase, in milliseconds.
    pub lower_ms: u64,
    pub blast_ms: u64,
    pub solve_ms: u64,
    pub replay_ms: u64,
}

impl SolverStats {
    /// Strict single-line JSON object (no trailing newline); embeddable in
    /// a larger report. `*_ms` fields are wall clock and vary run to run;
    /// every other field is deterministic.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"conflicts\":{},\"decisions\":{},\"propagations\":{},\"restarts\":{},\
             \"clauses\":{},\"vars\":{}",
            self.conflicts,
            self.decisions,
            self.propagations,
            self.restarts,
            self.clauses,
            self.vars
        ));
        s.push_str(&format!(
            ",\"blast_cache\":{{\"hits\":{},\"misses\":{}}}",
            self.blast_cache_hits, self.blast_cache_misses
        ));
        s.push_str(&format!(",\"learnt_len\":{}", self.learnt_len.to_json()));
        s.push_str(&format!(
            ",\"decision_depth\":{}",
            self.decision_depth.to_json()
        ));
        s.push_str(",\"frames\":[");
        for (i, f) in self.frames.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"cycle\":{},\"clauses_added\":{},\"vars_added\":{}}}",
                f.cycle, f.clauses_added, f.vars_added
            ));
        }
        s.push_str(&format!(
            "],\"phase_ms\":{{\"lower\":{},\"blast\":{},\"solve\":{},\"replay\":{}}}}}",
            self.lower_ms, self.blast_ms, self.solve_ms, self.replay_ms
        ));
        s
    }
}

/// Failure to even *pose* the equivalence question (distinct from a
/// negative or inconclusive answer, which is an [`EquivStatus`]).
#[derive(Clone, Debug)]
pub enum EquivError {
    /// Code generation or elaboration failed on either side.
    Codegen(String),
    /// The design uses a construct outside the transition-system fragment.
    Lower(String),
    /// The two modules disagree about the function's interface.
    Signature(String),
    /// A replay or sampling simulation exceeded its cycle budget. This maps
    /// to a structured diagnostic (exit code 1), never a panic or a pass.
    SimBudget { func: String, detail: String },
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivError::Codegen(e) => write!(f, "codegen: {e}"),
            EquivError::Lower(e) => write!(f, "transition-system lowering: {e}"),
            EquivError::Signature(e) => write!(f, "signature mismatch: {e}"),
            EquivError::SimBudget { func, detail } => {
                write!(
                    f,
                    "simulation budget exhausted while verifying @{func}: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for EquivError {}

// ------------------------------------------------------ environment model

/// One memref argument's bus geometry (mirrors `Harness`'s `MemModel`).
struct EnvMem {
    arg_index: usize,
    base: String,
    banks: u64,
    bank_size: u64,
    elem_width: u32,
    /// Zero-latency (register-kind) reads are served combinationally.
    latency0: bool,
    can_read: bool,
    can_write: bool,
    total_words: u64,
}

/// The function's environment interface.
struct EnvSpec {
    /// (arg index, port name, width) per scalar argument.
    scalars: Vec<(usize, String, u32)>,
    mems: Vec<EnvMem>,
    result_count: usize,
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn build_env_spec(m: &Module, func: FuncOp) -> Result<EnvSpec, EquivError> {
    let formal = func.args(m);
    let arg_names = func
        .arg_names(m)
        .unwrap_or_else(|| (0..formal.len()).map(|i| format!("arg{i}")).collect());
    let mut scalars = Vec::new();
    let mut mems = Vec::new();
    for (i, &v) in formal.iter().enumerate() {
        let ty = m.value_type(v);
        let base = sanitize(&arg_names[i]);
        match MemrefInfo::from_type(&ty) {
            Some(info) => mems.push(EnvMem {
                arg_index: i,
                base,
                banks: info.num_banks(),
                bank_size: info.bank_size(),
                elem_width: info.elem.bit_width().unwrap_or(32),
                latency0: info.kind.read_latency() == 0,
                can_read: info.port.can_read(),
                can_write: info.port.can_write(),
                total_words: info.num_elements(),
            }),
            None => scalars.push((i, base, ty.bit_width().unwrap_or(32))),
        }
    }
    Ok(EnvSpec {
        scalars,
        mems,
        result_count: func.result_types(m).len(),
    })
}

// ------------------------------------------------------------- the miter

/// One side of the miter: a design's transition system plus its symbolic
/// state (registers, environment memories, in-flight read data).
struct Side<'a> {
    ts: &'a TransitionSystem,
    state: Vec<BV>,
    /// Environment memory words per memref argument (bank-major).
    mem_words: Vec<Vec<BV>>,
    /// Carried read data per memref per bank (latency ≥ 1 buses).
    rd_data: Vec<Vec<BV>>,
}

impl<'a> Side<'a> {
    fn net(&self, name: &str) -> Result<verilog::tsys::NodeId, EquivError> {
        self.ts
            .nets
            .get(name)
            .copied()
            .ok_or_else(|| EquivError::Signature(format!("net '{name}' missing from design")))
    }
}

/// Addressable word offsets of `addr_width` bits within a bank of
/// `bank_words` words.
fn reachable(bank_words: u64, addr_width: usize) -> u64 {
    if addr_width >= 63 {
        bank_words
    } else {
        bank_words.min(1u64 << addr_width)
    }
}

/// Read-first lookup of `store[bank*bank_size + addr]`, out-of-range = 0 —
/// exactly `Harness::serve_reads_pre` / `apply_requests`.
fn read_word(bl: &mut Blaster, store: &[BV], em: &EnvMem, bank: u64, addr: &BV) -> BV {
    let mut acc = bl.bv_const(0, em.elem_width);
    let lo = bank * em.bank_size;
    let hi = (lo + reachable(em.total_words.saturating_sub(lo), addr.len())).min(em.total_words);
    for j in (lo..hi).rev() {
        let off = bl.bv_const(j - lo, addr.len() as u32);
        let sel = bl.bv_eq(addr, &off);
        acc = bl.bv_ite(sel, &store[j as usize], &acc);
    }
    acc
}

struct CycleObs {
    /// 1-bit disagreement literal for this cycle.
    diff: Lit,
}

/// Advance one side by one cycle; returns the frame for observable
/// extraction. `latency0_frees` collects (mem index, bank, fresh BV) pairs
/// whose combinational-read constraints the caller asserts post-frame.
fn step_side(
    bl: &mut Blaster,
    side: &mut Side<'_>,
    env: &EnvSpec,
    scalars: &[BV],
    cycle: u32,
) -> Result<Frame, EquivError> {
    // 1. Build this cycle's input vector.
    let mut inputs: Vec<BV> = Vec::with_capacity(side.ts.inputs.len());
    let mut latency0_frees: Vec<(usize, u64, BV)> = Vec::new();
    for iv in side.ts.inputs.iter() {
        let bvv: BV = if iv.name == "start" {
            bl.bv_const(u64::from(cycle == 0), iv.width)
        } else if let Some(pos) = env.scalars.iter().position(|(_, b, _)| *b == iv.name) {
            bl.bv_fit(&scalars[pos], iv.width)
        } else if let Some((mi, b)) = find_rd_data(env, &iv.name) {
            if env.mems[mi].latency0 {
                let fresh = bl.bv_fresh(iv.width);
                latency0_frees.push((mi, b, fresh.clone()));
                fresh
            } else {
                bl.bv_fit(&side.rd_data[mi][b as usize], iv.width)
            }
        } else {
            bl.bv_const(iv.init, iv.width)
        };
        inputs.push(bvv);
    }

    // 2. Evaluate the design's combinational cone.
    let state = side.state.clone();
    let frame = eval_frame(bl, side.ts, &state, &inputs);

    // 3. Zero-latency reads: the read data the design consumed this cycle
    //    must equal the current memory word at the bus address (the harness
    //    serves these before the edge; addresses come from registers, so
    //    the fixpoint is unique).
    for (mi, b, fresh) in latency0_frees {
        let em = &env.mems[mi];
        let addr_id = side.net(&bus(&em.base, b, em.banks, "addr"))?;
        let addr = frame.get(addr_id).clone();
        let served = read_word(bl, &side.mem_words[mi], em, b, &addr);
        let served = bl.bv_fit(&served, fresh.len() as u32);
        let eq = bl.bv_eq(&fresh, &served);
        bl.assert_true(eq);
    }

    // 4. Latched reads (latency ≥ 1): data arrives next cycle, held when
    //    the enable is low — the harness's post-edge `apply_requests`.
    for (mi, em) in env.mems.iter().enumerate() {
        if !em.can_read || em.latency0 {
            continue;
        }
        for b in 0..em.banks {
            let en_id = side.net(&bus(&em.base, b, em.banks, "rd_en"))?;
            let addr_id = side.net(&bus(&em.base, b, em.banks, "addr"))?;
            let en = frame.get(en_id)[0];
            let addr = frame.get(addr_id).clone();
            let word = read_word(bl, &side.mem_words[mi], em, b, &addr);
            let cur = side.rd_data[mi][b as usize].clone();
            let word = bl.bv_fit(&word, cur.len() as u32);
            side.rd_data[mi][b as usize] = bl.bv_ite(en, &word, &cur);
        }
    }

    // 5. Writes land after the edge, reads-first (they saw the old words
    //    above), in (mem, bank) order — later writes win.
    for (mi, em) in env.mems.iter().enumerate() {
        if !em.can_write {
            continue;
        }
        for b in 0..em.banks {
            let en_id = side.net(&bus(&em.base, b, em.banks, "wr_en"))?;
            let addr_id = side.net(&bus(&em.base, b, em.banks, "waddr"))?;
            let data_id = side.net(&bus(&em.base, b, em.banks, "wr_data"))?;
            let en = frame.get(en_id)[0];
            let addr = frame.get(addr_id).clone();
            let data = frame.get(data_id).clone();
            let data = bl.bv_fit(&data, em.elem_width);
            let lo = b * em.bank_size;
            let hi =
                (lo + reachable(em.total_words.saturating_sub(lo), addr.len())).min(em.total_words);
            for j in lo..hi {
                let off = bl.bv_const(j - lo, addr.len() as u32);
                let hit = bl.bv_eq(&addr, &off);
                let hit = bl.and(en, hit);
                let old = side.mem_words[mi][j as usize].clone();
                side.mem_words[mi][j as usize] = bl.bv_ite(hit, &data, &old);
            }
        }
    }

    // 6. Register update.
    side.state = next_state(side.ts, &frame);
    Ok(frame)
}

/// Per-cycle observables: result valid/value streams and memory contents.
fn observe_diff(
    bl: &mut Blaster,
    env: &EnvSpec,
    a: &Side<'_>,
    fa: &Frame,
    b: &Side<'_>,
    fb: &Frame,
) -> Result<CycleObs, EquivError> {
    let mut diff = bl.fals();
    for i in 0..env.result_count {
        let va = fa.get(a.net(&format!("result{i}_valid"))?)[0];
        let vb = fb.get(b.net(&format!("result{i}_valid"))?)[0];
        let ra = fa.get(a.net(&format!("result{i}"))?).clone();
        let rb = fb.get(b.net(&format!("result{i}"))?).clone();
        let valid_mismatch = bl.xor(va, vb);
        diff = bl.or(diff, valid_mismatch);
        let w = ra.len().max(rb.len()) as u32;
        let ra = bl.bv_fit(&ra, w);
        let rb = bl.bv_fit(&rb, w);
        let value_mismatch = bl.bv_eq(&ra, &rb).flip();
        let observed_mismatch = bl.and(va, value_mismatch);
        diff = bl.or(diff, observed_mismatch);
    }
    // Memory contents after this cycle's writes. Untouched words are the
    // same literals on both sides and fold away for free.
    for (mi, _) in env.mems.iter().enumerate() {
        for (wa, wb) in a.mem_words[mi].iter().zip(&b.mem_words[mi]) {
            let (wa, wb) = (wa.clone(), wb.clone());
            let ne = bl.bv_eq(&wa, &wb).flip();
            diff = bl.or(diff, ne);
        }
    }
    Ok(CycleObs { diff })
}

// ----------------------------------------------------------- entry point

/// Check that `func_name`'s generated design is observably equivalent in
/// `unopt` and `opt` for `opts.k_cycles` cycles.
///
/// # Errors
/// Only for failures to pose or replay the question (codegen, lowering,
/// simulation budget); a divergence or an inconclusive proof is a normal
/// [`EquivStatus`].
pub fn check_func_equivalence(
    unopt: &Module,
    opt: &Module,
    func_name: &str,
    opts: &EquivOptions,
) -> Result<FuncReport, EquivError> {
    let started = Instant::now();
    let _span = obs::span("verify_equiv");

    let func_a = find_func(unopt, func_name)?;
    let func_b = find_func(opt, func_name)?;
    let env = build_env_spec(unopt, func_a)?;
    let env_b = build_env_spec(opt, func_b)?;
    if env.scalars.len() != env_b.scalars.len() || env.mems.len() != env_b.mems.len() {
        return Err(EquivError::Signature(format!(
            "@{func_name}: argument shape changed across optimization"
        )));
    }

    let lower_started = Instant::now();
    let (ts_a, ts_b) = {
        let _sp = obs::span("equiv_lower");
        let design_a = build_design(unopt)?;
        let design_b = build_design(opt)?;
        let top = module_name(func_name);
        let ts_a = lower(&design_a, &top).map_err(|e| EquivError::Lower(e.to_string()))?;
        let ts_b = lower(&design_b, &top).map_err(|e| EquivError::Lower(e.to_string()))?;
        (ts_a, ts_b)
    };
    let mut phases = PhaseMs {
        lower: lower_started.elapsed().as_millis() as u64,
        blast: 0,
        solve: 0,
        replay: 0,
    };

    let mut bl = Blaster::new();
    let start_conflicts = bl.solver.conflicts;
    let deadline = opts
        .time_budget_ms
        .map(|ms| started + std::time::Duration::from_millis(ms));

    // Shared symbolic stimulus: scalars and initial memory words.
    let scalars: Vec<BV> = env
        .scalars
        .iter()
        .map(|&(_, _, w)| bl.bv_fresh(w))
        .collect();
    let init_words: Vec<Vec<BV>> = env
        .mems
        .iter()
        .map(|em| {
            (0..em.total_words)
                .map(|_| bl.bv_fresh(em.elem_width))
                .collect()
        })
        .collect();

    let mut side_a = make_side(&bl, &ts_a, &env, &init_words);
    let mut side_b = make_side(&bl, &ts_b, &env, &init_words);

    let report =
        |status: EquivStatus, bl: &Blaster, phases: &PhaseMs, frames: &[FrameStats]| FuncReport {
            func: func_name.to_string(),
            k: opts.k_cycles,
            status,
            conflicts: bl.solver.conflicts - start_conflicts,
            vars: bl.solver.num_vars(),
            time_ms: started.elapsed().as_millis() as u64,
            solver: SolverStats {
                conflicts: bl.solver.conflicts - start_conflicts,
                decisions: bl.solver.decisions,
                propagations: bl.solver.propagations,
                restarts: bl.solver.restarts,
                learnt_len: bl.solver.learnt_len.clone(),
                decision_depth: bl.solver.decision_depth.clone(),
                blast_cache_hits: bl.cache_hits,
                blast_cache_misses: bl.cache_misses,
                clauses: bl.solver.num_clauses() as u64,
                vars: u64::from(bl.solver.num_vars()),
                frames: frames.to_vec(),
                lower_ms: phases.lower,
                blast_ms: phases.blast,
                solve_ms: phases.solve,
                replay_ms: phases.replay,
            },
        };

    let mut frames: Vec<FrameStats> = Vec::new();
    // CNF-size baseline per frame, re-snapshotted after each solve so the
    // deltas attribute blasted clauses (not learnts) to each unroll cycle.
    let mut last_clauses = bl.solver.num_clauses() as u64;
    let mut last_vars = u64::from(bl.solver.num_vars());

    for cycle in 0..opts.k_cycles {
        let blast_started = Instant::now();
        let obs = {
            let _sp = obs::span("equiv_blast");
            let fa = step_side(&mut bl, &mut side_a, &env, &scalars, cycle)?;
            let fb = step_side(&mut bl, &mut side_b, &env, &scalars, cycle)?;
            observe_diff(&mut bl, &env, &side_a, &fa, &side_b, &fb)?
        };
        phases.blast += blast_started.elapsed().as_millis() as u64;
        frames.push(FrameStats {
            cycle,
            clauses_added: bl.solver.num_clauses() as u64 - last_clauses,
            vars_added: u64::from(bl.solver.num_vars()) - last_vars,
        });

        let spent = bl.solver.conflicts - start_conflicts;
        let budget = Budget {
            max_conflicts: opts.conflict_budget.saturating_sub(spent).max(1),
            deadline,
        };
        let solve_started = Instant::now();
        let res = {
            let _sp = obs::span("equiv_solve");
            bl.solver.solve(&[obs.diff], budget)
        };
        phases.solve += solve_started.elapsed().as_millis() as u64;
        match res {
            SatResult::Unsat => {
                // Proven no divergence at this cycle; pin it for the rest
                // of the unrolling.
                bl.solver.add_clause(&[obs.diff.flip()]);
                last_clauses = bl.solver.num_clauses() as u64;
                last_vars = u64::from(bl.solver.num_vars());
            }
            SatResult::Sat => {
                let stimulus = extract_stimulus(&bl, &env, &scalars, &init_words);
                let replay_started = Instant::now();
                let _rsp = obs::span("equiv_replay");
                let status = match replay(unopt, opt, func_name, &stimulus, opts)? {
                    Some(detail) => EquivStatus::Counterexample(Counterexample {
                        cycle,
                        stimulus,
                        detail,
                    }),
                    None => {
                        // The model did not reproduce: the abstraction is
                        // off somewhere. Never report an unconfirmed
                        // counterexample — and never a silent pass either.
                        let reason = format!(
                            "candidate counterexample at cycle {cycle} did not reproduce in replay"
                        );
                        sampled_fallback(unopt, opt, func_name, opts, reason)?
                    }
                };
                drop(_rsp);
                phases.replay += replay_started.elapsed().as_millis() as u64;
                return Ok(report(status, &bl, &phases, &frames));
            }
            SatResult::Unknown => {
                let reason = format!(
                    "proof budget exhausted at cycle {cycle}/{} ({} conflicts)",
                    opts.k_cycles,
                    bl.solver.conflicts - start_conflicts,
                );
                let replay_started = Instant::now();
                let st = {
                    let _sp = obs::span("equiv_replay");
                    sampled_fallback(unopt, opt, func_name, opts, reason)?
                };
                phases.replay += replay_started.elapsed().as_millis() as u64;
                return Ok(report(st, &bl, &phases, &frames));
            }
        }
    }
    Ok(report(EquivStatus::Proved, &bl, &phases, &frames))
}

/// Wall-clock accumulators per proof phase, in milliseconds.
struct PhaseMs {
    lower: u64,
    blast: u64,
    solve: u64,
    replay: u64,
}

/// Check every non-external function the two modules share.
///
/// # Errors
/// See [`check_func_equivalence`].
pub fn check_module_equivalence(
    unopt: &Module,
    opt: &Module,
    opts: &EquivOptions,
) -> Result<Vec<FuncReport>, EquivError> {
    let mut out = Vec::new();
    for &top in unopt.top_ops() {
        let Some(func) = FuncOp::wrap(unopt, top) else {
            continue;
        };
        if func.is_external(unopt) {
            continue;
        }
        out.push(check_func_equivalence(unopt, opt, &func.name(unopt), opts)?);
    }
    Ok(out)
}

/// Lower one function's generated design to textual BTOR2
/// (`hirc --emit=btor2`). Assertions become `bad` properties.
///
/// # Errors
/// Codegen or lowering failure.
pub fn export_btor2(m: &Module, func_name: &str) -> Result<String, EquivError> {
    let design = build_design(m)?;
    let ts =
        lower(&design, &module_name(func_name)).map_err(|e| EquivError::Lower(e.to_string()))?;
    Ok(verilog::tsys::to_btor2(&ts))
}

// -------------------------------------------------------------- plumbing

fn find_func(m: &Module, name: &str) -> Result<FuncOp, EquivError> {
    for &top in m.top_ops() {
        if let Some(f) = FuncOp::wrap(m, top) {
            if f.name(m) == name {
                return Ok(f);
            }
        }
    }
    Err(EquivError::Signature(format!("no function @{name}")))
}

fn build_design(m: &Module) -> Result<Design, EquivError> {
    let mut design = generate_design(m, &CodegenOptions::default())
        .map_err(|e| EquivError::Codegen(e.to_string()))?;
    for stub in extern_stubs(m).map_err(|e| EquivError::Codegen(e.to_string()))? {
        design.add(stub);
    }
    Ok(design)
}

fn make_side<'a>(
    bl: &Blaster,
    ts: &'a TransitionSystem,
    env: &EnvSpec,
    init_words: &[Vec<BV>],
) -> Side<'a> {
    Side {
        ts,
        state: crate::unroll::initial_state(bl, ts),
        mem_words: init_words.to_vec(),
        rd_data: env
            .mems
            .iter()
            .map(|em| {
                (0..em.banks)
                    .map(|_| bl.bv_const(0, em.elem_width))
                    .collect()
            })
            .collect(),
    }
}

fn find_rd_data(env: &EnvSpec, input_name: &str) -> Option<(usize, u64)> {
    for (mi, em) in env.mems.iter().enumerate() {
        if !em.can_read {
            continue;
        }
        for b in 0..em.banks {
            if bus(&em.base, b, em.banks, "rd_data") == input_name {
                return Some((mi, b));
            }
        }
    }
    None
}

fn sign(v: u64, width: u32) -> i128 {
    if width >= 64 {
        return v as i64 as i128;
    }
    if v & (1u64 << (width - 1)) != 0 {
        v as i128 - (1i128 << width)
    } else {
        v as i128
    }
}

/// Read the satisfying model back as concrete harness arguments, in
/// function-argument order.
fn extract_stimulus(
    bl: &Blaster,
    env: &EnvSpec,
    scalars: &[BV],
    init_words: &[Vec<BV>],
) -> Vec<StimulusArg> {
    let mut by_index: Vec<(usize, StimulusArg)> = Vec::new();
    for (pos, &(arg_index, _, width)) in env.scalars.iter().enumerate() {
        by_index.push((
            arg_index,
            StimulusArg::Int(sign(bl.model_bv(&scalars[pos]), width)),
        ));
    }
    for (mi, em) in env.mems.iter().enumerate() {
        let words = init_words[mi]
            .iter()
            .map(|w| sign(bl.model_bv(w), em.elem_width))
            .collect();
        by_index.push((em.arg_index, StimulusArg::Mem(words)));
    }
    by_index.sort_by_key(|&(i, _)| i);
    by_index.into_iter().map(|(_, a)| a).collect()
}

/// Outcome of simulating one design on one stimulus.
enum RunOutcome {
    Report(HarnessReport),
    /// RTL assertion fired (message).
    Assertion(String),
}

fn run_once(
    m: &Module,
    func_name: &str,
    stimulus: &[StimulusArg],
    engine: verilog::Engine,
    max_cycles: u64,
) -> Result<RunOutcome, EquivError> {
    let design = build_design(m)?;
    let func = find_func(m, func_name)?;
    let args: Vec<HarnessArg> = stimulus.iter().map(StimulusArg::to_harness_arg).collect();
    let mut h =
        Harness::new(&design, m, func, &args).map_err(|e| EquivError::Codegen(e.to_string()))?;
    h.set_engine(engine);
    match h.run(max_cycles) {
        Ok(r) => Ok(RunOutcome::Report(r)),
        Err(e) => {
            let msg = e.to_string();
            if msg.contains("did not quiesce") {
                Err(EquivError::SimBudget {
                    func: func_name.to_string(),
                    detail: msg,
                })
            } else {
                Ok(RunOutcome::Assertion(msg))
            }
        }
    }
}

/// Replay a candidate stimulus through both designs in both engines.
/// Returns `Some(detail)` when the divergence reproduces.
fn replay(
    unopt: &Module,
    opt: &Module,
    func_name: &str,
    stimulus: &[StimulusArg],
    opts: &EquivOptions,
) -> Result<Option<String>, EquivError> {
    for engine in [verilog::Engine::Bytecode, verilog::Engine::TreeWalk] {
        let a = run_once(unopt, func_name, stimulus, engine, opts.replay_max_cycles)?;
        let b = run_once(opt, func_name, stimulus, engine, opts.replay_max_cycles)?;
        match (a, b) {
            (RunOutcome::Report(ra), RunOutcome::Report(rb)) => {
                if ra.results != rb.results {
                    return Ok(Some(format!(
                        "results diverged ({engine:?}): unoptimized {:?} vs optimized {:?}",
                        ra.results, rb.results
                    )));
                }
                if ra.mems != rb.mems {
                    return Ok(Some(format!("memory contents diverged ({engine:?})")));
                }
            }
            (RunOutcome::Assertion(ea), RunOutcome::Assertion(eb)) => {
                if ea != eb {
                    return Ok(Some(format!(
                        "assertion behavior diverged ({engine:?}): '{ea}' vs '{eb}'"
                    )));
                }
            }
            (RunOutcome::Report(_), RunOutcome::Assertion(e)) => {
                return Ok(Some(format!(
                    "optimized design fails an assertion the unoptimized one passes ({engine:?}): {e}"
                )));
            }
            (RunOutcome::Assertion(e), RunOutcome::Report(_)) => {
                return Ok(Some(format!(
                    "unoptimized design fails an assertion the optimized one passes ({engine:?}): {e}"
                )));
            }
        }
    }
    Ok(None)
}

/// Deterministic stimulus for sample `s`, mirroring the shapes used by
/// `opt_soundness` and `hirc --emit=sim` but varied per sample.
fn sample_stimulus(m: &Module, func: FuncOp, s: u32) -> Vec<StimulusArg> {
    let s = s as i128;
    func.args(m)
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let ty = m.value_type(v);
            match MemrefInfo::from_type(&ty) {
                Some(info) => {
                    let n = info.num_elements() as usize;
                    if info.port.can_read() {
                        StimulusArg::Mem(
                            (0..n)
                                .map(|j| (j as i128 * 7 + i as i128 * 13 + s * 29 + 1) % 23)
                                .collect(),
                        )
                    } else {
                        StimulusArg::Mem(vec![0; n])
                    }
                }
                None => StimulusArg::Int((i as i128 + 3) * (s + 1) % 97),
            }
        })
        .collect()
}

/// Differential simulation of both designs on `opts.samples` deterministic
/// stimulus vectors, compared on the same observables as the miter (results
/// and final memories). Returns the first diverging stimulus with a
/// description, or `None` when all samples agree. This is also the
/// reduction oracle used when shrinking confirmed counterexamples.
///
/// # Errors
/// Codegen failure or simulation budget exhaustion.
pub fn sampled_divergence(
    unopt: &Module,
    opt: &Module,
    func_name: &str,
    opts: &EquivOptions,
) -> Result<Option<(Vec<StimulusArg>, String)>, EquivError> {
    let func = find_func(unopt, func_name)?;
    for s in 0..opts.samples {
        let stimulus = sample_stimulus(unopt, func, s);
        if let Some(detail) = replay(unopt, opt, func_name, &stimulus, opts)? {
            return Ok(Some((stimulus, detail)));
        }
    }
    Ok(None)
}

/// The loud-degradation path: equivalence on N concrete stimulus vectors
/// through RTL simulation of both designs.
fn sampled_fallback(
    unopt: &Module,
    opt: &Module,
    func_name: &str,
    opts: &EquivOptions,
    reason: String,
) -> Result<EquivStatus, EquivError> {
    match sampled_divergence(unopt, opt, func_name, opts)? {
        // Sampling found a real, already-replayed divergence: report it as
        // a counterexample, not a sampling pass.
        Some((stimulus, detail)) => Ok(EquivStatus::Counterexample(Counterexample {
            cycle: 0,
            stimulus,
            detail: format!("{detail} (found by sampled differential after: {reason})"),
        })),
        None => Ok(EquivStatus::Sampled {
            samples: opts.samples,
            reason,
        }),
    }
}
