//! Symbolic evaluation of a [`TransitionSystem`] for bounded unrolling.
//!
//! One [`eval_frame`] call computes every node of the system for one cycle
//! as bit vectors over the blaster, given the cycle's state and input
//! vectors. The caller owns the cross-cycle plumbing (state advance,
//! environment models, observables) — see [`crate::equiv`].

use crate::blast::{Blaster, BV};
use verilog::tsys::{Node, NodeId, TOp, TransitionSystem};

/// All node values for one cycle, indexed by [`NodeId`].
pub struct Frame {
    pub values: Vec<BV>,
}

impl Frame {
    pub fn get(&self, id: NodeId) -> &BV {
        &self.values[id as usize]
    }
}

/// Evaluate every node of `ts` for one cycle. `state[i]` must be a vector
/// of the i-th state variable's width; `inputs[i]` likewise for inputs.
pub fn eval_frame(bl: &mut Blaster, ts: &TransitionSystem, state: &[BV], inputs: &[BV]) -> Frame {
    let mut values: Vec<BV> = Vec::with_capacity(ts.nodes.len());
    for (i, n) in ts.nodes.iter().enumerate() {
        let v: BV = match n {
            Node::Const { value, width } => bl.bv_const(*value, *width),
            Node::Input { index, width } => {
                debug_assert_eq!(inputs[*index as usize].len(), *width as usize);
                inputs[*index as usize].clone()
            }
            Node::State { index, width } => {
                debug_assert_eq!(state[*index as usize].len(), *width as usize);
                state[*index as usize].clone()
            }
            Node::Not { a, .. } => {
                let a = values[*a as usize].clone();
                bl.bv_not(&a)
            }
            Node::RedOr { a } => {
                let a = values[*a as usize].clone();
                let mut acc = bl.fals();
                for &l in &a {
                    acc = bl.or(acc, l);
                }
                vec![acc]
            }
            Node::Binary { op, a, b, .. } => {
                let a = values[*a as usize].clone();
                let b = values[*b as usize].clone();
                match op {
                    TOp::Add => bl.bv_add(&a, &b),
                    TOp::Sub => bl.bv_sub(&a, &b),
                    TOp::Mul => bl.bv_mul(&a, &b),
                    TOp::And => bl.bv_and(&a, &b),
                    TOp::Or => bl.bv_or(&a, &b),
                    TOp::Xor => bl.bv_xor(&a, &b),
                    TOp::Sll => bl.bv_sll(&a, &b),
                    TOp::Srl => bl.bv_srl(&a, &b),
                    TOp::Sra => bl.bv_sra(&a, &b),
                    TOp::Eq => vec![bl.bv_eq(&a, &b)],
                    TOp::Ne => vec![bl.bv_eq(&a, &b).flip()],
                    TOp::Ult => vec![bl.bv_ult(&a, &b)],
                    TOp::Ule => vec![bl.bv_ule(&a, &b)],
                    TOp::Slt => vec![bl.bv_slt(&a, &b)],
                    TOp::Sle => vec![bl.bv_sle(&a, &b)],
                }
            }
            Node::Ite { cond, t, e, .. } => {
                let c = values[*cond as usize][0];
                let t = values[*t as usize].clone();
                let e = values[*e as usize].clone();
                bl.bv_ite(c, &t, &e)
            }
            Node::Slice { a, hi, lo } => values[*a as usize][*lo as usize..=*hi as usize].to_vec(),
            Node::Ext { a, width, signed } => {
                let a = values[*a as usize].clone();
                if *signed {
                    bl.bv_sext(&a, *width)
                } else {
                    bl.bv_fit(&a, *width)
                }
            }
            Node::Concat { hi, lo, .. } => {
                let mut v = values[*lo as usize].clone();
                v.extend_from_slice(&values[*hi as usize]);
                v
            }
        };
        values.push(v);
        debug_assert_eq!(
            values[i].len(),
            ts.width(i as NodeId) as usize,
            "node {i} width mismatch"
        );
    }
    Frame { values }
}

/// The next-state vectors implied by a frame.
pub fn next_state(ts: &TransitionSystem, frame: &Frame) -> Vec<BV> {
    ts.states
        .iter()
        .map(|s| frame.get(s.next).clone())
        .collect()
}

/// Constant initial state vectors.
pub fn initial_state(bl: &Blaster, ts: &TransitionSystem) -> Vec<BV> {
    ts.states
        .iter()
        .map(|s| bl.bv_const(s.init, s.width))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{Budget, SatResult};
    use verilog::ast::{BinOp, Design, Dir, Expr, LValue, Stmt, VModule};

    /// Unrolled frames must agree with the transition system's own
    /// concrete evaluator on a counter design, cycle by cycle.
    #[test]
    fn unrolling_matches_concrete_eval() {
        let mut m = VModule::new("ctr");
        m.port("clk", Dir::Input, 1);
        m.port("step_by", Dir::Input, 4);
        m.port("total", Dir::Output, 12);
        m.reg("acc", 12);
        m.assign("total", Expr::r("acc"));
        m.main_always().stmts.push(Stmt::NonBlocking {
            lhs: LValue::Net("acc".into()),
            rhs: Expr::bin(BinOp::Add, Expr::r("acc"), Expr::r("step_by")),
        });
        let mut d = Design::new();
        d.add(m);
        let ts = verilog::tsys::lower(&d, "ctr").expect("lower");

        let mut bl = Blaster::new();
        let mut state = initial_state(&bl, &ts);
        let mut conc_state = ts.initial_state();
        for cycle in 0..8u64 {
            let stim = (cycle * 3 + 1) % 16;
            let inputs: Vec<BV> = ts
                .inputs
                .iter()
                .map(|iv| {
                    if iv.name == "step_by" {
                        bl.bv_const(stim, iv.width)
                    } else {
                        bl.bv_const(iv.init, iv.width)
                    }
                })
                .collect();
            let conc_inputs: Vec<u64> = ts
                .inputs
                .iter()
                .map(|iv| if iv.name == "step_by" { stim } else { iv.init })
                .collect();
            let frame = eval_frame(&mut bl, &ts, &state, &inputs);
            let conc = ts.eval_nodes(&conc_state, &conc_inputs);
            // With constant inputs everything folds to constants — compare
            // every node against the concrete evaluator.
            for (i, v) in frame.values.iter().enumerate() {
                assert_eq!(
                    bl.bv_value(v),
                    Some(conc[i]),
                    "cycle {cycle} node {i} did not fold"
                );
            }
            state = next_state(&ts, &frame);
            conc_state = ts.next_state(&conc);
        }
    }

    /// With a *symbolic* input, asking the solver to violate the counter's
    /// adder semantics must be UNSAT.
    #[test]
    fn symbolic_unrolling_is_consistent() {
        let mut m = VModule::new("ctr2");
        m.port("clk", Dir::Input, 1);
        m.port("x", Dir::Input, 8);
        m.port("y", Dir::Output, 8);
        m.reg("acc", 8);
        m.assign("y", Expr::r("acc"));
        m.main_always().stmts.push(Stmt::NonBlocking {
            lhs: LValue::Net("acc".into()),
            rhs: Expr::bin(BinOp::Add, Expr::r("acc"), Expr::r("x")),
        });
        let mut d = Design::new();
        d.add(m);
        let ts = verilog::tsys::lower(&d, "ctr2").expect("lower");

        let mut bl = Blaster::new();
        let x = bl.bv_fresh(8);
        let mut state = initial_state(&bl, &ts);
        // Two cycles with the same symbolic x: acc = x + x afterwards.
        for _ in 0..2 {
            let inputs: Vec<BV> = ts
                .inputs
                .iter()
                .map(|iv| {
                    if iv.name == "x" {
                        x.clone()
                    } else {
                        bl.bv_const(iv.init, iv.width)
                    }
                })
                .collect();
            let frame = eval_frame(&mut bl, &ts, &state, &inputs);
            state = next_state(&ts, &frame);
        }
        let acc = &state[0].clone();
        let two_x = {
            let xx = x.clone();
            bl.bv_add(&xx, &x)
        };
        let differs = bl.bv_eq(acc, &two_x).flip();
        assert_eq!(
            bl.solver.solve(&[differs], Budget::UNLIMITED),
            SatResult::Unsat,
            "acc after two cycles must equal x + x for every x"
        );
    }
}
