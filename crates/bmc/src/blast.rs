//! Tseitin bit-blasting: word-level values as vectors of SAT literals.
//!
//! A [`Blaster`] owns the [`Solver`] plus gate caches. Every gate
//! constructor folds constants and structurally identical operands before
//! allocating a variable, and the caches are global across everything built
//! on one blaster — when the optimized and unoptimized sides of a miter
//! compute the same function of the same inputs, they collapse to the *same
//! literal* and their disagreement literal folds to false without the
//! solver ever seeing a clause. This lightweight structural sweeping is
//! what keeps K-cycle miters of mostly-similar designs tractable.
//!
//! Bit vectors ([`BV`]) are LSB-first.

use crate::sat::{Lit, Solver};
use std::collections::HashMap;

/// A word value: literals, least significant bit first.
pub type BV = Vec<Lit>;

/// Bit-blasting context. `solver` is public so callers can run queries and
/// read models directly.
pub struct Blaster {
    pub solver: Solver,
    tru: Lit,
    and_cache: HashMap<(Lit, Lit), Lit>,
    xor_cache: HashMap<(Lit, Lit), Lit>,
    ite_cache: HashMap<(Lit, Lit, Lit), Lit>,
    /// Structural-hash statistics: gate lookups served from a cache vs
    /// gates that allocated a fresh variable and clauses.
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl Default for Blaster {
    fn default() -> Self {
        Blaster::new()
    }
}

impl Blaster {
    pub fn new() -> Blaster {
        let mut solver = Solver::new();
        let t = Lit::pos(solver.new_var());
        solver.add_clause(&[t]);
        Blaster {
            solver,
            tru: t,
            and_cache: HashMap::new(),
            xor_cache: HashMap::new(),
            ite_cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// The constant-true literal.
    pub fn tru(&self) -> Lit {
        self.tru
    }

    /// The constant-false literal.
    pub fn fals(&self) -> Lit {
        self.tru.flip()
    }

    pub fn lit_const(&self, v: bool) -> Lit {
        if v {
            self.tru
        } else {
            self.tru.flip()
        }
    }

    fn is_true(&self, l: Lit) -> bool {
        l == self.tru
    }

    fn is_false(&self, l: Lit) -> bool {
        l == self.tru.flip()
    }

    /// Fresh unconstrained literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// `a ∧ b` (cached, folded).
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) || self.is_false(b) || a == b.flip() {
            return self.fals();
        }
        if self.is_true(a) || a == b {
            return b;
        }
        if self.is_true(b) {
            return a;
        }
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&x) = self.and_cache.get(&key) {
            self.cache_hits += 1;
            return x;
        }
        self.cache_misses += 1;
        let x = self.fresh();
        self.solver.add_clause(&[a.flip(), b.flip(), x]);
        self.solver.add_clause(&[a, x.flip()]);
        self.solver.add_clause(&[b, x.flip()]);
        self.and_cache.insert(key, x);
        x
    }

    /// `a ∨ b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.flip(), b.flip()).flip()
    }

    /// `a ⊕ b` (cached, folded; complements share one gate).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) {
            return b;
        }
        if self.is_false(b) {
            return a;
        }
        if self.is_true(a) {
            return b.flip();
        }
        if self.is_true(b) {
            return a.flip();
        }
        if a == b {
            return self.fals();
        }
        if a == b.flip() {
            return self.tru;
        }
        // Normalize to positive inputs: ¬a⊕b = ¬(a⊕b).
        let mut flip_out = false;
        let mut a = a;
        let mut b = b;
        if a.is_neg() {
            a = a.flip();
            flip_out = !flip_out;
        }
        if b.is_neg() {
            b = b.flip();
            flip_out = !flip_out;
        }
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let x = if let Some(&x) = self.xor_cache.get(&key) {
            self.cache_hits += 1;
            x
        } else {
            self.cache_misses += 1;
            let x = self.fresh();
            self.solver.add_clause(&[a.flip(), b.flip(), x.flip()]);
            self.solver.add_clause(&[a, b, x.flip()]);
            self.solver.add_clause(&[a.flip(), b, x]);
            self.solver.add_clause(&[a, b.flip(), x]);
            self.xor_cache.insert(key, x);
            x
        };
        if flip_out {
            x.flip()
        } else {
            x
        }
    }

    /// `c ? t : e`.
    pub fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if self.is_true(c) {
            return t;
        }
        if self.is_false(c) {
            return e;
        }
        if t == e {
            return t;
        }
        if self.is_true(t) {
            return self.or(c, e);
        }
        if self.is_false(t) {
            return self.and(c.flip(), e);
        }
        if self.is_true(e) {
            return self.or(c.flip(), t);
        }
        if self.is_false(e) {
            return self.and(c, t);
        }
        if t == e.flip() {
            return self.xor(c, e);
        }
        if let Some(&x) = self.ite_cache.get(&(c, t, e)) {
            self.cache_hits += 1;
            return x;
        }
        self.cache_misses += 1;
        let x = self.fresh();
        self.solver.add_clause(&[c.flip(), t.flip(), x]);
        self.solver.add_clause(&[c.flip(), t, x.flip()]);
        self.solver.add_clause(&[c, e.flip(), x]);
        self.solver.add_clause(&[c, e, x.flip()]);
        self.ite_cache.insert((c, t, e), x);
        x
    }

    /// `a == b` for single literals.
    pub fn lit_eq(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor(a, b).flip()
    }

    /// Force a literal true at the root level.
    pub fn assert_true(&mut self, l: Lit) {
        self.solver.add_clause(&[l]);
    }

    // -------------------------------------------------------------- words

    /// Constant bit vector.
    pub fn bv_const(&self, value: u64, width: u32) -> BV {
        (0..width)
            .map(|i| self.lit_const(value >> i & 1 != 0))
            .collect()
    }

    /// Fresh unconstrained bit vector.
    pub fn bv_fresh(&mut self, width: u32) -> BV {
        (0..width).map(|_| self.fresh()).collect()
    }

    /// The constant value of a vector, if fully constant.
    pub fn bv_value(&self, a: &BV) -> Option<u64> {
        let mut v = 0u64;
        for (i, &l) in a.iter().enumerate() {
            if self.is_true(l) {
                v |= 1 << i;
            } else if !self.is_false(l) {
                return None;
            }
        }
        Some(v)
    }

    pub fn bv_not(&mut self, a: &BV) -> BV {
        a.iter().map(|l| l.flip()).collect()
    }

    pub fn bv_and(&mut self, a: &BV, b: &BV) -> BV {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.and(x, y)).collect()
    }

    pub fn bv_or(&mut self, a: &BV, b: &BV) -> BV {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.or(x, y)).collect()
    }

    pub fn bv_xor(&mut self, a: &BV, b: &BV) -> BV {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect()
    }

    /// Ripple-carry addition (modular).
    pub fn bv_add(&mut self, a: &BV, b: &BV) -> BV {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        let mut carry = self.fals();
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor(x, y);
            out.push(self.xor(xy, carry));
            // carry' = (x ∧ y) ∨ (carry ∧ (x ⊕ y))
            let g = self.and(x, y);
            let p = self.and(carry, xy);
            carry = self.or(g, p);
        }
        out
    }

    /// Modular subtraction `a - b` (as `a + ¬b + 1`).
    pub fn bv_sub(&mut self, a: &BV, b: &BV) -> BV {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        let mut carry = self.tru;
        for (&x, &yr) in a.iter().zip(b) {
            let y = yr.flip();
            let xy = self.xor(x, y);
            out.push(self.xor(xy, carry));
            let g = self.and(x, y);
            let p = self.and(carry, xy);
            carry = self.or(g, p);
        }
        out
    }

    /// Shift-add multiplication (modular).
    pub fn bv_mul(&mut self, a: &BV, b: &BV) -> BV {
        debug_assert_eq!(a.len(), b.len());
        let w = a.len();
        let mut acc = self.bv_const(0, w as u32);
        for (i, &bi) in b.iter().enumerate() {
            if self.is_false(bi) {
                continue;
            }
            // (a << i) & {w × b_i}
            let shifted: BV = (0..w)
                .map(|k| if k >= i { a[k - i] } else { self.fals() })
                .collect();
            let addend: BV = shifted.iter().map(|&l| self.and(l, bi)).collect();
            acc = self.bv_add(&acc, &addend);
        }
        acc
    }

    /// `c ? t : e` per bit.
    pub fn bv_ite(&mut self, c: Lit, t: &BV, e: &BV) -> BV {
        debug_assert_eq!(t.len(), e.len());
        t.iter().zip(e).map(|(&x, &y)| self.ite(c, x, y)).collect()
    }

    /// `a == b` as one literal.
    pub fn bv_eq(&mut self, a: &BV, b: &BV) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = self.tru;
        for (&x, &y) in a.iter().zip(b) {
            let e = self.lit_eq(x, y);
            acc = self.and(acc, e);
        }
        acc
    }

    /// Unsigned `a < b`.
    pub fn bv_ult(&mut self, a: &BV, b: &BV) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        // LSB→MSB: higher bits take priority.
        let mut lt = self.fals();
        for (&x, &y) in a.iter().zip(b) {
            let xlty = self.and(x.flip(), y);
            let eq = self.lit_eq(x, y);
            let keep = self.and(eq, lt);
            lt = self.or(xlty, keep);
        }
        lt
    }

    /// Unsigned `a <= b`.
    pub fn bv_ule(&mut self, a: &BV, b: &BV) -> Lit {
        self.bv_ult(b, a).flip()
    }

    /// Signed `a < b` (flip sign bits, compare unsigned).
    pub fn bv_slt(&mut self, a: &BV, b: &BV) -> Lit {
        let (mut a2, mut b2) = (a.clone(), b.clone());
        let n = a2.len();
        debug_assert!(n > 0);
        a2[n - 1] = a2[n - 1].flip();
        b2[n - 1] = b2[n - 1].flip();
        self.bv_ult(&a2, &b2)
    }

    /// Signed `a <= b`.
    pub fn bv_sle(&mut self, a: &BV, b: &BV) -> Lit {
        self.bv_slt(b, a).flip()
    }

    /// Zero-extend or truncate to `w` bits.
    pub fn bv_fit(&self, a: &BV, w: u32) -> BV {
        let w = w as usize;
        let mut out = a.clone();
        out.truncate(w);
        while out.len() < w {
            out.push(self.fals());
        }
        out
    }

    /// Sign-extend to `w` bits (`w >= a.len()`).
    pub fn bv_sext(&self, a: &BV, w: u32) -> BV {
        let mut out = a.clone();
        let sign = *out.last().expect("sign extension of empty vector");
        while out.len() < w as usize {
            out.push(sign);
        }
        out
    }

    /// Left shift by a symbolic amount; zeros shifted in, amount ≥ width
    /// yields zero.
    pub fn bv_sll(&mut self, a: &BV, amt: &BV) -> BV {
        self.barrel(a, amt, false, false)
    }

    /// Logical right shift; amount ≥ width yields zero.
    pub fn bv_srl(&mut self, a: &BV, amt: &BV) -> BV {
        self.barrel(a, amt, true, false)
    }

    /// Arithmetic right shift; amount ≥ width yields all-sign.
    pub fn bv_sra(&mut self, a: &BV, amt: &BV) -> BV {
        self.barrel(a, amt, true, true)
    }

    fn barrel(&mut self, a: &BV, amt: &BV, right: bool, arith: bool) -> BV {
        let w = a.len();
        let fill = if arith {
            *a.last().expect("shift of empty vector")
        } else {
            self.fals()
        };
        let mut cur = a.clone();
        let mut overshoot = self.fals();
        for (b, &amt_bit) in amt.iter().enumerate() {
            if b >= 63 || (1usize << b) >= w {
                // A set bit at or beyond the width shifts everything out.
                overshoot = self.or(overshoot, amt_bit);
                continue;
            }
            let sh = 1usize << b;
            let shifted: BV = (0..w)
                .map(|k| {
                    let src = if right {
                        k.checked_add(sh).filter(|&s| s < w)
                    } else {
                        k.checked_sub(sh)
                    };
                    match src {
                        Some(s) => cur[s],
                        None => fill,
                    }
                })
                .collect();
            cur = self.bv_ite(amt_bit, &shifted, &cur);
        }
        let all_fill = vec![fill; w];
        self.bv_ite(overshoot, &all_fill, &cur)
    }

    /// Read the value of a vector from the solver's current model.
    pub fn model_bv(&self, a: &BV) -> u64 {
        let mut v = 0u64;
        for (i, &l) in a.iter().enumerate() {
            if self.solver.model_value(l) {
                v |= 1 << i;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{Budget, SatResult};

    /// Exhaustively check a binary blasted op against a reference over all
    /// small operand values.
    fn check2(
        width: u32,
        f: impl Fn(&mut Blaster, &BV, &BV) -> BV,
        reference: impl Fn(u64, u64) -> u64,
    ) {
        let mut bl = Blaster::new();
        let a = bl.bv_fresh(width);
        let b = bl.bv_fresh(width);
        let out = f(&mut bl, &a, &b);
        let m = if width >= 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        // out != reference(a, b) must be UNSAT: encode by asking the solver
        // for any assignment where they differ.
        for av in 0..=m.min(15) {
            for bv in 0..=m.min(15) {
                let mut assum = Vec::new();
                for (i, &l) in a.iter().enumerate() {
                    assum.push(if av >> i & 1 != 0 { l } else { l.flip() });
                }
                for (i, &l) in b.iter().enumerate() {
                    assum.push(if bv >> i & 1 != 0 { l } else { l.flip() });
                }
                assert_eq!(bl.solver.solve(&assum, Budget::UNLIMITED), SatResult::Sat);
                assert_eq!(
                    bl.model_bv(&out),
                    reference(av, bv) & m,
                    "a={av} b={bv} w={width}"
                );
            }
        }
    }

    #[test]
    fn adder_matches_reference() {
        check2(4, |bl, a, b| bl.bv_add(a, b), |a, b| a.wrapping_add(b));
    }

    #[test]
    fn subtractor_matches_reference() {
        check2(4, |bl, a, b| bl.bv_sub(a, b), |a, b| a.wrapping_sub(b));
    }

    #[test]
    fn multiplier_matches_reference() {
        check2(4, |bl, a, b| bl.bv_mul(a, b), |a, b| a.wrapping_mul(b));
    }

    #[test]
    fn shifts_match_reference() {
        check2(
            4,
            |bl, a, b| bl.bv_sll(a, b),
            |a, b| if b >= 4 { 0 } else { a << b },
        );
        check2(
            4,
            |bl, a, b| bl.bv_srl(a, b),
            |a, b| if b >= 4 { 0 } else { a >> b },
        );
        check2(
            4,
            |bl, a, b| bl.bv_sra(a, b),
            |a, b| {
                let sa = (a as i64) << 60 >> 60; // sign-extend 4 bits
                (sa >> b.min(63)) as u64
            },
        );
    }

    #[test]
    fn comparisons_match_reference() {
        check2(4, |bl, a, b| vec![bl.bv_ult(a, b)], |a, b| u64::from(a < b));
        check2(
            4,
            |bl, a, b| vec![bl.bv_slt(a, b)],
            |a, b| {
                let sx = |v: u64| (v as i64) << 60 >> 60;
                u64::from(sx(a) < sx(b))
            },
        );
        check2(4, |bl, a, b| vec![bl.bv_eq(a, b)], |a, b| u64::from(a == b));
    }

    #[test]
    fn structural_sharing_collapses_identical_terms() {
        let mut bl = Blaster::new();
        let a = bl.bv_fresh(8);
        let b = bl.bv_fresh(8);
        let s1 = bl.bv_add(&a, &b);
        let s2 = bl.bv_add(&a, &b);
        assert_eq!(s1, s2, "identical structure must share literals");
        let d = bl.bv_eq(&s1, &s2);
        assert_eq!(d, bl.tru(), "equality of shared terms folds to true");
    }
}
