//! Deterministic mutational fuzzing for the HIR compiler pipeline.
//!
//! The robustness contract of the toolchain is *diagnostics, never panics*:
//! arbitrary input may be rejected with errors but must not crash the
//! compiler. This crate enforces the contract mechanically:
//!
//! * [`mutate`] derives corrupted inputs from the `examples/` corpus with a
//!   seed-driven mix of byte- and token-level mutations (bit flips, splices,
//!   token swaps, keyword injection). Everything is driven by the vendored
//!   SplitMix64 [`rand`] stand-in, so a `(seed, iteration)` pair always
//!   reproduces the same input.
//! * [`run_pipeline`] pushes a candidate through the same stages `hirc` runs
//!   — parse (with recovery) → verify → optimize → print/round-trip →
//!   codegen — each under `catch_unwind`, and reports the first stage whose
//!   code panics rather than returning diagnostics.
//! * [`reduce_lines`] greedily shrinks a crashing input while a caller
//!   predicate (typically "still panics in the same stage") holds, powering
//!   the `hirc-reduce` binary.
//!
//! The `hirc-fuzz` binary wires these together for CI smoke runs.

use rand::{rngs::StdRng, Rng, RngCore};

// ---------------------------------------------------------------------------
// Panic-observing pipeline harness
// ---------------------------------------------------------------------------

/// A panic escaping one of the pipeline stages: the fuzz bug report.
#[derive(Clone, Debug)]
pub struct PanicReport {
    /// Stage whose code panicked (`parse`, `verify`, `optimize`, `print`,
    /// `roundtrip`, `codegen`).
    pub stage: &'static str,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for PanicReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "panic in stage '{}': {}", self.stage, self.message)
    }
}

/// How far a (possibly corrupted) input made it through the pipeline with
/// clean diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineOutcome {
    /// Number of parse errors reported by the recovering parser.
    pub parse_errors: usize,
    /// Structure + schedule verification both passed.
    pub verified: bool,
    /// The standard optimization pipeline ran without internal errors.
    pub optimized: bool,
    /// Verilog generation succeeded.
    pub codegen_ok: bool,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn guard<T>(stage: &'static str, f: impl FnOnce() -> T) -> Result<T, PanicReport> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|p| PanicReport {
        stage,
        message: panic_message(&*p),
    })
}

/// Run `source` through the full compile pipeline, containing each stage in
/// `catch_unwind`.
///
/// Returns `Ok` with how far the input got (rejection with diagnostics is a
/// *success* for the robustness contract) or `Err` naming the stage that
/// panicked.
///
/// # Errors
/// A [`PanicReport`] for the first stage whose code panics.
pub fn run_pipeline(source: &str) -> Result<PipelineOutcome, PanicReport> {
    run_pipeline_with_threads(source, 1)
}

/// [`run_pipeline`] with an explicit worker-thread count for the verify and
/// optimize stages (`0` = auto), exercising the parallel per-function
/// pipeline's split/splice path on multi-function mutants.
///
/// # Errors
/// A [`PanicReport`] for the first stage whose code panics.
pub fn run_pipeline_with_threads(
    source: &str,
    threads: usize,
) -> Result<PipelineOutcome, PanicReport> {
    let mut outcome = PipelineOutcome::default();

    // Same front-end dispatch as hirc: pretty form vs generic form.
    let pretty_input = source
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with("//"))
        .is_some_and(|l| l.starts_with("hir.func"));
    let (mut module, n_errors) = guard("parse", || {
        if pretty_input {
            let r = hir::parse_pretty_recover(source, 0);
            (r.module, r.errors.len())
        } else {
            let r = ir::parse_module_recover(source, 0);
            (r.module, r.errors.len())
        }
    })?;
    outcome.parse_errors = n_errors;

    let registry = hir::hir_registry();
    outcome.verified = guard("verify", || {
        let mut diags = ir::DiagnosticEngine::new();
        ir::verify_module(&module, &registry, &mut diags).is_ok()
            && hir_verify::verify_schedule_with_threads(&module, &mut diags, threads).is_ok()
    })?;

    // Printers must handle anything the parser produced, including partially
    // recovered modules.
    guard("print", || {
        let _ = ir::print_module(&module);
        let _ = hir::pretty_module(&module);
    })?;
    guard("roundtrip", || {
        let text = ir::print_module(&module);
        let _ = ir::parse_module_recover(&text, 0);
    })?;

    // Passes and codegen assume verified IR (as in MLIR); run them only on
    // modules that passed both verifiers.
    if outcome.verified && n_errors == 0 {
        outcome.optimized = guard("optimize", || {
            // The per-function pipeline: exercises split/splice and the
            // worker pool on multi-function mutants.
            let mut fp = hir_opt::standard_function_pipeline(threads);
            let mut diags = ir::DiagnosticEngine::new();
            fp.run(&mut module, &registry, &mut diags).is_ok()
        })?;
        outcome.codegen_ok = guard("codegen", || {
            hir_codegen::generate_design(&module, &hir_codegen::CodegenOptions::default()).is_ok()
        })?;
    }
    Ok(outcome)
}

// ---------------------------------------------------------------------------
// Translation-validation oracle
// ---------------------------------------------------------------------------

/// Verdict of the bounded-equivalence fuzz oracle on one input.
#[derive(Clone, Debug)]
pub enum EquivOracle {
    /// All functions proved equivalent across the standard pipeline.
    Proved,
    /// At least one function degraded to a sampled differential (budget
    /// exhausted); the samples agreed, so no miscompile was *observed*.
    Sampled,
    /// Replay-confirmed miscompile: the standard pipeline changed the
    /// semantics of this input. The payload describes the divergence.
    Miscompile(String),
    /// The oracle could not run on this input (e.g. a construct the
    /// transition-system lowering rejects); not a finding.
    Skipped(String),
}

/// Run the BMC miter as a fuzz oracle: prove (bounded to `k` cycles) that the
/// standard pipeline preserved the semantics of `source`.
///
/// The budget is conflict-only — no wall clock — so a `(seed, iteration)`
/// pair yields the same verdict on every machine and the fixed-seed CI smoke
/// stays deterministic. Counterexamples are replay-confirmed inside `bmc`
/// before being reported, so a [`EquivOracle::Miscompile`] is a real,
/// reproducible compiler bug, not a solver artifact.
///
/// # Errors
/// A [`PanicReport`] if the oracle itself panics — that is a fuzz finding in
/// its own right, not an input rejection.
pub fn check_equivalence(source: &str, k: u32, threads: usize) -> Result<EquivOracle, PanicReport> {
    guard("equiv", || {
        // Same front-end dispatch as `run_pipeline`.
        let pretty_input = source
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with("//"))
            .is_some_and(|l| l.starts_with("hir.func"));
        let (base, n_errors) = if pretty_input {
            let r = hir::parse_pretty_recover(source, 0);
            (r.module, r.errors.len())
        } else {
            let r = ir::parse_module_recover(source, 0);
            (r.module, r.errors.len())
        };
        if n_errors != 0 {
            return EquivOracle::Skipped("parse errors".to_string());
        }
        let registry = hir::hir_registry();
        let mut diags = ir::DiagnosticEngine::new();
        if ir::verify_module(&base, &registry, &mut diags).is_err()
            || hir_verify::verify_schedule_with_threads(&base, &mut diags, threads).is_err()
        {
            return EquivOracle::Skipped("verification failed".to_string());
        }

        let mut opt = base.clone();
        let mut fp = hir_opt::standard_function_pipeline(threads);
        let mut diags = ir::DiagnosticEngine::new();
        if fp.run(&mut opt, &registry, &mut diags).is_err() {
            return EquivOracle::Skipped("optimization failed".to_string());
        }

        let opts = bmc::EquivOptions {
            k_cycles: k,
            conflict_budget: 200_000,
            time_budget_ms: None, // determinism: conflict-only budget
            samples: 4,
            replay_max_cycles: 100_000,
        };
        match bmc::check_module_equivalence(&base, &opt, &opts) {
            Ok(reports) => {
                let mut sampled = false;
                for r in reports {
                    match r.status {
                        bmc::EquivStatus::Counterexample(cex) => {
                            return EquivOracle::Miscompile(format!(
                                "@{} cycle {}: {}",
                                r.func, cex.cycle, cex.detail
                            ));
                        }
                        bmc::EquivStatus::Sampled { .. } => sampled = true,
                        bmc::EquivStatus::Proved => {}
                    }
                }
                if sampled {
                    EquivOracle::Sampled
                } else {
                    EquivOracle::Proved
                }
            }
            Err(e) => EquivOracle::Skipped(e.to_string()),
        }
    })
}

// ---------------------------------------------------------------------------
// Simulator-engine differential oracle
// ---------------------------------------------------------------------------

/// Verdict of the simulator-engine differential oracle on one input.
#[derive(Clone, Debug)]
pub enum SimOracle {
    /// Every simulable function agreed across bytecode, event-driven, and
    /// batched engines on every random stimulus lane.
    Agreed {
        /// Functions that were actually simulated.
        functions: usize,
        /// Stimulus lanes checked per function.
        lanes: usize,
    },
    /// Two engines disagreed on results, latency, memory contents, or
    /// failure behavior: a simulator bug. The payload describes where.
    Divergence(String),
    /// The oracle could not run on this input; not a finding.
    Skipped(String),
}

/// Deterministic random harness arguments for `func`: readable memrefs get
/// small non-negative words (some kernels index memory with data values),
/// write-only memrefs start zeroed, scalars get small integers.
fn random_args(
    m: &ir::Module,
    func: hir::ops::FuncOp,
    rng: &mut StdRng,
) -> Vec<hir_codegen::testbench::HarnessArg> {
    use hir_codegen::testbench::HarnessArg;
    func.args(m)
        .iter()
        .map(|&v| {
            let ty = m.value_type(v);
            match hir::types::MemrefInfo::from_type(&ty) {
                Some(info) => {
                    let n = info.num_elements() as usize;
                    if info.port.can_read() {
                        HarnessArg::Mem((0..n).map(|_| rng.gen_range(0..16i128)).collect())
                    } else {
                        HarnessArg::zero_mem(n)
                    }
                }
                None => HarnessArg::Int(rng.gen_range(0..8i128)),
            }
        })
        .collect()
}

/// Run the engine differential as a fuzz oracle: simulate every function of
/// a compiled input under the bytecode engine, the event-driven engine, and
/// — when all scalar runs succeed — one batched pass with `lanes` random
/// stimulus lanes, requiring bit-identical results, latency, and memories
/// lane for lane. Deterministic per `(source, seed, lanes)`.
///
/// # Errors
/// A [`PanicReport`] if a simulator engine itself panics — a fuzz finding,
/// not an input rejection.
pub fn check_sim_engines(source: &str, seed: u64, lanes: usize) -> Result<SimOracle, PanicReport> {
    use hir_codegen::testbench::{Harness, HarnessReport, DEFAULT_SIM_MAX_CYCLES};
    use rand::SeedableRng;
    guard("sim-diff", || {
        // Same front-end dispatch as `run_pipeline`.
        let pretty_input = source
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with("//"))
            .is_some_and(|l| l.starts_with("hir.func"));
        let (module, n_errors) = if pretty_input {
            let r = hir::parse_pretty_recover(source, 0);
            (r.module, r.errors.len())
        } else {
            let r = ir::parse_module_recover(source, 0);
            (r.module, r.errors.len())
        };
        if n_errors != 0 {
            return SimOracle::Skipped("parse errors".to_string());
        }
        let registry = hir::hir_registry();
        let mut diags = ir::DiagnosticEngine::new();
        if ir::verify_module(&module, &registry, &mut diags).is_err()
            || hir_verify::verify_schedule_with_threads(&module, &mut diags, 1).is_err()
        {
            return SimOracle::Skipped("verification failed".to_string());
        }
        let mut design =
            match hir_codegen::generate_design(&module, &hir_codegen::CodegenOptions::default()) {
                Ok(d) => d,
                Err(e) => return SimOracle::Skipped(format!("codegen failed: {e}")),
            };
        // Behavioral stubs for external callees, as `hirc --emit=sim` does.
        match hir_codegen::extern_stubs(&module) {
            Ok(stubs) => {
                for stub in stubs {
                    design.add(stub);
                }
            }
            Err(e) => return SimOracle::Skipped(format!("extern stubs failed: {e}")),
        }

        let same = |a: &HarnessReport, b: &HarnessReport| -> bool {
            a.cycles == b.cycles && a.results == b.results && a.mems == b.mems
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut functions = 0usize;
        for &op in module.top_ops() {
            let Some(f) = hir::ops::FuncOp::wrap(&module, op) else {
                continue;
            };
            if f.is_external(&module) {
                continue;
            }
            let name = f.name(&module);
            let lane_args: Vec<Vec<_>> = (0..lanes.max(1))
                .map(|_| random_args(&module, f, &mut rng))
                .collect();
            // External declarations and functions whose ports the harness
            // cannot model are skipped, not findings.
            if Harness::new(&design, &module, f, &lane_args[0]).is_err() {
                continue;
            }
            // Scalar differential: bytecode vs event-driven, lane by lane.
            let mut scalar: Vec<Result<HarnessReport, String>> = Vec::new();
            for (lane, args) in lane_args.iter().enumerate() {
                let mut runs = Vec::new();
                for engine in [verilog::Engine::Bytecode, verilog::Engine::Event] {
                    let mut h = Harness::new(&design, &module, f, args).expect("probed above");
                    h.set_engine(engine);
                    runs.push(h.run(DEFAULT_SIM_MAX_CYCLES).map_err(|e| e.to_string()));
                }
                match (&runs[0], &runs[1]) {
                    (Ok(bc), Ok(ev)) if same(bc, ev) => {}
                    (Err(be), Err(ee)) if be == ee => {}
                    _ => {
                        return SimOracle::Divergence(format!(
                            "@{name} lane {lane}: bytecode vs event: {:?} vs {:?}",
                            runs[0], runs[1]
                        ))
                    }
                }
                scalar.push(runs.swap_remove(0));
            }
            // Batched differential: only meaningful when every scalar lane
            // completed (a failing lane aborts the whole batch by design).
            if scalar.iter().all(Result::is_ok) {
                let mut bh = match Harness::new_batched(&design, &module, f, &lane_args) {
                    Ok(h) => h,
                    Err(e) => {
                        return SimOracle::Divergence(format!(
                            "@{name}: batched harness failed where scalar succeeded: {e}"
                        ))
                    }
                };
                match bh.run_batched(DEFAULT_SIM_MAX_CYCLES) {
                    Ok(batch) => {
                        for (lane, (b, s)) in batch.iter().zip(&scalar).enumerate() {
                            let s = s.as_ref().expect("all lanes ok");
                            if !same(b, s) {
                                return SimOracle::Divergence(format!(
                                    "@{name} lane {lane}: batched diverged from scalar \
                                     (cycles {} vs {})",
                                    b.cycles, s.cycles
                                ));
                            }
                        }
                    }
                    Err(e) => {
                        return SimOracle::Divergence(format!(
                            "@{name}: batched run failed where every scalar lane \
                             succeeded: {e}"
                        ))
                    }
                }
            }
            functions += 1;
        }
        if functions == 0 {
            return SimOracle::Skipped("no simulable functions".to_string());
        }
        SimOracle::Agreed {
            functions,
            lanes: lanes.max(1),
        }
    })
}

// ---------------------------------------------------------------------------
// Mutation engine
// ---------------------------------------------------------------------------

/// Keywords and fragments from both HIR syntaxes: injecting these drives the
/// fuzzer into deeper parser states than raw byte noise would.
const DICTIONARY: &[&str] = &[
    "hir.func",
    "hir.alloc",
    "hir.for",
    "hir.yield",
    "hir.return",
    "hir.time",
    "hir.delay",
    "!hir.time",
    "!hir.memref",
    "!hir.const",
    "offset",
    "at",
    "iter_time",
    "->",
    "i32",
    "i1",
    "f32",
    "index",
    "%t",
    "%0",
    "%arg0",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "\"",
    ":",
    ",",
    "=",
    "0",
    "1",
    "16",
    "4294967295",
    "-1",
];

/// Apply one random mutation to `input`, returning the mutant.
///
/// Mutations are a mix of byte-level (flip, insert, delete, duplicate-span,
/// truncate) and token-level (delete/duplicate/swap a whitespace-token,
/// splice a dictionary keyword) operators. Deterministic in `rng`.
pub fn mutate(input: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut out = input.to_vec();
    if out.is_empty() {
        out.extend_from_slice(DICTIONARY[rng.gen_range(0..DICTIONARY.len())].as_bytes());
        return out;
    }
    match rng.gen_range(0..8u32) {
        // Flip a random bit.
        0 => {
            let i = rng.gen_range(0..out.len());
            out[i] ^= 1 << rng.gen_range(0..8u32);
        }
        // Insert a random byte (biased towards printable ASCII).
        1 => {
            let i = rng.gen_range(0..out.len() + 1);
            let b = if rng.gen_bool(0.8) {
                rng.gen_range(0x20u32..0x7f) as u8
            } else {
                rng.next_u64() as u8
            };
            out.insert(i, b);
        }
        // Delete a short span.
        2 => {
            let i = rng.gen_range(0..out.len());
            let len = rng.gen_range(1..9usize).min(out.len() - i);
            out.drain(i..i + len);
        }
        // Duplicate a span somewhere else.
        3 => {
            let i = rng.gen_range(0..out.len());
            let len = rng.gen_range(1..17usize).min(out.len() - i);
            let span: Vec<u8> = out[i..i + len].to_vec();
            let j = rng.gen_range(0..out.len() + 1);
            out.splice(j..j, span);
        }
        // Truncate the tail.
        4 => {
            let keep = rng.gen_range(0..out.len());
            out.truncate(keep);
        }
        // Inject a dictionary token at a random position.
        5 => {
            let tok = DICTIONARY[rng.gen_range(0..DICTIONARY.len())];
            let j = rng.gen_range(0..out.len() + 1);
            out.splice(j..j, tok.bytes());
        }
        // Delete or duplicate one whitespace-separated token.
        6 => {
            let text = String::from_utf8_lossy(&out).into_owned();
            let mut toks: Vec<&str> = text.split_whitespace().collect();
            if toks.len() > 1 {
                let i = rng.gen_range(0..toks.len());
                if rng.gen_bool(0.5) {
                    toks.remove(i);
                } else {
                    let t = toks[i];
                    toks.insert(i, t);
                }
                out = toks.join(" ").into_bytes();
            }
        }
        // Swap two whole lines (breaks SSA dominance / schedule order).
        _ => {
            let text = String::from_utf8_lossy(&out).into_owned();
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.len() > 1 {
                let i = rng.gen_range(0..lines.len());
                let j = rng.gen_range(0..lines.len());
                lines.swap(i, j);
                out = lines.join("\n").into_bytes();
            }
        }
    }
    out
}

/// Derive a fuzz candidate from `base` with `1..=rounds` stacked mutations.
pub fn mutant(base: &[u8], rounds: usize, rng: &mut StdRng) -> String {
    let n = rng.gen_range(1..rounds.max(1) + 1);
    let mut data = base.to_vec();
    for _ in 0..n {
        data = mutate(&data, rng);
    }
    String::from_utf8_lossy(&data).into_owned()
}

// ---------------------------------------------------------------------------
// Multi-function module synthesis
// ---------------------------------------------------------------------------

/// Synthesize a *valid* module of 2–8 functions with cross-function
/// `hir.call`s, deterministically from `rng`.
///
/// The first function is an external declaration; every later function has a
/// body that calls one randomly chosen earlier function (delays balanced with
/// `hir.delay` so the module passes schedule verification). Seeding the
/// mutator with these drives the per-function parallel pipeline — split,
/// worker pool, deterministic splice/merge — instead of the single-function
/// path the `examples/` corpus mostly covers.
pub fn synth_multi_func(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..9usize);
    // delays[k] = declared result delay of function k.
    let mut delays: Vec<u64> = Vec::with_capacity(n);
    let mut out = String::new();
    let d0 = rng.gen_range(1..4u64);
    out.push_str(&format!(
        "\"hir.func\"() {{arg_types = [i32, i32], external = unit, \
         result_delays = [{d0} : index], result_types = [i32], \
         sym_name = \"f0\"}} : () -> ()\n"
    ));
    delays.push(d0);
    for k in 1..n {
        // Call any earlier function; the callee's latency becomes this
        // function's latency (the add after the call is combinational).
        let callee = rng.gen_range(0..k);
        let d = delays[callee];
        out.push_str(&format!(
            "\"hir.func\"() ({{\n\
             ^bb(%0: i32, %1: i32, %2: i32, %3: !hir.time):\n\
             \x20 %4 = \"hir.call\"(%0, %1, %3) {{callee = @f{callee}, offset = 0 : index}} : (i32, i32, !hir.time) -> (i32)\n\
             \x20 %5 = \"hir.delay\"(%2, %3) {{by = {d} : index, offset = 0 : index}} : (i32, !hir.time) -> (i32)\n\
             \x20 %6 = \"hir.add\"(%4, %5) : (i32, i32) -> (i32)\n\
             \x20 \"hir.return\"(%6) : (i32) -> ()\n\
             }}) {{arg_names = [\"a\", \"b\", \"c\"], result_delays = [{d} : index], sym_name = \"f{k}\"}} : () -> ()\n"
        ));
        delays.push(d);
    }
    out
}

// ---------------------------------------------------------------------------
// Reducer
// ---------------------------------------------------------------------------

/// Greedily shrink `source` by deleting line chunks while `keeps_failing`
/// still holds (ddmin-style: halving chunk sizes down to single lines).
///
/// The predicate receives each candidate and must return `true` when the
/// candidate still exhibits the behaviour being isolated (e.g. panics in the
/// same stage). The final result always satisfies the predicate.
pub fn reduce_lines(source: &str, mut keeps_failing: impl FnMut(&str) -> bool) -> String {
    let mut lines: Vec<String> = source.lines().map(String::from).collect();
    let mut chunk = lines.len().max(1);
    while chunk > 0 {
        let mut i = 0;
        while i < lines.len() {
            let end = (i + chunk).min(lines.len());
            let mut candidate = lines.clone();
            candidate.drain(i..end);
            let text = candidate.join("\n");
            if keeps_failing(&text) {
                lines = candidate; // keep the deletion; same index is new text
            } else {
                i = end;
            }
        }
        chunk /= 2;
    }
    lines.join("\n")
}

/// Character-level tail reduction on the (already line-reduced) text: trim
/// trailing characters while the predicate holds. Cheap and often strips
/// noise the line pass cannot.
pub fn reduce_tail(source: &str, mut keeps_failing: impl FnMut(&str) -> bool) -> String {
    let mut text = source.to_string();
    let mut cut = text.len() / 2;
    while cut > 0 {
        while text.len() > cut {
            let mut candidate = text.clone();
            let new_len = text.len() - cut;
            // Truncate on a char boundary.
            let mut n = new_len;
            while n > 0 && !candidate.is_char_boundary(n) {
                n -= 1;
            }
            candidate.truncate(n);
            if keeps_failing(&candidate) {
                text = candidate;
            } else {
                break;
            }
        }
        cut /= 2;
    }
    text
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

/// Load the fuzz corpus: every `.mlir` file under `dir`, sorted by name for
/// deterministic iteration order.
///
/// # Errors
/// Returns an error string when the directory cannot be read or holds no
/// `.mlir` files.
pub fn load_corpus(dir: &std::path::Path) -> Result<Vec<(String, Vec<u8>)>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut files: Vec<(String, Vec<u8>)> = Vec::new();
    for entry in rd.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("mlir") {
            let data = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            files.push((path.display().to_string(), data));
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    if files.is_empty() {
        return Err(format!("no .mlir files in {}", dir.display()));
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn quiet<T>(f: impl FnOnce() -> T + std::panic::UnwindSafe) -> T {
        // Keep expected panics out of test output.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    const VALID: &str = r#"
"hir.func"() {arg_types = [i32, i32], external = unit, result_delays = [2 : index], result_types = [i32], sym_name = "mult"} : () -> ()
"#;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let base = b"hir.func @f at %t () -> () { }";
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| mutant(base, 4, &mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| mutant(base, 4, &mut rng)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(8);
            (0..10).map(|_| mutant(base, 4, &mut rng)).collect()
        };
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn pipeline_accepts_trivial_valid_module() {
        let outcome = run_pipeline(VALID).expect("no panic");
        assert_eq!(outcome.parse_errors, 0);
        assert!(outcome.verified);
    }

    #[test]
    fn pipeline_reports_diagnostics_not_panics_on_garbage() {
        for garbage in [
            "",
            "}}}}((((",
            "hir.func \u{0} @x",
            "%1 = \"a.b\"(%9) : (i32) -> (i32)",
            "hir.func @f at %t(%x : !hir.memref<oops>",
        ] {
            let outcome = quiet(|| run_pipeline(garbage)).unwrap_or_else(|r| {
                panic!("contract violated on {garbage:?}: {r}");
            });
            let _ = outcome; // rejection is fine; panicking is not
        }
    }

    #[test]
    fn mini_fuzz_smoke_holds_the_contract() {
        // A small in-test smoke run; CI runs the real 500-iteration binary.
        let base = VALID.as_bytes();
        quiet(|| {
            for seed in 0..60u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let input = mutant(base, 4, &mut rng);
                if let Err(report) = run_pipeline(&input) {
                    panic!("seed {seed}: {report}\ninput:\n{input}");
                }
            }
        });
    }

    #[test]
    fn synthesized_multi_func_modules_compile_clean() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let src = synth_multi_func(&mut rng);
            assert!(src.matches("hir.func").count() >= 2, "seed {seed}:\n{src}");
            assert!(src.contains("hir.call"), "seed {seed}: no cross-call");
            let outcome = run_pipeline(&src).expect("no panic");
            assert_eq!(outcome.parse_errors, 0, "seed {seed}:\n{src}");
            assert!(outcome.verified, "seed {seed}:\n{src}");
            assert!(outcome.optimized, "seed {seed}:\n{src}");
        }
    }

    #[test]
    fn multi_func_mutants_hold_the_contract_at_max_threads() {
        quiet(|| {
            for seed in 0..30u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let base = synth_multi_func(&mut rng);
                let input = mutant(base.as_bytes(), 4, &mut rng);
                if let Err(report) = run_pipeline_with_threads(&input, 4) {
                    panic!("seed {seed}: {report}\ninput:\n{input}");
                }
            }
        });
    }

    #[test]
    fn sim_oracle_agrees_on_valid_corpus_file() {
        // The mac example exercises scalars, a memref, and a result port.
        let src = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/mac.mlir"),
        )
        .expect("examples/mac.mlir");
        match check_sim_engines(&src, 42, 3).expect("no panic") {
            SimOracle::Agreed { functions, lanes } => {
                assert!(functions >= 1);
                assert_eq!(lanes, 3);
            }
            other => panic!("expected agreement on a shipped example, got {other:?}"),
        }
    }

    #[test]
    fn sim_oracle_skips_garbage() {
        match quiet(|| check_sim_engines("}}}}((((", 1, 2)).expect("no panic") {
            SimOracle::Skipped(_) => {}
            other => panic!("garbage must be skipped, got {other:?}"),
        }
    }

    #[test]
    fn reducer_shrinks_to_the_failing_line() {
        let input = "line one\nline two\nBOOM here\nline four\nline five";
        let reduced = reduce_lines(input, |s| s.contains("BOOM"));
        assert_eq!(reduced, "BOOM here");
        let reduced = reduce_tail(&reduced, |s| s.contains("BOOM"));
        assert_eq!(reduced, "BOOM");
    }

    #[test]
    fn reducer_result_always_satisfies_predicate() {
        let input = (0..32)
            .map(|i| format!("line {i} {}", if i == 13 || i == 27 { "X" } else { "" }))
            .collect::<Vec<_>>()
            .join("\n");
        // Needs BOTH markers: forces the reducer to keep two separated lines.
        let pred = |s: &str| s.matches('X').count() >= 2;
        let reduced = reduce_lines(&input, pred);
        assert!(pred(&reduced));
        assert_eq!(reduced.lines().count(), 2);
    }
}
