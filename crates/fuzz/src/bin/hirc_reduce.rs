//! `hirc-reduce` — greedy test-case reducer for pipeline crashes.
//!
//! ```text
//! hirc-reduce fuzz-crashes/crash-seed1-iter42.mlir -o reduced.mlir
//! ```
//!
//! Establishes the baseline panic (stage name) for the input, then deletes
//! line chunks and trailing characters while the candidate still panics in
//! the same stage. The reduced case goes to `-o` (or stdout) and is ready to
//! attach to a bug report. Exit codes: 0 reduced, 1 input does not panic,
//! 2 usage error.

use hir_fuzz::{reduce_lines, reduce_tail, run_pipeline};
use std::process::ExitCode;

const USAGE: &str = "usage: hirc-reduce <crash.mlir> [-o out.mlir]
";

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-o" => match args.next() {
                Some(p) => output = Some(p),
                None => {
                    eprintln!("hirc-reduce: -o needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if !a.starts_with('-') && input.is_none() => input = Some(a),
            other => {
                eprintln!("hirc-reduce: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("hirc-reduce: no input file (try --help)");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hirc-reduce: cannot read '{input}': {e}");
            return ExitCode::from(2);
        }
    };
    // Panics are the object of study here; keep the hook quiet.
    std::panic::set_hook(Box::new(|_| {}));

    let Err(baseline) = run_pipeline(&source) else {
        eprintln!("hirc-reduce: input does not panic the pipeline; nothing to reduce");
        return ExitCode::from(1);
    };
    eprintln!("hirc-reduce: baseline: {baseline}");

    // "Still interesting" = still panics in the same stage. Messages may
    // drift as context is deleted; the stage is the stable signature.
    let mut tested: u64 = 0;
    let mut still_fails = |candidate: &str| {
        tested += 1;
        matches!(run_pipeline(candidate), Err(r) if r.stage == baseline.stage)
    };
    let reduced = reduce_tail(&reduce_lines(&source, &mut still_fails), &mut still_fails);
    eprintln!(
        "hirc-reduce: {} -> {} bytes in {tested} probe(s)",
        source.len(),
        reduced.len()
    );

    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &reduced) {
                eprintln!("hirc-reduce: cannot write '{path}': {e}");
                return ExitCode::from(2);
            }
            eprintln!("hirc-reduce: wrote {path}");
        }
        None => print!("{reduced}"),
    }
    ExitCode::SUCCESS
}
