//! `hirc-fuzz` — deterministic mutational fuzzer for the HIR pipeline.
//!
//! ```text
//! hirc-fuzz --iters=500 --seed=1 --corpus=examples --save=fuzz-crashes
//! ```
//!
//! Each iteration derives a mutant from the corpus (reproducible from
//! `(seed, iteration)` alone), runs it through parse → verify → optimize →
//! print → codegen, and records any panic that escapes a stage. Exit code 0
//! means the *diagnostics, never panics* contract held for every iteration;
//! 1 means at least one crash (saved under `--save` for `hirc-reduce`);
//! 2 means usage error.

use hir_fuzz::{load_corpus, mutant, run_pipeline_with_threads, synth_multi_func};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::process::ExitCode;

const USAGE: &str = "usage: hirc-fuzz [options]

options:
  --iters=N      number of fuzz iterations (default 500)
  --seed=N       base RNG seed; (seed, iteration) reproduces a case (default 1)
  --corpus=DIR   directory of .mlir seed files (default examples)
  --save=DIR     write crashing inputs here (default fuzz-crashes)
  --max-mutations=N  max stacked mutations per input (default 4)
  --threads=N    worker threads for the verify/optimize stages: a positive
                 integer or 'max' (all cores; default 1)
  --help, -h     show this help
";

struct Options {
    iters: u64,
    seed: u64,
    corpus: String,
    save: String,
    max_mutations: usize,
    threads: usize,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        iters: 500,
        seed: 1,
        corpus: "examples".into(),
        save: "fuzz-crashes".into(),
        max_mutations: 4,
        threads: 1,
    };
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--iters=") {
            opts.iters = v.parse().map_err(|_| format!("bad --iters '{v}'"))?;
        } else if let Some(v) = a.strip_prefix("--seed=") {
            opts.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
        } else if let Some(v) = a.strip_prefix("--threads=") {
            opts.threads = if v == "max" {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            } else {
                let n: usize = v.parse().map_err(|_| format!("bad --threads '{v}'"))?;
                if n == 0 {
                    return Err("--threads must be at least 1 (or 'max')".into());
                }
                n
            };
        } else if let Some(v) = a.strip_prefix("--corpus=") {
            opts.corpus = v.to_string();
        } else if let Some(v) = a.strip_prefix("--save=") {
            opts.save = v.to_string();
        } else if let Some(v) = a.strip_prefix("--max-mutations=") {
            opts.max_mutations = v
                .parse()
                .map_err(|_| format!("bad --max-mutations '{v}'"))?;
        } else if a == "--help" || a == "-h" {
            print!("{USAGE}");
            return Ok(None);
        } else {
            return Err(format!("unknown argument '{a}'"));
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hirc-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    // The harness catches panics itself; the default hook would spray one
    // backtrace per triggered bug into the log.
    std::panic::set_hook(Box::new(|_| {}));

    let corpus = match load_corpus(std::path::Path::new(&opts.corpus)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("hirc-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "hirc-fuzz: {} corpus file(s), {} iterations, seed {}, {} thread(s)",
        corpus.len(),
        opts.iters,
        opts.seed,
        opts.threads
    );

    let mut crashes: u64 = 0;
    let mut outcomes = [0u64; 3]; // [rejected, verified, codegen_ok]
    for iter in 0..opts.iters {
        // Fresh RNG per iteration: any crash reproduces from (seed, iter)
        // without replaying the previous iterations.
        let mut rng = StdRng::seed_from_u64(opts.seed ^ (iter.wrapping_mul(0x9E37_79B9)));
        // One iteration in four starts from a synthesized multi-function
        // module (cross-calls, 2-8 funcs) to drive the parallel pipeline's
        // split/splice path; the rest mutate the on-disk corpus.
        let input = if rng.gen_bool(0.25) {
            let base = synth_multi_func(&mut rng);
            mutant(base.as_bytes(), opts.max_mutations, &mut rng)
        } else {
            let (_, base) = &corpus[rng.gen_range(0..corpus.len())];
            mutant(base, opts.max_mutations, &mut rng)
        };
        match run_pipeline_with_threads(&input, opts.threads) {
            Ok(o) => {
                let bucket = if o.codegen_ok {
                    2
                } else if o.verified && o.parse_errors == 0 {
                    1
                } else {
                    0
                };
                outcomes[bucket] += 1;
            }
            Err(report) => {
                crashes += 1;
                let dir = std::path::Path::new(&opts.save);
                let _ = std::fs::create_dir_all(dir);
                let path = dir.join(format!("crash-seed{}-iter{iter}.mlir", opts.seed));
                match std::fs::write(&path, &input) {
                    Ok(()) => eprintln!(
                        "hirc-fuzz: iter {iter}: {report} -- input saved to {}",
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("hirc-fuzz: iter {iter}: {report} -- could not save input: {e}")
                    }
                }
            }
        }
    }
    eprintln!(
        "hirc-fuzz: {} iterations: {} rejected/partial, {} verified, {} through codegen, {} panic(s)",
        opts.iters, outcomes[0], outcomes[1], outcomes[2], crashes
    );
    if crashes > 0 {
        eprintln!("hirc-fuzz: contract violated; reduce with: hirc-reduce <saved-input>");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
