//! `hirc-fuzz` — deterministic mutational fuzzer for the HIR pipeline.
//!
//! ```text
//! hirc-fuzz --iters=500 --seed=1 --corpus=examples --save=fuzz-crashes
//! ```
//!
//! Each iteration derives a mutant from the corpus (reproducible from
//! `(seed, iteration)` alone), runs it through parse → verify → optimize →
//! print → codegen, and records any panic that escapes a stage. Exit code 0
//! means the *diagnostics, never panics* contract held for every iteration;
//! 1 means at least one crash (saved under `--save` for `hirc-reduce`);
//! 2 means usage error.

use hir_fuzz::{
    check_equivalence, check_sim_engines, load_corpus, mutant, run_pipeline_with_threads,
    synth_multi_func, EquivOracle, SimOracle,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::process::ExitCode;

const USAGE: &str = "usage: hirc-fuzz [options]

options:
  --iters=N      number of fuzz iterations (default 500)
  --seed=N       base RNG seed; (seed, iteration) reproduces a case (default 1)
  --corpus=DIR   directory of .mlir seed files (default examples)
  --save=DIR     write crashing inputs here (default fuzz-crashes)
  --max-mutations=N  max stacked mutations per input (default 4)
  --threads=N    worker threads for the verify/optimize stages: a positive
                 integer or 'max' (all cores; default 1)
  --check-equiv[=K]  for every mutant that survives through codegen, also run
                 the BMC miter as an oracle: prove (bounded to K cycles,
                 default 8) that the standard pipeline preserved its
                 semantics. Replay-confirmed miscompiles are saved like
                 crashes and fail the run. Conflict-only budgets keep the
                 verdict deterministic per (seed, iteration).
  --check-sim[=LANES]  for every mutant that survives through codegen, run the
                 simulator-engine differential oracle: bytecode vs
                 event-driven on every function, plus one batched pass with
                 LANES random stimulus lanes (default 4) that must reproduce
                 every scalar run bit for bit. Divergences are saved like
                 crashes and fail the run.
  --help, -h     show this help
";

struct Options {
    iters: u64,
    seed: u64,
    corpus: String,
    save: String,
    max_mutations: usize,
    threads: usize,
    check_equiv: Option<u32>,
    check_sim: Option<usize>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        iters: 500,
        seed: 1,
        corpus: "examples".into(),
        save: "fuzz-crashes".into(),
        max_mutations: 4,
        threads: 1,
        check_equiv: None,
        check_sim: None,
    };
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--iters=") {
            opts.iters = v.parse().map_err(|_| format!("bad --iters '{v}'"))?;
        } else if let Some(v) = a.strip_prefix("--seed=") {
            opts.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
        } else if let Some(v) = a.strip_prefix("--threads=") {
            opts.threads = if v == "max" {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            } else {
                let n: usize = v.parse().map_err(|_| format!("bad --threads '{v}'"))?;
                if n == 0 {
                    return Err("--threads must be at least 1 (or 'max')".into());
                }
                n
            };
        } else if let Some(v) = a.strip_prefix("--corpus=") {
            opts.corpus = v.to_string();
        } else if let Some(v) = a.strip_prefix("--save=") {
            opts.save = v.to_string();
        } else if let Some(v) = a.strip_prefix("--max-mutations=") {
            opts.max_mutations = v
                .parse()
                .map_err(|_| format!("bad --max-mutations '{v}'"))?;
        } else if a == "--check-equiv" {
            opts.check_equiv = Some(8);
        } else if let Some(v) = a.strip_prefix("--check-equiv=") {
            let k: u32 = v.parse().map_err(|_| format!("bad --check-equiv '{v}'"))?;
            if k == 0 {
                return Err("--check-equiv needs at least 1 cycle".into());
            }
            opts.check_equiv = Some(k);
        } else if a == "--check-sim" {
            opts.check_sim = Some(4);
        } else if let Some(v) = a.strip_prefix("--check-sim=") {
            let lanes: usize = v.parse().map_err(|_| format!("bad --check-sim '{v}'"))?;
            if lanes == 0 || lanes > 64 {
                return Err("--check-sim needs 1..=64 lanes".into());
            }
            opts.check_sim = Some(lanes);
        } else if a == "--help" || a == "-h" {
            print!("{USAGE}");
            return Ok(None);
        } else {
            return Err(format!("unknown argument '{a}'"));
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hirc-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    // The harness catches panics itself; the default hook would spray one
    // backtrace per triggered bug into the log.
    std::panic::set_hook(Box::new(|_| {}));

    let corpus = match load_corpus(std::path::Path::new(&opts.corpus)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("hirc-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "hirc-fuzz: {} corpus file(s), {} iterations, seed {}, {} thread(s)",
        corpus.len(),
        opts.iters,
        opts.seed,
        opts.threads
    );

    let mut crashes: u64 = 0;
    let mut miscompiles: u64 = 0;
    let mut divergences: u64 = 0;
    let mut outcomes = [0u64; 3]; // [rejected, verified, codegen_ok]
    let mut equiv = [0u64; 3]; // [proved, sampled, skipped]
    let mut sim = [0u64; 2]; // [agreed, skipped]
    for iter in 0..opts.iters {
        // Fresh RNG per iteration: any crash reproduces from (seed, iter)
        // without replaying the previous iterations.
        let mut rng = StdRng::seed_from_u64(opts.seed ^ (iter.wrapping_mul(0x9E37_79B9)));
        // One iteration in four starts from a synthesized multi-function
        // module (cross-calls, 2-8 funcs) to drive the parallel pipeline's
        // split/splice path; the rest mutate the on-disk corpus.
        let input = if rng.gen_bool(0.25) {
            let base = synth_multi_func(&mut rng);
            mutant(base.as_bytes(), opts.max_mutations, &mut rng)
        } else {
            let (_, base) = &corpus[rng.gen_range(0..corpus.len())];
            mutant(base, opts.max_mutations, &mut rng)
        };
        match run_pipeline_with_threads(&input, opts.threads) {
            Ok(o) => {
                let bucket = if o.codegen_ok {
                    2
                } else if o.verified && o.parse_errors == 0 {
                    1
                } else {
                    0
                };
                outcomes[bucket] += 1;
                // The translation-validation oracle: only inputs that compile
                // all the way through codegen have two designs to compare.
                if let (Some(k), true) = (opts.check_equiv, o.codegen_ok) {
                    match check_equivalence(&input, k, opts.threads) {
                        Ok(EquivOracle::Proved) => equiv[0] += 1,
                        Ok(EquivOracle::Sampled) => equiv[1] += 1,
                        Ok(EquivOracle::Skipped(_)) => equiv[2] += 1,
                        Ok(EquivOracle::Miscompile(detail)) => {
                            miscompiles += 1;
                            let msg = format!("miscompile (replay-confirmed): {detail}");
                            save_finding(&opts.save, "miscompile", opts.seed, iter, &input, &msg);
                        }
                        Err(report) => {
                            crashes += 1;
                            let msg = format!("equiv oracle {report}");
                            save_finding(&opts.save, "crash", opts.seed, iter, &input, &msg);
                        }
                    }
                }
                // The engine differential oracle: bytecode vs event-driven vs
                // batched, on random stimuli derived from (seed, iteration).
                if let (Some(lanes), true) = (opts.check_sim, o.codegen_ok) {
                    match check_sim_engines(&input, opts.seed ^ iter, lanes) {
                        Ok(SimOracle::Agreed { .. }) => sim[0] += 1,
                        Ok(SimOracle::Skipped(_)) => sim[1] += 1,
                        Ok(SimOracle::Divergence(detail)) => {
                            divergences += 1;
                            let msg = format!("engine divergence: {detail}");
                            save_finding(&opts.save, "divergence", opts.seed, iter, &input, &msg);
                        }
                        Err(report) => {
                            crashes += 1;
                            let msg = format!("sim oracle {report}");
                            save_finding(&opts.save, "crash", opts.seed, iter, &input, &msg);
                        }
                    }
                }
            }
            Err(report) => {
                crashes += 1;
                save_finding(
                    &opts.save,
                    "crash",
                    opts.seed,
                    iter,
                    &input,
                    &report.to_string(),
                );
            }
        }
    }
    eprintln!(
        "hirc-fuzz: {} iterations: {} rejected/partial, {} verified, {} through codegen, {} panic(s)",
        opts.iters, outcomes[0], outcomes[1], outcomes[2], crashes
    );
    if opts.check_equiv.is_some() {
        eprintln!(
            "hirc-fuzz: equiv oracle: {} proved, {} sampled, {} skipped, {} miscompile(s)",
            equiv[0], equiv[1], equiv[2], miscompiles
        );
    }
    if opts.check_sim.is_some() {
        eprintln!(
            "hirc-fuzz: sim oracle: {} agreed, {} skipped, {} divergence(s)",
            sim[0], sim[1], divergences
        );
    }
    if crashes > 0 || miscompiles > 0 || divergences > 0 {
        eprintln!("hirc-fuzz: contract violated; reduce with: hirc-reduce <saved-input>");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Persist a finding's input under `save_dir` and log a one-line report.
fn save_finding(save_dir: &str, kind: &str, seed: u64, iter: u64, input: &str, msg: &str) {
    let dir = std::path::Path::new(save_dir);
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{kind}-seed{seed}-iter{iter}.mlir"));
    match std::fs::write(&path, input) {
        Ok(()) => eprintln!(
            "hirc-fuzz: iter {iter}: {msg} -- input saved to {}",
            path.display()
        ),
        Err(e) => eprintln!("hirc-fuzz: iter {iter}: {msg} -- could not save input: {e}"),
    }
}
