//! Dual-port → single-port RAM demotion (paper §2's motivating example):
//! when a buffer is allocated with separate read and write ports but the
//! explicit schedules prove the accesses never overlap in time, the two
//! ports collapse into one read-write port, halving the RAM's port cost.

use hir::dialect::attrkey;
use hir::ops::{AllocOp, FuncOp, MemReadOp, MemWriteOp};
use hir::types::{MemKind, MemrefInfo, Port};
use hir_verify::ScheduleInfo;
use ir::{AttrMap, Attribute, Module, OpId, Pass, PassContext, PassResult, ValueId};

/// The port-demotion pass.
#[derive(Debug, Default)]
pub struct PortDemotePass {
    /// Number of allocs demoted in the last run.
    pub demoted: usize,
}

impl PortDemotePass {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Pass for PortDemotePass {
    fn name(&self) -> &str {
        "hir-port-demote"
    }

    fn run(&mut self, module: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
        self.demoted = 0;
        let tops = module.top_ops().to_vec();
        for top in tops {
            let Some(func) = FuncOp::wrap(module, top) else {
                continue;
            };
            if func.is_external(module) {
                continue;
            }
            let (info, diags) = hir_verify::schedule_info(module, func);
            if diags.has_errors() {
                continue; // cannot reason about a broken schedule
            }
            let allocs: Vec<OpId> = module
                .collect_ops(top)
                .into_iter()
                .filter(|&op| AllocOp::wrap(module, op).is_some())
                .collect();
            for alloc in allocs {
                if self.try_demote(module, alloc, &info) {
                    self.demoted += 1;
                }
            }
        }
        obs::counter_add("opt", "ports_demoted", self.demoted as u64);
        if self.demoted > 0 {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        }
    }
}

/// Record a missed-optimization remark for an alloc the pass left alone.
fn miss(module: &Module, alloc_op: OpId, why: impl Into<String>) {
    if obs::remarks_enabled() {
        obs::emit_remark(obs::Remark::missed(
            "hir-port-demote",
            module.op(alloc_op).loc().to_string(),
            format!("alloc not demoted to a single port: {}", why.into()),
        ));
    }
}

impl PortDemotePass {
    fn try_demote(&self, module: &mut Module, alloc_op: OpId, sched: &ScheduleInfo) -> bool {
        let alloc = AllocOp(alloc_op);
        let ports = alloc.ports(module);
        if ports.len() != 2 {
            if ports.len() > 2 {
                miss(
                    module,
                    alloc_op,
                    format!("alloc exposes {} ports, not a read/write pair", ports.len()),
                );
            }
            return false;
        }
        // Non-memref port types mean malformed-but-unverified IR; skip the
        // alloc rather than assume the verifier ran before us.
        let Some(infos) = ports
            .iter()
            .map(|&p| MemrefInfo::from_type(&module.value_type(p)))
            .collect::<Option<Vec<MemrefInfo>>>()
        else {
            return false;
        };
        // Exactly one read + one write port of RAM kind.
        let (r_idx, w_idx) = match (infos[0].port, infos[1].port) {
            (Port::Read, Port::Write) => (0, 1),
            (Port::Write, Port::Read) => (1, 0),
            _ => {
                miss(module, alloc_op, "ports are not one read + one write");
                return false;
            }
        };
        if infos[0].kind == MemKind::Reg {
            // Register files have no port economics to win.
            miss(module, alloc_op, "register-file allocs have free ports");
            return false;
        }
        // Collect all access instants per port.
        let mut accesses: Vec<(ValueId, i64, bool)> = Vec::new(); // (root, offset, ok)
        for &port in &ports {
            for u in module.value(port).uses().to_vec() {
                let (root, offset) = if let Some(r) = MemReadOp::wrap(module, u.op) {
                    (r.time(module), r.offset(module))
                } else if let Some(w) = MemWriteOp::wrap(module, u.op) {
                    (w.time(module), w.offset(module))
                } else {
                    // Escapes (e.g. passed to a call): give up.
                    miss(
                        module,
                        alloc_op,
                        "memref escapes through a non-access use (e.g. a call)",
                    );
                    return false;
                };
                accesses.push((root, offset, port == ports[r_idx]));
            }
        }
        // Reads must provably never coincide with writes. (Same-direction
        // conflicts are the verifier's job.) When both directions are
        // present, every cross pair must share one schedule root — so all
        // accesses must — and a read collides with a write iff their offsets
        // coincide modulo that root's II (exact equality when unpipelined).
        // Sort-and-sweep over the residues instead of comparing all pairs.
        let has_read = accesses.iter().any(|&(_, _, is_read)| is_read);
        let has_write = accesses.iter().any(|&(_, _, is_read)| !is_read);
        if has_read && has_write {
            let root = accesses[0].0;
            if accesses.iter().any(|&(r, _, _)| r != root) {
                // Different scopes: cannot prove disjoint.
                miss(module, alloc_op, "accesses lie on different schedule roots");
                return false;
            }
            let ii = sched.root_ii.get(&root).copied();
            let mut keys: Vec<(i64, bool)> = accesses
                .iter()
                .map(|&(_, offset, is_read)| {
                    let key = match ii {
                        Some(ii) => offset.rem_euclid(ii),
                        None => offset,
                    };
                    (key, is_read)
                })
                .collect();
            keys.sort_unstable();
            // Sorting groups equal residues, writes (false) before reads
            // (true): any cross-direction collision appears at an adjacent
            // boundary.
            if let Some(w) = keys
                .windows(2)
                .find(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1)
            {
                let modulus = match ii {
                    Some(ii) => format!(" (mod II {ii})"),
                    None => String::new(),
                };
                miss(
                    module,
                    alloc_op,
                    format!(
                        "a read and a write coincide at schedule offset {}{modulus}",
                        w[0].0
                    ),
                );
                return false;
            }
        }

        // Rewrite: one read-write port replaces both.
        let rw_info = infos[0].with_port(Port::ReadWrite);
        let loc = module.op(alloc_op).loc().clone();
        if obs::remarks_enabled() {
            obs::emit_remark(obs::Remark::applied(
                "hir-port-demote",
                loc.to_string(),
                "demoted dual-port RAM to a single read-write port",
            ));
        }
        let mut attrs = AttrMap::new();
        attrs.insert(
            attrkey::KIND.into(),
            Attribute::string(rw_info.kind.mnemonic()),
        );
        attrs.insert("demoted_single_port".into(), Attribute::Unit);
        let new_alloc = module.create_op(
            hir::opname::ALLOC,
            vec![],
            vec![rw_info.to_type()],
            attrs,
            loc,
        );
        module.insert_op_before(alloc_op, new_alloc);
        let new_port = module.op(new_alloc).results()[0];
        module.replace_all_uses(ports[r_idx], new_port);
        module.replace_all_uses(ports[w_idx], new_port);
        module.erase_op(alloc_op);
        true
    }
}
