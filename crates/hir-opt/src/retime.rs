//! Retiming across combinational operations (paper §7.4).
//!
//! When both operands of a combinational op are the same-shape delay of
//! earlier values — `op(delay(a, k), delay(b, k))` — the registers can be
//! moved across the operator: `delay(op(a, b), k)`. Two shift registers of
//! the operand widths collapse into one of the result width. This is the
//! register-motion half of retiming; the schedule verifier re-checks the
//! result, exactly as §7.4 prescribes for manual retiming.

use hir::dialect::{attrkey, opname};
use hir::ops::{self, DelayOp};
use ir::{Attribute, Module, OpId, RewritePattern, RewriteStatus, Rewriter};

/// `op(delay(a,k), delay(b,k))` → `delay(op(a,b), k)` when profitable.
pub struct RetimeAcrossOps;

impl RewritePattern for RetimeAcrossOps {
    fn name(&self) -> &str {
        "hir-retime-across-ops"
    }

    fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
        let m = rw.module();
        // Binary combinational ops only (same-instant operand semantics).
        let Some(kind) = ops::compute_kind(m, op) else {
            return RewriteStatus::NoMatch;
        };
        use hir::ops::ComputeKind as K;
        if !matches!(
            kind,
            K::Add | K::Sub | K::Mult | K::And | K::Or | K::Xor | K::Cmp(_)
        ) {
            return RewriteStatus::NoMatch;
        }
        let operands = m.op(op).operands().to_vec();
        if operands.len() != 2 {
            return RewriteStatus::NoMatch;
        }
        let delays: Vec<DelayOp> = operands
            .iter()
            .filter_map(|&v| m.defining_op(v).and_then(|d| DelayOp::wrap(m, d)))
            .collect();
        if delays.len() != 2 {
            return RewriteStatus::NoMatch;
        }
        let (d0, d1) = (delays[0], delays[1]);
        // Same delay amount, same time root, same offset.
        if d0.by(m) != d1.by(m)
            || d0.by(m) == 0
            || d0.time(m) != d1.time(m)
            || d0.offset(m) != d1.offset(m)
        {
            return RewriteStatus::NoMatch;
        }
        // Profitable when the result is no wider than the operands combined
        // (always true for same-width ops; comparisons shrink to 1 bit).
        let w_in: u32 = operands
            .iter()
            .map(|&v| m.value_type(v).bit_width().unwrap_or(32))
            .sum();
        let result = m.op(op).results()[0];
        let w_out = m.value_type(result).bit_width().unwrap_or(32);
        if w_out >= w_in {
            return RewriteStatus::NoMatch;
        }
        // The delayed op's result must only feed THIS op; otherwise the
        // shift registers are shared and removing them saves nothing.
        for d in [&d0, &d1] {
            if m.value(d.result(m)).uses().len() != 1 {
                return RewriteStatus::NoMatch;
            }
        }

        let by = d0.by(m);
        let time = d0.time(m);
        let offset = d0.offset(m);
        let res_ty = m.value_type(result);
        let loc = m.op(op).loc().clone();
        let name = m.op(op).name().clone();
        let attrs = m.op(op).attrs().clone();
        let (a, b) = (d0.input(m), d1.input(m));

        let m = rw.module_mut();
        // op(a, b) computed at the delays' input instant...
        let early = m.create_op(name, vec![a, b], vec![res_ty.clone()], attrs, loc.clone());
        m.insert_op_before(op, early);
        let early_v = m.op(early).results()[0];
        // ...then one delay of the (narrower) result.
        let mut dattrs = ir::AttrMap::new();
        dattrs.insert(attrkey::BY.into(), Attribute::index(by as i128));
        dattrs.insert(attrkey::OFFSET.into(), Attribute::index(offset as i128));
        let delayed = m.create_op(
            opname::DELAY,
            vec![early_v, time],
            vec![res_ty],
            dattrs,
            loc,
        );
        m.insert_op_before(op, delayed);
        let delayed_v = m.op(delayed).results()[0];
        rw.replace_op(op, &[delayed_v]);
        RewriteStatus::Changed
    }
}

/// Retiming as a standalone pass (DCE cleans up the orphaned delays).
#[derive(Debug, Default)]
pub struct RetimePass;

impl ir::Pass for RetimePass {
    fn name(&self) -> &str {
        "hir-retime"
    }

    fn run(&mut self, module: &mut Module, cx: &mut ir::PassContext<'_>) -> ir::PassResult {
        let patterns: Vec<Box<dyn RewritePattern>> =
            vec![Box::new(RetimeAcrossOps), Box::new(crate::fold::Dce)];
        let stats = ir::apply_patterns_greedily(module, cx.registry, &patterns);
        obs::counter_add("opt", "retime_rewrites", stats.applications as u64);
        if stats.applications > 0 {
            ir::PassResult::Changed
        } else {
            ir::PassResult::Unchanged
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};
    use hir::HirBuilder;
    use ir::Type;

    fn count_delay_bits(m: &Module) -> i64 {
        m.collect_all_ops()
            .into_iter()
            .filter(|&o| m.is_live(o))
            .filter_map(|o| DelayOp::wrap(m, o))
            .map(|d| d.by(m) * m.value_type(d.result(m)).int_width().unwrap_or(0) as i64)
            .sum()
    }

    #[test]
    fn merges_parallel_shift_registers() {
        // cmp(delay(x,3), delay(y,3)): two 32-bit x3 shift registers become
        // one 1-bit x3 register after retiming.
        let mut hb = HirBuilder::new();
        let f = hb.func("r", &[("x", Type::int(32)), ("y", Type::int(32))], &[3]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let dx = hb.delay(args[0], 3, t, 0);
        let dy = hb.delay(args[1], 3, t, 0);
        let lt = hb.cmp(hir::CmpPredicate::Lt, dx, dy);
        let wide = hb.zext(lt, Type::int(32));
        hb.return_(&[wide]);
        let mut m = hb.finish();

        let before_bits = count_delay_bits(&m);
        assert_eq!(before_bits, 2 * 3 * 32);

        let registry = hir::hir_registry();
        let mut diags = ir::DiagnosticEngine::new();
        let mut pm = ir::PassManager::new();
        pm.add(RetimePass);
        pm.run(&mut m, &registry, &mut diags).unwrap();

        let after_bits = count_delay_bits(&m);
        assert_eq!(after_bits, 3, "one 1-bit x3 shift register remains");

        // Schedule still valid, semantics preserved.
        let mut diags = ir::DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags)
            .unwrap_or_else(|_| panic!("{}", diags.render()));
        let r = Interpreter::new(&m)
            .run("r", &[ArgValue::Int(3), ArgValue::Int(9)])
            .unwrap();
        assert_eq!(r.results, vec![1]);
        let r = Interpreter::new(&m)
            .run("r", &[ArgValue::Int(9), ArgValue::Int(3)])
            .unwrap();
        assert_eq!(r.results, vec![0]);
    }

    #[test]
    fn does_not_fire_when_result_is_wider() {
        // add(delay(x,2), delay(y,2)) keeps 32+32 -> 32: moving the delay
        // saves 32 bits, so it SHOULD fire; but mult to 64 would not.
        let mut hb = HirBuilder::new();
        let f = hb.func("r", &[("x", Type::int(32)), ("y", Type::int(32))], &[2]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let dx = hb.delay(args[0], 2, t, 0);
        let dy = hb.delay(args[1], 2, t, 0);
        let s = hb.add(dx, dy);
        hb.return_(&[s]);
        let mut m = hb.finish();
        let registry = hir::hir_registry();
        let mut diags = ir::DiagnosticEngine::new();
        let mut pm = ir::PassManager::new();
        pm.add(RetimePass);
        pm.run(&mut m, &registry, &mut diags).unwrap();
        assert_eq!(
            count_delay_bits(&m),
            2 * 32,
            "64 operand bits -> 32 result bits"
        );
    }

    #[test]
    fn does_not_fire_on_shared_delays() {
        // The delayed value feeds two consumers: registers cannot be moved.
        let mut hb = HirBuilder::new();
        let f = hb.func("r", &[("x", Type::int(32)), ("y", Type::int(32))], &[2]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let dx = hb.delay(args[0], 2, t, 0);
        let dy = hb.delay(args[1], 2, t, 0);
        let c = hb.cmp(hir::CmpPredicate::Lt, dx, dy);
        let picked = hb.select(c, dx, dy); // dx/dy used again here
        hb.return_(&[picked]);
        let mut m = hb.finish();
        let registry = hir::hir_registry();
        let mut diags = ir::DiagnosticEngine::new();
        let mut pm = ir::PassManager::new();
        pm.add(RetimePass);
        pm.run(&mut m, &registry, &mut diags).unwrap();
        assert_eq!(count_delay_bits(&m), 2 * 2 * 32, "shared delays must stay");
    }
}
