//! Delay elimination (paper §6.4): shift-register sharing.
//!
//! Exact duplicates are removed by CSE. This pass handles the second case:
//! delays of the *same* input at the same time root with different lengths.
//! `delay(v, 5)` and `delay(v, 2)` need 5 + 2 = 7 registers when emitted
//! independently; chaining the longer one off the shorter
//! (`delay(delay(v, 2), 3)`) brings that down to 5.

use hir::dialect::{attrkey, opname};
use hir::ops::DelayOp;
use ir::{Attribute, Module, OpId, Pass, PassContext, PassResult, ValueId};
use std::collections::HashMap;

/// The shift-register sharing pass.
#[derive(Debug, Default)]
pub struct DelaySharePass {
    /// Registers saved in the last run (sum of shortened amounts).
    pub registers_saved: i64,
}

impl DelaySharePass {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Pass for DelaySharePass {
    fn name(&self) -> &str {
        "hir-delay-share"
    }

    fn run(&mut self, module: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
        self.registers_saved = 0;
        // Group delays by (block, input, time, offset).
        let mut groups: HashMap<(ir::BlockId, ValueId, ValueId, i64), Vec<OpId>> = HashMap::new();
        for op in module.collect_all_ops() {
            if !module.is_live(op) {
                continue;
            }
            let Some(d) = DelayOp::wrap(module, op) else {
                continue;
            };
            let Some(block) = module.op(op).parent() else {
                continue;
            };
            groups
                .entry((block, d.input(module), d.time(module), d.offset(module)))
                .or_default()
                .push(op);
        }
        for (_, mut ops) in groups {
            if ops.len() < 2 {
                continue;
            }
            // Chain in increasing-delay order; only chain pairs whose
            // textual order already satisfies dominance.
            ops.sort_by_key(|&o| DelayOp(o).by(module));
            for w in ops.windows(2) {
                let (prev, cur) = (DelayOp(w[0]), DelayOp(w[1]));
                let by_prev = prev.by(module);
                let by_cur = cur.by(module);
                if by_prev == by_cur || by_prev == 0 {
                    continue; // equal delays are CSE's job
                }
                if module.position_in_block(prev.id()) >= module.position_in_block(cur.id()) {
                    continue;
                }
                // cur := delay(prev.result, by_cur - by_prev)
                //        at the same root, offset shifted by by_prev.
                module.set_operand(cur.id(), 0, prev.result(module));
                module.set_attr(
                    cur.id(),
                    attrkey::BY,
                    Attribute::index((by_cur - by_prev) as i128),
                );
                let new_offset = cur.offset(module) + by_prev;
                module.set_attr(
                    cur.id(),
                    attrkey::OFFSET,
                    Attribute::index(new_offset as i128),
                );
                self.registers_saved += by_prev;
            }
        }
        // Erase zero-length delays (by == 0 after rewrites elsewhere).
        for op in module.collect_all_ops() {
            if !module.is_live(op) || module.op(op).name().as_str() != opname::DELAY {
                continue;
            }
            let d = DelayOp(op);
            if d.by(module) == 0 {
                let input = d.input(module);
                let result = d.result(module);
                if module.value_type(input) == module.value_type(result) {
                    module.replace_all_uses(result, input);
                    module.erase_op(op);
                }
            }
        }
        obs::counter_add("opt", "delay_registers_saved", self.registers_saved as u64);
        if self.registers_saved > 0 {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        }
    }
}
