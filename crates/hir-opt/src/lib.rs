//! # `hir-opt` — optimization passes for HIR (paper §6.2–§6.4)
//!
//! * [`fold`]: constant propagation/folding, algebraic identities, CSE and
//!   DCE (§6.2);
//! * [`strength`]: strength reduction of constant multiplies (§6.2);
//! * [`precision`]: bit-width narrowing from constant loop bounds (§6.3,
//!   responsible for the Table 4 flip-flop savings);
//! * [`delay_elim`]: shift-register sharing across `hir.delay` ops (§6.4);
//! * [`port_demote`]: dual-port → single-port RAM demotion when the explicit
//!   schedule proves reads and writes never collide (§2).
//!
//! [`standard_pipeline`] assembles them in the order the HIR compiler runs.

pub mod delay_elim;
pub mod fold;
pub mod port_demote;
pub mod precision;
pub mod retime;
pub mod strength;

pub use delay_elim::DelaySharePass;
pub use fold::{AlgebraicSimplify, CanonicalizePass, CsePass, Dce, FoldConstants};
pub use port_demote::PortDemotePass;
pub use precision::{signed_width_for, PrecisionPass};
pub use retime::{RetimeAcrossOps, RetimePass};
pub use strength::StrengthReduce;

use ir::PassManager;

/// The standard `-O2`-style pipeline used for the paper's "HIR (auto opt)"
/// configurations.
pub fn standard_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(CanonicalizePass)
        .add(CsePass)
        .add(RetimePass)
        .add(DelaySharePass::new())
        .add(PrecisionPass::new())
        .add(PortDemotePass::new())
        .add(CanonicalizePass)
        .add(CsePass);
    pm
}

/// Run the standard pipeline over a module (convenience wrapper).
///
/// # Errors
/// Returns the rendered [`ir::PipelineError`] of the first failed pass.
pub fn optimize(module: &mut ir::Module) -> Result<(), String> {
    let registry = hir::hir_registry();
    let mut diags = ir::DiagnosticEngine::new();
    standard_pipeline()
        .run(module, &registry, &mut diags)
        .map_err(|e| e.to_string())
}

/// Always-panicking pass, registered as `test-panic`: the test hook for the
/// crash-containment machinery (`--crash-reproducer`, exit code 3). Kept in
/// the real registry so end-to-end driver tests can trigger a genuine
/// mid-pipeline panic with `--pipeline=hir-canonicalize,test-panic,...`.
pub struct PanicTestPass;

impl ir::Pass for PanicTestPass {
    fn name(&self) -> &str {
        "test-panic"
    }
    fn run(&mut self, _m: &mut ir::Module, _cx: &mut ir::PassContext<'_>) -> ir::PassResult {
        panic!("deliberate panic from the test-panic pass")
    }
}

/// Deliberately-miscompiling pass, registered as `test-miscompile`: rewrites
/// the first live `hir.add` into an `hir.sub` — schedule-preserving but
/// semantics-changing. This is the test hook for the translation-validation
/// machinery (`--verify-equiv` must catch it with a replay-confirmed
/// counterexample), mirroring what `test-panic` is for crash containment.
pub struct MiscompileTestPass;

impl ir::Pass for MiscompileTestPass {
    fn name(&self) -> &str {
        "test-miscompile"
    }
    fn run(&mut self, m: &mut ir::Module, _cx: &mut ir::PassContext<'_>) -> ir::PassResult {
        for op in m.collect_all_ops() {
            if !m.is_live(op) || m.op(op).name().as_str() != hir::opname::ADD {
                continue;
            }
            let operands = m.op(op).operands().to_vec();
            let rty = m.value_type(m.op(op).results()[0]);
            let attrs = m.op(op).attrs().clone();
            let loc = m.op(op).loc().clone();
            let sub = m.create_op(hir::opname::SUB, operands, vec![rty], attrs, loc);
            m.insert_op_before(op, sub);
            let new_res = m.op(sub).results()[0];
            let old_res = m.op(op).results()[0];
            m.replace_all_uses(old_res, new_res);
            m.erase_op(op);
            return ir::PassResult::Changed;
        }
        ir::PassResult::Unchanged
    }
}

/// Look up a pass by its stable name (the name each pass reports via
/// [`ir::Pass::name`]). This is the registry behind `--pipeline=` and crash
/// reproducer re-execution.
pub fn pass_by_name(name: &str) -> Option<Box<dyn ir::Pass>> {
    Some(match name {
        "hir-canonicalize" => Box::new(CanonicalizePass),
        "hir-cse" => Box::new(CsePass),
        "hir-retime" => Box::new(RetimePass),
        "hir-delay-share" => Box::new(DelaySharePass::new()),
        "hir-precision-opt" => Box::new(PrecisionPass::new()),
        "hir-port-demote" => Box::new(PortDemotePass::new()),
        "test-panic" => Box::new(PanicTestPass),
        "test-miscompile" => Box::new(MiscompileTestPass),
        _ => return None,
    })
}

/// Names accepted by [`pass_by_name`], for "did you mean" help text.
/// (The fold/strength/DCE rewrites are patterns inside `hir-canonicalize`,
/// not standalone passes, so they are not listed here.)
pub fn registered_pass_names() -> &'static [&'static str] {
    &[
        "hir-canonicalize",
        "hir-cse",
        "hir-retime",
        "hir-delay-share",
        "hir-precision-opt",
        "hir-port-demote",
        "test-panic",
        "test-miscompile",
    ]
}

/// Translation validation of the standard pipeline: clone `m`, optimize the
/// clone, and bounded-model-check that every function's generated design is
/// observably equivalent before and after (see the `bmc` crate). Returns one
/// proof report per function.
///
/// # Errors
/// Only for failures to pose or replay the question; a real divergence or a
/// budget-degraded proof is reported inside the [`bmc::FuncReport`]s.
pub fn verify_equivalence(
    m: &ir::Module,
    opts: &bmc::EquivOptions,
) -> Result<Vec<bmc::FuncReport>, bmc::EquivError> {
    let mut optimized = m.clone();
    optimize(&mut optimized).map_err(bmc::EquivError::Codegen)?;
    verify_equivalence_with(m, &optimized, opts)
}

/// Translation validation between two explicit module states (e.g. the
/// driver's pre-pipeline snapshot vs its post-pipeline result, so the exact
/// artifact being emitted is the one proved).
///
/// # Errors
/// See [`verify_equivalence`].
pub fn verify_equivalence_with(
    unopt: &ir::Module,
    opt: &ir::Module,
    opts: &bmc::EquivOptions,
) -> Result<Vec<bmc::FuncReport>, bmc::EquivError> {
    bmc::check_module_equivalence(unopt, opt, opts)
}

/// Build a pipeline from pass names (comma-split `--pipeline=` values or a
/// reproducer's embedded pipeline).
///
/// # Errors
/// Returns a message naming the first unknown pass.
pub fn pipeline_from_names<S: AsRef<str>>(names: &[S]) -> Result<PassManager, String> {
    let mut pm = PassManager::new();
    for name in names {
        let name = name.as_ref();
        let pass = pass_by_name(name).ok_or_else(|| {
            format!(
                "unknown pass '{name}' (known passes: {})",
                registered_pass_names().join(", ")
            )
        })?;
        pm.add_boxed(pass);
    }
    Ok(pm)
}

/// The standard pipeline as a parallel [`ir::FunctionPipeline`]: the same
/// passes as [`standard_pipeline`], replicated per function and run on
/// `threads` workers (0 = auto; see [`ir::resolve_thread_count`]).
pub fn standard_function_pipeline(threads: usize) -> ir::FunctionPipeline {
    function_pipeline_from_names(STANDARD_PASS_NAMES, threads)
        .expect("standard pass names are registered")
}

/// Pass names of [`standard_pipeline`], in order.
pub const STANDARD_PASS_NAMES: &[&str] = &[
    "hir-canonicalize",
    "hir-cse",
    "hir-retime",
    "hir-delay-share",
    "hir-precision-opt",
    "hir-port-demote",
    "hir-canonicalize",
    "hir-cse",
];

/// Build a parallel [`ir::FunctionPipeline`] from pass names: each worker
/// constructs its own pass instances through [`pass_by_name`].
///
/// # Errors
/// Returns a "did you mean" message for an unknown name.
pub fn function_pipeline_from_names<S: AsRef<str>>(
    names: &[S],
    threads: usize,
) -> Result<ir::FunctionPipeline, String> {
    let mut fp = ir::FunctionPipeline::new();
    for name in names {
        let name = name.as_ref().to_string();
        if pass_by_name(&name).is_none() {
            return Err(format!(
                "unknown pass '{name}' (known passes: {})",
                registered_pass_names().join(", ")
            ));
        }
        fp.add_factory(move || pass_by_name(&name).expect("name checked at registration"));
    }
    fp.threads = threads;
    Ok(fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::interp::{ArgValue, Interpreter};
    use hir::ops::{DelayOp, ForOp};
    use hir::types::{MemKind, MemrefInfo, Port};
    use hir::HirBuilder;
    use ir::{DiagnosticEngine, Module, Type};

    fn run_pipeline(m: &mut Module) {
        optimize(m).expect("pipeline");
        // Optimized IR must still verify.
        let mut diags = DiagnosticEngine::new();
        ir::verify_module(m, &hir::hir_registry(), &mut diags)
            .unwrap_or_else(|_| panic!("post-opt verification failed:\n{}", diags.render()));
        hir_verify::verify_schedule(m, &mut diags)
            .unwrap_or_else(|_| panic!("post-opt schedule failed:\n{}", diags.render()));
    }

    fn count_ops(m: &Module, name: &str) -> usize {
        m.collect_all_ops()
            .into_iter()
            .filter(|&o| m.is_live(o) && m.op(o).name().as_str() == name)
            .count()
    }

    #[test]
    fn registry_covers_every_standard_pipeline_pass() {
        for name in standard_pipeline().pass_names() {
            assert!(pass_by_name(&name).is_some(), "unregistered pass {name}");
        }
        for name in registered_pass_names() {
            let pass = pass_by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(pass.name(), *name, "registry name must match Pass::name");
        }
        assert!(pass_by_name("no-such-pass").is_none());
    }

    #[test]
    fn pipeline_from_names_builds_and_rejects() {
        let pm = pipeline_from_names(&["hir-cse", "hir-canonicalize"]).unwrap();
        assert_eq!(pm.pass_names(), vec!["hir-cse", "hir-canonicalize"]);
        let err = pipeline_from_names(&["hir-cse", "bogus"]).unwrap_err();
        assert!(err.contains("unknown pass 'bogus'"), "{err}");
        assert!(
            err.contains("hir-canonicalize"),
            "lists known passes: {err}"
        );
    }

    #[test]
    fn folds_constants_and_removes_dead_code() {
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32))], &[0]);
        let x = f.args(hb.module())[0];
        let a = hb.typed_const(3, Type::int(32));
        let b = hb.typed_const(4, Type::int(32));
        let ab = hb.mult(a, b); // folds to 12
        let y = hb.add(x, ab);
        let dead = hb.add(a, b); // unused
        let _ = dead;
        hb.return_(&[y]);
        let mut m = hb.finish();
        run_pipeline(&mut m);
        assert_eq!(
            count_ops(&m, hir::opname::MULT),
            0,
            "constant multiply folded"
        );
        // The dead add disappears; one live add remains.
        assert_eq!(count_ops(&m, hir::opname::ADD), 1);
    }

    /// With recording on, the standard pipeline reports applied remarks from
    /// folding, strength reduction and CSE, and a missed remark explaining
    /// the value×value multiply it left alone.
    #[test]
    fn passes_emit_applied_and_missed_remarks() {
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32)), ("y", Type::int(32))], &[0]);
        let args = f.args(hb.module());
        let (x, y) = (args[0], args[1]);
        let a = hb.typed_const(3, Type::int(32));
        let b = hb.typed_const(4, Type::int(32));
        let ab = hb.mult(a, b); // folds to 12
        let c8 = hb.typed_const(8, Type::int(32));
        let s = hb.mult(x, c8); // strength-reduces to x << 3
        let vv = hb.mult(x, y); // stride unknown: stays a multiplier
        let d1 = hb.add(x, x);
        let d2 = hb.add(x, x); // CSE fodder
        let t1 = hb.xor(d1, d2);
        let t2 = hb.add(t1, ab);
        let t3 = hb.add(t2, s);
        let t4 = hb.add(t3, vv);
        hb.return_(&[t4]);
        let mut m = hb.finish();

        let registry = hir::hir_registry();
        let mut diags = DiagnosticEngine::new();
        let was = obs::set_remarks_enabled(true);
        let mut pm = standard_pipeline();
        let run = pm.run(&mut m, &registry, &mut diags);
        obs::set_remarks_enabled(was);
        run.unwrap();
        let remarks = pm.take_remarks();

        let has = |pass: &str, kind: obs::RemarkKind| {
            remarks.iter().any(|r| r.pass == pass && r.kind == kind)
        };
        assert!(
            has("hir-fold-constants", obs::RemarkKind::Applied),
            "no fold remark in {remarks:?}"
        );
        assert!(
            has("hir-strength-reduce", obs::RemarkKind::Applied),
            "no strength remark in {remarks:?}"
        );
        assert!(
            has("hir-cse", obs::RemarkKind::Applied),
            "no cse remark in {remarks:?}"
        );
        assert!(
            remarks.iter().any(|r| {
                r.pass == "hir-strength-reduce"
                    && r.kind == obs::RemarkKind::Missed
                    && r.message.contains("stride unknown")
            }),
            "no stride-unknown missed remark in {remarks:?}"
        );
    }

    #[test]
    fn standard_pass_names_match_standard_pipeline() {
        assert_eq!(standard_pipeline().pass_names(), STANDARD_PASS_NAMES);
        assert_eq!(
            standard_function_pipeline(1).pass_names(),
            STANDARD_PASS_NAMES
        );
    }

    #[test]
    fn function_pipeline_unknown_pass_is_rejected() {
        let err = function_pipeline_from_names(&["hir-cse", "no-such-pass"], 1).unwrap_err();
        assert!(err.contains("no-such-pass"), "{err}");
    }

    /// The parallel function pipeline must be an optimization-level no-op
    /// relative to the serial pipeline: identical printed IR, identical op
    /// counts, at every thread count.
    #[test]
    fn function_pipeline_matches_serial_pipeline() {
        let build = || {
            let mut hb = HirBuilder::new();
            for i in 0..4 {
                let f = hb.func(&format!("k{i}"), &[("x", Type::int(32))], &[0]);
                let x = f.args(hb.module())[0];
                let a = hb.typed_const(3, Type::int(32));
                let b = hb.typed_const(4, Type::int(32));
                let ab = hb.mult(a, b);
                let y = hb.add(x, ab);
                let z = hb.add(x, ab); // CSE fodder
                let s = hb.xor(y, z);
                hb.return_(&[s]);
            }
            hb.finish()
        };
        let registry = hir::hir_registry();

        let mut serial = build();
        let mut diags = DiagnosticEngine::new();
        standard_pipeline()
            .run(&mut serial, &registry, &mut diags)
            .unwrap();
        let serial_text = ir::print_module(&serial);

        for threads in [1, 2, 8] {
            let mut m = build();
            let mut diags = DiagnosticEngine::new();
            let mut fp = standard_function_pipeline(threads);
            fp.run(&mut m, &registry, &mut diags).unwrap();
            assert_eq!(
                ir::print_module(&m),
                serial_text,
                "threads={threads} diverged from serial"
            );
            assert_eq!(m.op_count(), serial.op_count());
        }
    }

    #[test]
    fn cse_merges_identical_pure_ops() {
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32))], &[0]);
        let x = f.args(hb.module())[0];
        let a = hb.add(x, x);
        let b = hb.add(x, x); // identical
        let s = hb.xor(a, b);
        hb.return_(&[s]);
        let mut m = hb.finish();
        let registry = hir::hir_registry();
        let mut diags = DiagnosticEngine::new();
        let mut pm = ir::PassManager::new();
        pm.add(CsePass);
        pm.run(&mut m, &registry, &mut diags).unwrap();
        assert_eq!(count_ops(&m, hir::opname::ADD), 1, "identical adds merged");
    }

    #[test]
    fn strength_reduction_replaces_mult_by_shift() {
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32))], &[0]);
        let x = f.args(hb.module())[0];
        let c8 = hb.typed_const(8, Type::int(32));
        let y = hb.mult(x, c8); // -> x << 3
        let c10 = hb.typed_const(10, Type::int(32));
        let z = hb.mult(x, c10); // -> (x<<3) + (x<<1)
        let out = hb.add(y, z);
        hb.return_(&[out]);
        let mut m = hb.finish();
        run_pipeline(&mut m);
        assert_eq!(count_ops(&m, hir::opname::MULT), 0, "multiplies eliminated");
        assert!(count_ops(&m, hir::opname::SHL) >= 2);

        // Semantics preserved.
        let interp = Interpreter::new(&m);
        let r = interp.run("k", &[ArgValue::Int(7)]).unwrap();
        assert_eq!(r.results, vec![7 * 8 + 7 * 10]);
    }

    #[test]
    fn precision_narrows_loop_counters_and_delays() {
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[16], Type::int(32), Port::Read, MemKind::BlockRam);
        let c = a.with_port(Port::Write);
        let f = hb.func("copy", &[("A", a.to_type()), ("C", c.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c16, c1) = (hb.const_val(0), hb.const_val(16), hb.const_val(1));
        let lp = hb.for_loop(c0, c16, c1, t, 1, Type::int(32)); // oversized iv
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.mem_read(args[0], &[i], ti, 0);
            let i1 = hb.delay(i, 1, ti, 0);
            hb.mem_write(v, args[1], &[i1], ti, 1);
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let mut m = hb.finish();
        run_pipeline(&mut m);

        let lp_op = m
            .collect_all_ops()
            .into_iter()
            .find(|&o| m.is_live(o) && m.op(o).name().as_str() == hir::opname::FOR)
            .unwrap();
        let lp = ForOp(lp_op);
        assert_eq!(
            m.value_type(lp.induction_var(&m)).int_width(),
            Some(6),
            "iv narrowed to 6 bits (counts to 16)"
        );
        // The delayed copy of the iv narrowed too.
        let delay_op = m
            .collect_all_ops()
            .into_iter()
            .find(|&o| m.is_live(o) && m.op(o).name().as_str() == hir::opname::DELAY)
            .unwrap();
        assert_eq!(
            m.value_type(DelayOp(delay_op).result(&m)).int_width(),
            Some(6)
        );

        // Still functionally correct.
        let interp = Interpreter::new(&m);
        let data: Vec<i128> = (0..16).map(|x| x * 11).collect();
        let r = interp
            .run(
                "copy",
                &[ArgValue::tensor_from(&data), ArgValue::uninit_tensor(16)],
            )
            .unwrap();
        let out: Vec<i128> = r.tensors[&1].iter().map(|v| v.unwrap()).collect();
        assert_eq!(out, data);
    }

    #[test]
    fn delay_share_chains_shift_registers() {
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32))], &[5]);
        let t = f.time_var(hb.module());
        let x = f.args(hb.module())[0];
        let d2 = hb.delay(x, 2, t, 0);
        let d5 = hb.delay(x, 5, t, 0);
        // Keep both alive: re-delay d2 to t+5 and add.
        let d2b = hb.delay(d2, 3, t, 2);
        let s = hb.add(d5, d2b);
        hb.return_(&[s]);
        let mut m = hb.finish();
        let registry = hir::hir_registry();
        let mut diags = DiagnosticEngine::new();
        let mut pm = ir::PassManager::new();
        pm.add(DelaySharePass::new());
        pm.run(&mut m, &registry, &mut diags).unwrap();
        // The 5-delay now rides on the 2-delay: total registers 2+3+3=8
        // instead of 2+5+3=10.
        let total: i64 = m
            .collect_all_ops()
            .into_iter()
            .filter(|&o| m.is_live(o))
            .filter_map(|o| DelayOp::wrap(&m, o))
            .map(|d| d.by(&m))
            .sum();
        assert!(
            total <= 8,
            "expected sharing to cut total registers, got {total}"
        );

        // Schedule still consistent.
        let mut diags = DiagnosticEngine::new();
        hir_verify::verify_schedule(&m, &mut diags)
            .unwrap_or_else(|_| panic!("{}", diags.render()));
    }

    #[test]
    fn port_demotion_merges_disjoint_ports() {
        // Writes at even instants, reads at odd instants (II=2 loop):
        // provably conflict-free, so r+w collapse to one rw port.
        let mut hb = HirBuilder::new();
        let f = hb.func("pd", &[], &[]);
        let t = f.time_var(hb.module());
        let (r, w) = hb.alloc_rw(&[16], Type::int(32), MemKind::BlockRam);
        let (c0, c8, c1) = (hb.const_val(0), hb.const_val(8), hb.const_val(1));
        let lp = hb.for_loop(c0, c8, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.typed_const(7, Type::int(32));
            hb.mem_write(v, w, &[i], ti, 0); // offsets 0 mod 2
            let i1 = hb.delay(i, 1, ti, 0);
            hb.mem_read(r, &[i1], ti, 1); // offsets 1 mod 2
            hb.yield_at(ti, 2);
        });
        hb.return_(&[]);
        let mut m = hb.finish();
        let registry = hir::hir_registry();
        let mut diags = DiagnosticEngine::new();
        let mut pm = ir::PassManager::new();
        pm.add(PortDemotePass::new());
        pm.run(&mut m, &registry, &mut diags).unwrap();

        let alloc = m
            .collect_all_ops()
            .into_iter()
            .find(|&o| m.is_live(o) && m.op(o).name().as_str() == hir::opname::ALLOC)
            .unwrap();
        assert_eq!(m.op(alloc).results().len(), 1, "single port remains");
        let info = MemrefInfo::from_type(&m.value_type(m.op(alloc).results()[0])).unwrap();
        assert_eq!(info.port, Port::ReadWrite);
        assert!(m.op(alloc).attr("demoted_single_port").is_some());
    }

    #[test]
    fn port_demotion_keeps_conflicting_ports() {
        // Read and write in the SAME cycle: must keep two ports.
        let mut hb = HirBuilder::new();
        let f = hb.func("pd2", &[], &[]);
        let t = f.time_var(hb.module());
        let (r, w) = hb.alloc_rw(&[16], Type::int(32), MemKind::BlockRam);
        let (c0, c8, c1) = (hb.const_val(0), hb.const_val(8), hb.const_val(1));
        let c9 = hb.const_val(9);
        let lp = hb.for_loop(c0, c8, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            let v = hb.mem_read(r, &[i], ti, 0);
            let _ = v;
            let k = hb.typed_const(1, Type::int(32));
            hb.mem_write(k, w, &[c9], ti, 0); // same instant as the read
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let mut m = hb.finish();
        let registry = hir::hir_registry();
        let mut diags = DiagnosticEngine::new();
        let mut pm = ir::PassManager::new();
        pm.add(PortDemotePass::new());
        pm.run(&mut m, &registry, &mut diags).unwrap();
        let alloc = m
            .collect_all_ops()
            .into_iter()
            .find(|&o| m.is_live(o) && m.op(o).name().as_str() == hir::opname::ALLOC)
            .unwrap();
        assert_eq!(m.op(alloc).results().len(), 2, "ports must be preserved");
    }

    /// End-to-end translation validation on a scalar kernel: the standard
    /// pipeline must be *proved* equivalent, and the deliberate
    /// `test-miscompile` pass must be caught with a replay-confirmed
    /// counterexample.
    #[test]
    fn equivalence_proved_for_pipeline_and_refuted_for_miscompile() {
        let build = || {
            let mut hb = HirBuilder::new();
            let f = hb.func("k", &[("x", Type::int(8)), ("y", Type::int(8))], &[0]);
            let args = f.args(hb.module());
            let (x, y) = (args[0], args[1]);
            let c3 = hb.typed_const(3, Type::int(8));
            let s = hb.mult(x, c3); // strength-reduced by the pipeline
            let out = hb.add(s, y);
            hb.return_(&[out]);
            hb.finish()
        };
        let opts = bmc::EquivOptions {
            k_cycles: 8,
            ..Default::default()
        };

        let m = build();
        let reports = verify_equivalence(&m, &opts).expect("check runs");
        assert_eq!(reports.len(), 1);
        assert!(
            matches!(reports[0].status, bmc::EquivStatus::Proved),
            "pipeline must prove equivalent, got {:?}",
            reports[0].status
        );
        // Every proof carries nonzero solver statistics.
        let st = &reports[0].solver;
        assert!(st.propagations > 0 && st.clauses > 0 && st.vars > 0);
        assert_eq!(st.frames.len(), opts.k_cycles as usize);
        assert!(st.blast_cache_misses > 0);

        // Now inject the miscompile and demand a confirmed counterexample.
        let m = build();
        let mut bad = m.clone();
        let registry = hir::hir_registry();
        let mut diags = DiagnosticEngine::new();
        let mut pm = pipeline_from_names(&["test-miscompile"]).unwrap();
        pm.run(&mut bad, &registry, &mut diags).unwrap();
        let reports = verify_equivalence_with(&m, &bad, &opts).expect("check runs");
        match &reports[0].status {
            bmc::EquivStatus::Counterexample(cex) => {
                assert_eq!(cex.stimulus.len(), 2, "one stimulus per argument");
                assert!(!cex.detail.is_empty());
            }
            other => panic!("miscompile must be refuted, got {other:?}"),
        }
    }

    #[test]
    fn optimized_transpose_still_simulates_correctly() {
        // The Table 4 configuration: transpose, full pipeline, then check
        // functional equivalence through the interpreter.
        let n = 8u64;
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[n, n], Type::int(32), Port::Read, MemKind::BlockRam);
        let c = a.with_port(Port::Write);
        let f = hb.func(
            "transpose",
            &[("Ai", a.to_type()), ("Co", c.to_type())],
            &[],
        );
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, cn, c1) = (hb.const_val(0), hb.const_val(n as i64), hb.const_val(1));
        let i_loop = hb.for_loop(c0, cn, c1, t, 1, Type::int(32));
        hb.in_loop(i_loop, |hb, i, ti| {
            let j_loop = hb.for_loop(c0, cn, c1, ti, 1, Type::int(32));
            hb.in_loop(j_loop, |hb, j, tj| {
                let v = hb.mem_read(args[0], &[i, j], tj, 0);
                let j1 = hb.delay(j, 1, tj, 0);
                hb.mem_write(v, args[1], &[j1, i], tj, 1);
                hb.yield_at(tj, 1);
            });
            let tf = j_loop.result_time(hb.module());
            hb.yield_at(tf, 1);
        });
        hb.return_(&[]);
        let mut m = hb.finish();
        run_pipeline(&mut m);

        let input: Vec<i128> = (0..(n * n) as i128).collect();
        let interp = Interpreter::new(&m);
        let r = interp
            .run(
                "transpose",
                &[
                    ArgValue::tensor_from(&input),
                    ArgValue::uninit_tensor((n * n) as usize),
                ],
            )
            .unwrap();
        for i in 0..n as usize {
            for j in 0..n as usize {
                assert_eq!(
                    r.tensors[&1][j * n as usize + i],
                    Some(input[i * n as usize + j])
                );
            }
        }
    }
}
