//! Constant propagation/folding, common subexpression elimination and dead
//! code elimination (paper §6.2).

use hir::dialect::{attrkey, opname};
use hir::ops::{self, ConstantOp};
use ir::{
    traits, AttrMap, Attribute, Module, OpId, Pass, PassContext, PassResult, RewritePattern,
    RewriteStatus, Rewriter, ValueId,
};
use std::collections::HashMap;

/// Fold combinational ops whose operands are all constants.
pub struct FoldConstants;

impl RewritePattern for FoldConstants {
    fn name(&self) -> &str {
        "hir-fold-constants"
    }

    fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
        let m = rw.module();
        let Some(kind) = ops::compute_kind(m, op) else {
            return RewriteStatus::NoMatch;
        };
        let operands = m.op(op).operands().to_vec();
        let mut ints = Vec::with_capacity(operands.len());
        for &v in &operands {
            let Some(def) = m.defining_op(v) else {
                return RewriteStatus::NoMatch;
            };
            let Some(c) = ConstantOp::wrap(m, def) else {
                return RewriteStatus::NoMatch;
            };
            let Some(i) = c.value_attr(m).as_int() else {
                return RewriteStatus::NoMatch;
            };
            ints.push(i);
        }
        let folded = match eval(kind, &ints, m, op) {
            Some(v) => v,
            None => {
                if obs::remarks_enabled() {
                    obs::emit_remark(obs::Remark::missed(
                        "hir-fold-constants",
                        m.op(op).loc().to_string(),
                        format!(
                            "{} not folded: evaluation overflows",
                            m.op(op).name().as_str()
                        ),
                    ));
                }
                return RewriteStatus::NoMatch;
            }
        };
        let result = m.op(op).results()[0];
        let ty = m.value_type(result);
        let loc = m.op(op).loc().clone();
        if obs::remarks_enabled() {
            obs::emit_remark(
                obs::Remark::applied(
                    "hir-fold-constants",
                    loc.to_string(),
                    format!("folded {} to constant {folded}", m.op(op).name().as_str()),
                )
                .arg_int("value", folded),
            );
        }
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::VALUE.into(), Attribute::Int(folded, ty.clone()));
        let m = rw.module_mut();
        let new_const = m.create_op(opname::CONSTANT, vec![], vec![ty], attrs, loc);
        m.insert_op_before(op, new_const);
        let new_val = m.op(new_const).results()[0];
        rw.replace_op(op, &[new_val]);
        RewriteStatus::Changed
    }
}

fn eval(kind: ops::ComputeKind, ints: &[i128], m: &Module, op: OpId) -> Option<i128> {
    use ops::ComputeKind as K;
    Some(match kind {
        K::Add => ints[0].checked_add(ints[1])?,
        K::Sub => ints[0].checked_sub(ints[1])?,
        K::Mult => ints[0].checked_mul(ints[1])?,
        K::And => ints[0] & ints[1],
        K::Or => ints[0] | ints[1],
        K::Xor => ints[0] ^ ints[1],
        K::Not => !ints[0],
        K::Shl => ints[0].checked_shl(u32::try_from(ints[1]).ok()?)?,
        K::Shr => ints[0] >> i32::try_from(ints[1]).ok()?.clamp(0, 127),
        K::Cmp(p) => i128::from(p.eval(ints[0], ints[1])),
        K::Select => {
            if ints[0] != 0 {
                ints[1]
            } else {
                ints[2]
            }
        }
        K::Trunc | K::Sext | K::Zext => ints[0],
        K::Slice => {
            let hi = m.op(op).attr(attrkey::HI)?.as_int()?;
            let lo = m.op(op).attr(attrkey::LO)?.as_int()?;
            (ints[0] >> lo) & ((1i128 << (hi - lo + 1)) - 1)
        }
    })
}

/// Algebraic identities: `x + 0`, `x * 1`, `x * 0`, `x & x`, `x | x`, ...
pub struct AlgebraicSimplify;

impl RewritePattern for AlgebraicSimplify {
    fn name(&self) -> &str {
        "hir-algebraic-simplify"
    }

    fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
        let m = rw.module();
        let name = m.op(op).name().as_str();
        let operands = m.op(op).operands().to_vec();
        let const_of = |m: &Module, v: ValueId| -> Option<i128> {
            ConstantOp::wrap(m, m.defining_op(v)?).and_then(|c| c.value_attr(m).as_int())
        };
        let result = match m.op(op).results().first() {
            Some(&r) => r,
            None => return RewriteStatus::NoMatch,
        };
        // The replacement must preserve the result's type.
        let same_type = |m: &Module, v: ValueId| m.value_type(v) == m.value_type(result);
        let replacement: Option<ValueId> = match name {
            opname::ADD => {
                if const_of(m, operands[1]) == Some(0) && same_type(m, operands[0]) {
                    Some(operands[0])
                } else if const_of(m, operands[0]) == Some(0) && same_type(m, operands[1]) {
                    Some(operands[1])
                } else {
                    None
                }
            }
            opname::SUB => (const_of(m, operands[1]) == Some(0) && same_type(m, operands[0]))
                .then_some(operands[0]),
            opname::MULT => {
                if const_of(m, operands[1]) == Some(1) && same_type(m, operands[0]) {
                    Some(operands[0])
                } else if const_of(m, operands[0]) == Some(1) && same_type(m, operands[1]) {
                    Some(operands[1])
                } else {
                    None
                }
            }
            opname::AND | opname::OR => {
                (operands[0] == operands[1] && same_type(m, operands[0])).then_some(operands[0])
            }
            opname::SHL | opname::SHR => (const_of(m, operands[1]) == Some(0)
                && same_type(m, operands[0]))
            .then_some(operands[0]),
            _ => None,
        };
        match replacement {
            Some(v) => {
                if obs::remarks_enabled() {
                    obs::emit_remark(obs::Remark::applied(
                        "hir-algebraic-simplify",
                        m.op(op).loc().to_string(),
                        format!("{name} simplified away by an algebraic identity"),
                    ));
                }
                rw.replace_op(op, &[v]);
                RewriteStatus::Changed
            }
            None => RewriteStatus::NoMatch,
        }
    }
}

/// Erase pure ops (and unused constants) whose results are all unused.
pub struct Dce;

impl RewritePattern for Dce {
    fn name(&self) -> &str {
        "hir-dce"
    }

    fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
        let m = rw.module();
        let name = m.op(op).name().as_str().to_string();
        let erasable = rw.registry().op_has_trait(&name, traits::PURE)
            || name == opname::DELAY
            || name == opname::ALLOC;
        if !erasable {
            return RewriteStatus::NoMatch;
        }
        if m.op(op)
            .results()
            .iter()
            .any(|&r| !m.value(r).uses().is_empty())
        {
            return RewriteStatus::NoMatch;
        }
        if obs::remarks_enabled() {
            obs::emit_remark(obs::Remark::applied(
                "hir-dce",
                m.op(op).loc().to_string(),
                format!("erased dead {name}"),
            ));
        }
        rw.erase_op(op);
        RewriteStatus::Changed
    }
}

/// CSE as a standalone pass: pure ops with identical (name, operands, attrs)
/// in the same visibility scope are merged. Delays sharing (input, time,
/// offset, by) are also merged — the de-duplication step of §6.4.
///
/// Implemented as scoped value numbering (the MLIR CSE strategy): one scope
/// per block, keyed by an allocation-free structural hash of
/// `(name, operand ids, attrs, result type)`. An op is recorded into its
/// block's scope only *after* its regions are visited, so its own result is
/// never visible inside those regions; a lookup that walks the scope chain
/// therefore only ever finds candidates whose results dominate the current
/// op, and no per-candidate visibility query is needed. Hash hits are
/// confirmed by exact structural comparison, so collisions cannot merge
/// distinct ops.
pub struct CsePass;

/// Scoped value-numbering table: hash -> candidates tagged with the scope
/// depth they were recorded at. Leaving a scope pops its insertions.
#[derive(Default)]
struct ValueNumbering {
    table: HashMap<u64, Vec<(usize, OpId, ValueId)>>,
    /// Per-scope undo log of inserted hashes.
    scopes: Vec<Vec<u64>>,
}

impl ValueNumbering {
    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop_scope(&mut self) {
        let inserted = self.scopes.pop().expect("scope underflow");
        let depth = self.scopes.len();
        for h in inserted {
            if let Some(cands) = self.table.get_mut(&h) {
                cands.retain(|&(d, _, _)| d < depth);
                if cands.is_empty() {
                    self.table.remove(&h);
                }
            }
        }
    }

    /// Find a recorded op structurally identical to `op` in any live scope.
    fn lookup(&self, module: &Module, hash: u64, op: OpId) -> Option<ValueId> {
        for &(_, cand, result) in self.table.get(&hash)?.iter() {
            if structurally_equal(module, cand, op) {
                return Some(result);
            }
        }
        None
    }

    fn record(&mut self, hash: u64, op: OpId, result: ValueId) {
        let depth = self.scopes.len() - 1;
        self.table
            .entry(hash)
            .or_default()
            .push((depth, op, result));
        self.scopes.last_mut().expect("no open scope").push(hash);
    }
}

/// Structural CSE key hash: name, operand ids, attributes, result type.
fn structural_hash(module: &Module, op: OpId) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let data = module.op(op);
    data.name().as_str().hash(&mut h);
    data.operands().hash(&mut h);
    data.attrs().hash(&mut h);
    module.value(data.results()[0]).ty().hash(&mut h);
    h.finish()
}

/// Exact equality on the CSE key, guarding against hash collisions.
fn structurally_equal(module: &Module, a: OpId, b: OpId) -> bool {
    let da = module.op(a);
    let db = module.op(b);
    da.name() == db.name()
        && da.operands() == db.operands()
        && da.attrs() == db.attrs()
        && module.value(da.results()[0]).ty() == module.value(db.results()[0]).ty()
}

/// Record an applied CSE remark for the doomed duplicate `op`.
fn emit_cse_remark(module: &Module, op: OpId) {
    if obs::remarks_enabled() {
        obs::emit_remark(obs::Remark::applied(
            "hir-cse",
            module.op(op).loc().to_string(),
            format!(
                "merged duplicate {} with an identical earlier value",
                module.op(op).name().as_str()
            ),
        ));
    }
}

/// Whether `op` is eligible for CSE: a pure single-result op, or a delay
/// (identical delays on the same input are interchangeable, §6.4).
fn cse_key(module: &Module, registry: &ir::DialectRegistry, op: OpId) -> Option<(u64, ValueId)> {
    let data = module.op(op);
    let name = data.name().as_str();
    if !registry.op_has_trait(name, traits::PURE) && name != opname::DELAY {
        return None;
    }
    if data.results().len() != 1 {
        return None;
    }
    let result = data.results()[0];
    Some((structural_hash(module, op), result))
}

impl CsePass {
    fn visit_block(
        &mut self,
        module: &mut Module,
        registry: &ir::DialectRegistry,
        vn: &mut ValueNumbering,
        block: ir::BlockId,
        doomed: &mut Vec<OpId>,
    ) {
        vn.push_scope();
        for op in module.block(block).ops().to_vec() {
            if let Some((hash, result)) = cse_key(module, registry, op) {
                if let Some(prev_result) = vn.lookup(module, hash, op) {
                    emit_cse_remark(module, op);
                    module.replace_all_uses(result, prev_result);
                    // Erasure is deferred to one batch sweep at the end of
                    // the pass: per-op removal from a block's op list is
                    // linear in the block and would make the pass quadratic.
                    doomed.push(op);
                    continue;
                }
                // Recurse first: the op's own result is not visible inside
                // its own regions. (Pure ops and delays are region-less
                // today, but keep the ordering correct regardless.)
                self.visit_regions(module, registry, vn, op, doomed);
                vn.record(hash, op, result);
            } else {
                self.visit_regions(module, registry, vn, op, doomed);
            }
        }
        vn.pop_scope();
    }

    fn visit_regions(
        &mut self,
        module: &mut Module,
        registry: &ir::DialectRegistry,
        vn: &mut ValueNumbering,
        op: OpId,
        doomed: &mut Vec<OpId>,
    ) {
        for region in module.op(op).regions().to_vec() {
            for block in module.region(region).blocks().to_vec() {
                self.visit_block(module, registry, vn, block, doomed);
            }
        }
    }
}

impl Pass for CsePass {
    fn name(&self) -> &str {
        "hir-cse"
    }

    fn run(&mut self, module: &mut Module, cx: &mut PassContext<'_>) -> PassResult {
        let mut doomed: Vec<OpId> = Vec::new();
        let mut vn = ValueNumbering::default();
        // The global scope holds top-level op results, which are visible
        // everywhere — including inside their own regions — so top-level
        // ops are recorded *before* their regions are visited.
        vn.push_scope();
        for op in module.top_ops().to_vec() {
            if !module.is_live(op) {
                continue;
            }
            if let Some((hash, result)) = cse_key(module, cx.registry, op) {
                if let Some(prev_result) = vn.lookup(module, hash, op) {
                    emit_cse_remark(module, op);
                    module.replace_all_uses(result, prev_result);
                    doomed.push(op);
                    continue;
                }
                vn.record(hash, op, result);
            }
            self.visit_regions(module, cx.registry, &mut vn, op, &mut doomed);
        }
        vn.pop_scope();
        let merges = doomed.len() as u64;
        module.erase_ops(&doomed);
        obs::counter_add("opt", "cse_merges", merges);
        if merges > 0 {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        }
    }
}

/// Greedy canonicalization pass: folding + algebraic identities + DCE.
pub struct CanonicalizePass;

impl Pass for CanonicalizePass {
    fn name(&self) -> &str {
        "hir-canonicalize"
    }

    fn run(&mut self, module: &mut Module, cx: &mut PassContext<'_>) -> PassResult {
        let patterns: Vec<Box<dyn RewritePattern>> = vec![
            Box::new(FoldConstants),
            Box::new(AlgebraicSimplify),
            Box::new(crate::strength::StrengthReduce),
            Box::new(Dce),
        ];
        let stats = ir::apply_patterns_greedily(module, cx.registry, &patterns);
        obs::counter_add("opt", "canonicalize_rewrites", stats.applications as u64);
        if stats.applications > 0 {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::HirBuilder;
    use ir::{DiagnosticEngine, PassManager, Type};

    fn run_cse(m: &mut Module) {
        let registry = hir::hir_registry();
        let mut diags = DiagnosticEngine::new();
        let mut pm = PassManager::new();
        pm.add(CsePass);
        pm.run(m, &registry, &mut diags)
            .unwrap_or_else(|e| panic!("cse failed: {e}\n{}", diags.render()));
    }

    fn count_ops(m: &Module, name: &str) -> usize {
        m.collect_all_ops()
            .into_iter()
            .filter(|&o| m.is_live(o) && m.op(o).name().as_str() == name)
            .count()
    }

    #[test]
    fn cse_does_not_merge_across_sibling_if_branches() {
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32))], &[]);
        let x = f.args(hb.module())[0];
        let t = f.time_var(hb.module());
        let c = hb.typed_const(1, Type::int(1));
        let i = hb.if_op(c, t, 0, true);
        hb.in_then(i, |hb| {
            hb.add(x, x);
        });
        hb.in_else(i, |hb| {
            hb.add(x, x);
        });
        let mut m = hb.finish();
        assert_eq!(count_ops(&m, hir::opname::ADD), 2);
        run_cse(&mut m);
        // Neither branch's result dominates the other: both must survive.
        assert_eq!(
            count_ops(&m, hir::opname::ADD),
            2,
            "CSE merged values across sibling if branches"
        );
    }

    #[test]
    fn cse_does_not_merge_across_sibling_loops() {
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32))], &[]);
        let x = f.args(hb.module())[0];
        let t = f.time_var(hb.module());
        let l1 = hb.unroll_for(0, 2, 1, t, 0);
        hb.in_unroll(l1, |hb, _iv, ti| {
            hb.add(x, x);
            hb.yield_at(ti, 1);
        });
        let l2 = hb.unroll_for(0, 2, 1, t, 0);
        hb.in_unroll(l2, |hb, _iv, ti| {
            hb.add(x, x);
            hb.yield_at(ti, 1);
        });
        let mut m = hb.finish();
        run_cse(&mut m);
        assert_eq!(
            count_ops(&m, hir::opname::ADD),
            2,
            "CSE merged values across sibling loop bodies"
        );
    }

    #[test]
    fn cse_merges_loop_body_value_into_ancestor() {
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32))], &[]);
        let x = f.args(hb.module())[0];
        let t = f.time_var(hb.module());
        let outer = hb.add(x, x); // defined before the loop
        let _ = outer;
        let lp = hb.unroll_for(0, 2, 1, t, 0);
        hb.in_unroll(lp, |hb, _iv, ti| {
            hb.add(x, x); // identical: must merge into the outer def
            hb.yield_at(ti, 1);
        });
        let mut m = hb.finish();
        assert_eq!(count_ops(&m, hir::opname::ADD), 2);
        run_cse(&mut m);
        assert_eq!(
            count_ops(&m, hir::opname::ADD),
            1,
            "cross-region merge into a dominating ancestor must fire"
        );
    }

    #[test]
    fn cse_does_not_merge_later_sibling_into_loop() {
        // A value defined inside a region is not visible after the region.
        let mut hb = HirBuilder::new();
        let f = hb.func("k", &[("x", Type::int(32))], &[]);
        let x = f.args(hb.module())[0];
        let t = f.time_var(hb.module());
        let lp = hb.unroll_for(0, 2, 1, t, 0);
        hb.in_unroll(lp, |hb, _iv, ti| {
            hb.add(x, x);
            hb.yield_at(ti, 1);
        });
        hb.add(x, x); // after the loop: the body def does not dominate it
        let mut m = hb.finish();
        run_cse(&mut m);
        assert_eq!(
            count_ops(&m, hir::opname::ADD),
            2,
            "CSE leaked a region-local value into the enclosing block"
        );
    }
}
