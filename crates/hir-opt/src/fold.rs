//! Constant propagation/folding, common subexpression elimination and dead
//! code elimination (paper §6.2).

use hir::dialect::{attrkey, opname};
use hir::ops::{self, ConstantOp};
use ir::{
    traits, AttrMap, Attribute, Module, OpId, Pass, PassContext, PassResult, RewritePattern,
    RewriteStatus, Rewriter, ValueId,
};
use std::collections::HashMap;

/// Fold combinational ops whose operands are all constants.
pub struct FoldConstants;

impl RewritePattern for FoldConstants {
    fn name(&self) -> &str {
        "hir-fold-constants"
    }

    fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
        let m = rw.module();
        let Some(kind) = ops::compute_kind(m, op) else {
            return RewriteStatus::NoMatch;
        };
        let operands = m.op(op).operands().to_vec();
        let mut ints = Vec::with_capacity(operands.len());
        for &v in &operands {
            let Some(def) = m.defining_op(v) else {
                return RewriteStatus::NoMatch;
            };
            let Some(c) = ConstantOp::wrap(m, def) else {
                return RewriteStatus::NoMatch;
            };
            let Some(i) = c.value_attr(m).as_int() else {
                return RewriteStatus::NoMatch;
            };
            ints.push(i);
        }
        let folded = match eval(kind, &ints, m, op) {
            Some(v) => v,
            None => return RewriteStatus::NoMatch,
        };
        let result = m.op(op).results()[0];
        let ty = m.value_type(result);
        let loc = m.op(op).loc().clone();
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::VALUE.into(), Attribute::Int(folded, ty.clone()));
        let m = rw.module_mut();
        let new_const = m.create_op(opname::CONSTANT, vec![], vec![ty], attrs, loc);
        m.insert_op_before(op, new_const);
        let new_val = m.op(new_const).results()[0];
        rw.replace_op(op, &[new_val]);
        RewriteStatus::Changed
    }
}

fn eval(kind: ops::ComputeKind, ints: &[i128], m: &Module, op: OpId) -> Option<i128> {
    use ops::ComputeKind as K;
    Some(match kind {
        K::Add => ints[0].checked_add(ints[1])?,
        K::Sub => ints[0].checked_sub(ints[1])?,
        K::Mult => ints[0].checked_mul(ints[1])?,
        K::And => ints[0] & ints[1],
        K::Or => ints[0] | ints[1],
        K::Xor => ints[0] ^ ints[1],
        K::Not => !ints[0],
        K::Shl => ints[0].checked_shl(u32::try_from(ints[1]).ok()?)?,
        K::Shr => ints[0] >> i32::try_from(ints[1]).ok()?.clamp(0, 127),
        K::Cmp(p) => i128::from(p.eval(ints[0], ints[1])),
        K::Select => {
            if ints[0] != 0 {
                ints[1]
            } else {
                ints[2]
            }
        }
        K::Trunc | K::Sext | K::Zext => ints[0],
        K::Slice => {
            let hi = m.op(op).attr(attrkey::HI)?.as_int()?;
            let lo = m.op(op).attr(attrkey::LO)?.as_int()?;
            (ints[0] >> lo) & ((1i128 << (hi - lo + 1)) - 1)
        }
    })
}

/// Algebraic identities: `x + 0`, `x * 1`, `x * 0`, `x & x`, `x | x`, ...
pub struct AlgebraicSimplify;

impl RewritePattern for AlgebraicSimplify {
    fn name(&self) -> &str {
        "hir-algebraic-simplify"
    }

    fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
        let m = rw.module();
        let name = m.op(op).name().as_str();
        let operands = m.op(op).operands().to_vec();
        let const_of = |m: &Module, v: ValueId| -> Option<i128> {
            ConstantOp::wrap(m, m.defining_op(v)?).and_then(|c| c.value_attr(m).as_int())
        };
        let result = match m.op(op).results().first() {
            Some(&r) => r,
            None => return RewriteStatus::NoMatch,
        };
        // The replacement must preserve the result's type.
        let same_type = |m: &Module, v: ValueId| m.value_type(v) == m.value_type(result);
        let replacement: Option<ValueId> = match name {
            opname::ADD => {
                if const_of(m, operands[1]) == Some(0) && same_type(m, operands[0]) {
                    Some(operands[0])
                } else if const_of(m, operands[0]) == Some(0) && same_type(m, operands[1]) {
                    Some(operands[1])
                } else {
                    None
                }
            }
            opname::SUB => (const_of(m, operands[1]) == Some(0) && same_type(m, operands[0]))
                .then_some(operands[0]),
            opname::MULT => {
                if const_of(m, operands[1]) == Some(1) && same_type(m, operands[0]) {
                    Some(operands[0])
                } else if const_of(m, operands[0]) == Some(1) && same_type(m, operands[1]) {
                    Some(operands[1])
                } else {
                    None
                }
            }
            opname::AND | opname::OR => {
                (operands[0] == operands[1] && same_type(m, operands[0])).then_some(operands[0])
            }
            opname::SHL | opname::SHR => (const_of(m, operands[1]) == Some(0)
                && same_type(m, operands[0]))
            .then_some(operands[0]),
            _ => None,
        };
        match replacement {
            Some(v) => {
                rw.replace_op(op, &[v]);
                RewriteStatus::Changed
            }
            None => RewriteStatus::NoMatch,
        }
    }
}

/// Erase pure ops (and unused constants) whose results are all unused.
pub struct Dce;

impl RewritePattern for Dce {
    fn name(&self) -> &str {
        "hir-dce"
    }

    fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
        let m = rw.module();
        let name = m.op(op).name().as_str().to_string();
        let erasable = rw.registry().op_has_trait(&name, traits::PURE)
            || name == opname::DELAY
            || name == opname::ALLOC;
        if !erasable {
            return RewriteStatus::NoMatch;
        }
        if m.op(op)
            .results()
            .iter()
            .any(|&r| !m.value(r).uses().is_empty())
        {
            return RewriteStatus::NoMatch;
        }
        rw.erase_op(op);
        RewriteStatus::Changed
    }
}

/// CSE as a standalone pass: pure ops with identical (name, operands, attrs)
/// in the same visibility scope are merged. Delays sharing (input, time,
/// offset, by) are also merged — the de-duplication step of §6.4.
pub struct CsePass;

impl Pass for CsePass {
    fn name(&self) -> &str {
        "hir-cse"
    }

    fn run(&mut self, module: &mut Module, cx: &mut PassContext<'_>) -> PassResult {
        let mut merges: u64 = 0;
        // Key: (name, operands, attrs rendered) -> first op seen.
        let mut seen: HashMap<String, Vec<(OpId, ValueId)>> = HashMap::new();
        let all = module.collect_all_ops();
        for op in all {
            if !module.is_live(op) {
                continue;
            }
            let name = module.op(op).name().as_str().to_string();
            let pure = cx.registry.op_has_trait(&name, traits::PURE);
            let dedupable_delay = name == opname::DELAY;
            if !pure && !dedupable_delay {
                continue;
            }
            if module.op(op).results().len() != 1 {
                continue;
            }
            let result = module.op(op).results()[0];
            let key = format!(
                "{name}|{:?}|{:?}|{}",
                module.op(op).operands(),
                module.op(op).attrs(),
                module.value_type(result),
            );
            let candidates = seen.entry(key).or_default();
            let mut merged = false;
            for (prev, prev_result) in candidates.iter() {
                if !module.is_live(*prev) {
                    continue;
                }
                // The previous result must be visible where this op is.
                if ir::value_visible_at(module, *prev_result, op) {
                    module.replace_all_uses(result, *prev_result);
                    module.erase_op(op);
                    merges += 1;
                    merged = true;
                    break;
                }
            }
            if !merged && module.is_live(op) {
                candidates.push((op, result));
            }
        }
        obs::counter_add("opt", "cse_merges", merges);
        if merges > 0 {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        }
    }
}

/// Greedy canonicalization pass: folding + algebraic identities + DCE.
pub struct CanonicalizePass;

impl Pass for CanonicalizePass {
    fn name(&self) -> &str {
        "hir-canonicalize"
    }

    fn run(&mut self, module: &mut Module, cx: &mut PassContext<'_>) -> PassResult {
        let patterns: Vec<Box<dyn RewritePattern>> = vec![
            Box::new(FoldConstants),
            Box::new(AlgebraicSimplify),
            Box::new(crate::strength::StrengthReduce),
            Box::new(Dce),
        ];
        let stats = ir::apply_patterns_greedily(module, cx.registry, &patterns);
        obs::counter_add("opt", "canonicalize_rewrites", stats.applications as u64);
        if stats.applications > 0 {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        }
    }
}
