//! Precision optimization (paper §6.3, Table 4).
//!
//! Hardware benefits from arbitrarily narrow arithmetic. Constant loop
//! bounds determine the minimum width of the induction variable: a loop
//! `for %i = 0 to 16` needs a 6-bit signed counter, not the `i32` a software
//! frontend would emit. Narrowing the induction variable shrinks the
//! counter, the guard comparator, every address computation fed by it and —
//! most visibly in the paper's Table 4 — the shift registers produced by
//! `hir.delay`, which is where the flip-flop savings come from.

use hir::dialect::opname;
use hir::ops::{ConstantOp, DelayOp, ForOp};
use ir::{Module, Pass, PassContext, PassResult, Type, ValueId};

/// Signed bit width needed to represent every value in `[lo, hi]`.
pub fn signed_width_for(lo: i128, hi: i128) -> u32 {
    let mut w = 1;
    loop {
        let min = -(1i128 << (w - 1));
        let max = (1i128 << (w - 1)) - 1;
        if lo >= min && hi <= max {
            return w;
        }
        w += 1;
    }
}

/// The precision-narrowing pass.
#[derive(Debug, Default)]
pub struct PrecisionPass {
    /// Number of values narrowed in the last run.
    pub narrowed: usize,
}

impl PrecisionPass {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Pass for PrecisionPass {
    fn name(&self) -> &str {
        "hir-precision-opt"
    }

    fn run(&mut self, module: &mut Module, _cx: &mut PassContext<'_>) -> PassResult {
        self.narrowed = 0;
        let ops = module.collect_all_ops();
        for op in ops {
            if !module.is_live(op) || module.op(op).name().as_str() != opname::FOR {
                continue;
            }
            let lp = ForOp(op);
            let const_of = |m: &Module, v: ValueId| -> Option<i128> {
                ConstantOp::wrap(m, m.defining_op(v)?).and_then(|c| c.value_attr(m).as_int())
            };
            let (Some(lb), Some(ub), Some(step)) = (
                const_of(module, lp.lower_bound(module)),
                const_of(module, lp.upper_bound(module)),
                const_of(module, lp.step(module)),
            ) else {
                continue;
            };
            if step <= 0 {
                continue;
            }
            // The candidate register can reach ub + step - 1 before the
            // guard rejects it; the comparison must not wrap.
            let hi = ub + step - 1;
            let lo = lb.min(0);
            let width = signed_width_for(lo, hi.max(ub));
            let iv = lp.induction_var(module);
            let Some(cur) = module.value_type(iv).int_width() else {
                continue;
            };
            if width >= cur {
                continue;
            }
            module.set_value_type(iv, Type::int(width));
            self.narrowed += 1;
            propagate_narrowing(module, iv, width, &mut self.narrowed);
        }
        obs::counter_add("opt", "values_narrowed", self.narrowed as u64);
        if self.narrowed > 0 {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        }
    }
}

/// Narrow delay chains fed by a narrowed value: a `hir.delay` result has the
/// same type as its input, and its shift register shrinks accordingly.
fn propagate_narrowing(module: &mut Module, value: ValueId, width: u32, narrowed: &mut usize) {
    let users: Vec<ir::OpId> = module.value(value).uses().iter().map(|u| u.op).collect();
    for user in users {
        if let Some(d) = DelayOp::wrap(module, user) {
            if d.input(module) == value {
                let result = d.result(module);
                if module
                    .value_type(result)
                    .int_width()
                    .is_some_and(|w| w > width)
                {
                    module.set_value_type(result, Type::int(width));
                    *narrowed += 1;
                    propagate_narrowing(module, result, width, narrowed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(signed_width_for(0, 0), 1);
        assert_eq!(signed_width_for(0, 1), 2);
        assert_eq!(signed_width_for(0, 15), 5); // 15 needs 5 signed bits
        assert_eq!(signed_width_for(0, 16), 6);
        assert_eq!(signed_width_for(-8, 7), 4);
        assert_eq!(signed_width_for(-9, 0), 5);
        assert_eq!(signed_width_for(0, 127), 8);
        assert_eq!(signed_width_for(0, 128), 9);
    }
}
