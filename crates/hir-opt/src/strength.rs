//! Strength reduction (paper §6.2): multiplications by constants become
//! shifts and adds, which cost far fewer LUTs than a full multiplier (and
//! never consume a DSP block).

use hir::dialect::{attrkey, opname};
use hir::ops::ConstantOp;
use ir::{AttrMap, Attribute, Module, OpId, RewritePattern, RewriteStatus, Rewriter, ValueId};

/// `x * 2^k` → `x << k`; `x * (2^k + 2^j)` → `(x << k) + (x << j)`.
/// Only fires for constants with at most two set bits — beyond that a real
/// multiplier is usually the better trade.
pub struct StrengthReduce;

impl RewritePattern for StrengthReduce {
    fn name(&self) -> &str {
        "hir-strength-reduce"
    }

    fn match_and_rewrite(&self, op: OpId, rw: &mut Rewriter<'_>) -> RewriteStatus {
        let m = rw.module();
        if m.op(op).name().as_str() != opname::MULT {
            return RewriteStatus::NoMatch;
        }
        let operands = m.op(op).operands().to_vec();
        let const_of = |m: &Module, v: ValueId| -> Option<i128> {
            ConstantOp::wrap(m, m.defining_op(v)?).and_then(|c| c.value_attr(m).as_int())
        };
        let missed = |m: &Module, message: String| {
            if obs::remarks_enabled() {
                obs::emit_remark(obs::Remark::missed(
                    "hir-strength-reduce",
                    m.op(op).loc().to_string(),
                    message,
                ));
            }
        };
        // Normalize: (value, constant).
        let (value, constant) = match (const_of(m, operands[0]), const_of(m, operands[1])) {
            (None, Some(c)) => (operands[0], c),
            (Some(c), None) => (operands[1], c),
            // Two constants fold elsewhere.
            (Some(_), Some(_)) => return RewriteStatus::NoMatch,
            // Two values are a real multiply: nothing to reduce against.
            (None, None) => {
                missed(
                    m,
                    "multiply not strength-reduced: stride unknown (no constant operand)"
                        .to_string(),
                );
                return RewriteStatus::NoMatch;
            }
        };
        if constant <= 0 {
            missed(
                m,
                format!("multiply not strength-reduced: non-positive constant {constant}"),
            );
            return RewriteStatus::NoMatch;
        }
        let ones = constant.count_ones();
        if ones > 2 {
            missed(
                m,
                format!(
                    "multiply not strength-reduced: constant {constant} has {ones} set bits \
                     (a real multiplier is the better trade)"
                ),
            );
            return RewriteStatus::NoMatch;
        }
        // The value operand must be a real (sized) integer for shifting.
        if m.value_type(value).int_width().is_none() {
            missed(
                m,
                "multiply not strength-reduced: operand has no fixed integer width".to_string(),
            );
            return RewriteStatus::NoMatch;
        }
        let result = m.op(op).results()[0];
        let res_ty = m.value_type(result);
        // `x * 1` with a width change is AlgebraicSimplify/cast territory.
        if constant == 1 && m.value_type(value) != res_ty {
            return RewriteStatus::NoMatch;
        }
        let loc = m.op(op).loc().clone();
        if obs::remarks_enabled() {
            obs::emit_remark(
                obs::Remark::applied(
                    "hir-strength-reduce",
                    loc.to_string(),
                    format!(
                        "multiply by {constant} lowered to {ones} shift(s){}",
                        if ones > 1 { " and an add" } else { "" }
                    ),
                )
                .arg_int("constant", constant)
                .arg_int("shifts", i128::from(ones)),
            );
        }

        let mut shifts: Vec<u32> = Vec::new();
        for b in 0..127 {
            if constant & (1 << b) != 0 {
                shifts.push(b);
            }
        }
        let m = rw.module_mut();
        let mut shifted_values = Vec::new();
        for s in &shifts {
            if *s == 0 {
                shifted_values.push(value);
                continue;
            }
            let mut cattrs = AttrMap::new();
            cattrs.insert(attrkey::VALUE.into(), Attribute::index(*s as i128));
            let shamt = m.create_op(
                opname::CONSTANT,
                vec![],
                vec![hir::types::const_type()],
                cattrs,
                loc.clone(),
            );
            m.insert_op_before(op, shamt);
            let shamt_v = m.op(shamt).results()[0];
            let shl = m.create_op(
                opname::SHL,
                vec![value, shamt_v],
                vec![res_ty.clone()],
                AttrMap::new(),
                loc.clone(),
            );
            m.insert_op_before(op, shl);
            shifted_values.push(m.op(shl).results()[0]);
        }
        let new_val = if shifted_values.len() == 1 {
            let v = shifted_values[0];
            if m.value_type(v) == res_ty {
                v
            } else {
                // x * 1 with differing width: extend via sext.
                let cast = m.create_op(opname::SEXT, vec![v], vec![res_ty], AttrMap::new(), loc);
                m.insert_op_before(op, cast);
                m.op(cast).results()[0]
            }
        } else {
            let add = m.create_op(
                opname::ADD,
                vec![shifted_values[0], shifted_values[1]],
                vec![res_ty],
                AttrMap::new(),
                loc,
            );
            m.insert_op_before(op, add);
            m.op(add).results()[0]
        };
        rw.replace_op(op, &[new_val]);
        RewriteStatus::Changed
    }
}
