//! Criterion benchmark of the two execution substrates: the HIR
//! interpreter and the RTL simulator, running the transpose benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use hir::interp::{ArgValue, Interpreter};
use hir_codegen::testbench::{Harness, HarnessArg};

fn bench_simulation(c: &mut Criterion) {
    let n = 16u64;
    let m = kernels::transpose::hir_transpose(n, 32);
    let input: Vec<i128> = (0..(n * n) as i128).collect();

    let mut group = c.benchmark_group("simulate/transpose16");
    group.sample_size(10);
    group.bench_function("hir_interpreter", |bencher| {
        bencher.iter(|| {
            Interpreter::new(&m)
                .run(
                    kernels::transpose::FUNC,
                    &[
                        ArgValue::tensor_from(&input),
                        ArgValue::uninit_tensor((n * n) as usize),
                    ],
                )
                .expect("simulate")
        });
    });

    let mut m2 = kernels::transpose::hir_transpose(n, 32);
    let (design, _) = kernels::compile_hir(&mut m2, false).expect("compile");
    group.bench_function("rtl_simulator", |bencher| {
        bencher.iter(|| {
            let func = kernels::find_func(&m2, kernels::transpose::FUNC);
            let mut h = Harness::new(
                &design,
                &m2,
                func,
                &[
                    HarnessArg::mem_from(&input),
                    HarnessArg::zero_mem((n * n) as usize),
                ],
            )
            .expect("harness");
            h.run(100_000).expect("RTL sim")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
