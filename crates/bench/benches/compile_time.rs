//! Criterion benchmark for the paper's Table 6 quantity: code-generation
//! time of the HIR flow versus the HLS-baseline flow, per benchmark.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_compile(c: &mut Criterion) {
    for b in kernels::compiled_benchmarks() {
        let mut group = c.benchmark_group(format!("compile/{}", b.name.replace(' ', "_")));
        group.sample_size(10);
        group.bench_function("hir", |bencher| {
            bencher.iter(|| {
                let mut m = (b.build_hir)();
                // The paper's quantity: verify + generate code for an
                // already hand-scheduled design (no optimizer).
                kernels::compile_hir(&mut m, false).expect("HIR compile")
            });
        });
        group.bench_function("hls_baseline", |bencher| {
            bencher.iter(|| {
                hls::compile(&(b.build_hls)(), &hls::SchedOptions::default()).expect("HLS compile")
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
