//! Regenerates the paper's **Table 5**: FPGA resource usage of all six
//! benchmarks, the HLS baseline versus HIR (and hand-written Verilog for
//! the FIFO row).

use bench::{hir_resources, hls_resources, render_resource_table, ResourceRow};
use kernels::{compiled_benchmarks, fifo, sizes};

fn main() {
    let model = synth::CostModel::default();
    for b in compiled_benchmarks() {
        let rows = vec![
            ResourceRow {
                label: "Vivado HLS (baseline)".into(),
                r: hls_resources(&b),
            },
            ResourceRow {
                label: "HIR".into(),
                r: hir_resources(&b),
            },
        ];
        println!("{}", render_resource_table(b.name, &rows));
    }

    // FIFO: hand-written Verilog vs the HIR design.
    let mut d = verilog::Design::new();
    d.add(fifo::verilog_fifo(sizes::FIFO_DEPTH, 32));
    let vr = synth::estimate_design(&d, "fifo_verilog", &model);
    let mut m = fifo::hir_fifo(sizes::FIFO_DEPTH, sizes::FIFO_CMDS, 32);
    let (hd, _) = kernels::compile_hir(&mut m, true).expect("HIR compile");
    let hr = synth::estimate_design(&hd, &kernels::hir_top(fifo::FUNC), &model);
    let rows = vec![
        ResourceRow {
            label: "Verilog (hand-written)".into(),
            r: vr,
        },
        ResourceRow {
            label: "HIR".into(),
            r: hr,
        },
    ];
    println!("{}", render_resource_table("FIFO", &rows));

    println!("Paper's shape: DSP counts equal across compilers; HIR ahead on stencil and");
    println!("convolution; mixed on GEMM (fewer LUTs, more FFs); the hand Verilog FIFO");
    println!("uses fewer registers than the HIR description.");
}
