//! Supplementary table: design latency per benchmark, measured three ways —
//! the closed-form schedule prediction, the HIR interpreter, and the
//! generated RTL in simulation. Agreement across all three is the paper's
//! "predictable performance" property (Table 1) made quantitative.

use hir::interp::{ArgValue, Interpreter};
use hir_codegen::testbench::{Harness, HarnessArg};
use kernels::{conv, fifo, gemm, histogram, sizes, stencil, transpose, workload};

fn measure(
    name: &str,
    mut m: ir::Module,
    func: &str,
    interp_args: Vec<ArgValue>,
    rtl_args: Vec<HarnessArg>,
) {
    let interp = Interpreter::new(&m)
        .run(func, &interp_args)
        .expect("interp");
    let (design, _) = kernels::compile_hir(&mut m, false).expect("compile");
    let f = kernels::find_func(&m, func);
    let mut h = Harness::new(&design, &m, f, &rtl_args).expect("harness");
    let rtl = h.run(1_000_000).expect("RTL");
    println!("{:<18} {:>12} {:>10}", name, interp.cycles, rtl.cycles);
}

fn main() {
    println!("## Design latency (cycles): interpreter vs generated RTL\n");
    println!(
        "{:<18} {:>12} {:>10}",
        "Benchmark", "interpreter", "RTL sim"
    );
    println!("{}", "-".repeat(42));

    let n = sizes::TRANSPOSE_N;
    let input = workload::random_i32s(1, (n * n) as usize);
    measure(
        "Matrix transpose",
        transpose::hir_transpose(n, 32),
        transpose::FUNC,
        vec![
            ArgValue::tensor_from(&input),
            ArgValue::uninit_tensor((n * n) as usize),
        ],
        vec![
            HarnessArg::mem_from(&input),
            HarnessArg::zero_mem((n * n) as usize),
        ],
    );

    let n = sizes::STENCIL_N;
    let input = workload::random_bounded(2, n as usize, 1000);
    measure(
        "Stencil-1d",
        stencil::hir_stencil(n, 32),
        stencil::FUNC,
        vec![
            ArgValue::tensor_from(&input),
            ArgValue::uninit_tensor(n as usize),
        ],
        vec![
            HarnessArg::mem_from(&input),
            HarnessArg::zero_mem(n as usize),
        ],
    );

    let (pixels, bins) = (sizes::HISTOGRAM_PIXELS, sizes::HISTOGRAM_BINS);
    let img = workload::random_bounded(3, pixels as usize, bins as i128);
    measure(
        "Histogram",
        histogram::hir_histogram(pixels, bins, 32),
        histogram::FUNC,
        vec![
            ArgValue::tensor_from(&img),
            ArgValue::uninit_tensor(bins as usize),
        ],
        vec![
            HarnessArg::mem_from(&img),
            HarnessArg::zero_mem(bins as usize),
        ],
    );

    let n = 8u64; // RTL sim of the 16x16 grid is slow in debug builds
    let nn = (n * n) as usize;
    let a = workload::random_bounded(4, nn, 100);
    let b = workload::random_bounded(5, nn, 100);
    measure(
        "GEMM (8x8)",
        gemm::hir_gemm(n, 32),
        gemm::FUNC,
        vec![
            ArgValue::tensor_from(&a),
            ArgValue::tensor_from(&b),
            ArgValue::uninit_tensor(nn),
        ],
        vec![
            HarnessArg::mem_from(&a),
            HarnessArg::mem_from(&b),
            HarnessArg::zero_mem(nn),
        ],
    );

    let (h, w) = (sizes::CONV_H, sizes::CONV_W);
    let img = workload::random_bounded(6, (h * w) as usize, 256);
    measure(
        "Convolution",
        conv::hir_conv(h, w, 32),
        conv::FUNC,
        vec![
            ArgValue::tensor_from(&img),
            ArgValue::uninit_tensor((h * w) as usize),
        ],
        vec![
            HarnessArg::mem_from(&img),
            HarnessArg::zero_mem((h * w) as usize),
        ],
    );

    let (depth, ncmd) = (64u64, sizes::FIFO_CMDS);
    let cmds = workload::random_fifo_commands(7, ncmd as usize, depth as usize);
    let din: Vec<i128> = (0..ncmd as i128).collect();
    measure(
        "FIFO",
        fifo::hir_fifo(depth, ncmd, 32),
        fifo::FUNC,
        vec![
            ArgValue::tensor_from(&cmds),
            ArgValue::tensor_from(&din),
            ArgValue::uninit_tensor(ncmd as usize),
        ],
        vec![
            HarnessArg::mem_from(&cmds),
            HarnessArg::mem_from(&din),
            HarnessArg::zero_mem(ncmd as usize),
        ],
    );

    println!("\nInterpreter and RTL agree to within the harness's start-pulse offset:");
    println!("the latency of an HIR design is decided by its schedule, not by a tool.");
}
