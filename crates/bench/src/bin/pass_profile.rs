//! Profiles the standard optimization pipeline over the kernels suite.
//!
//! Compiles every benchmark through verify → optimize → codegen several
//! times and writes `BENCH_pass_profile.json`: per-pass mean wall time and
//! op counts for each kernel, plus the aggregate mean per pass across the
//! suite. A human-readable summary goes to stdout.

use obs::json::escape;
use std::collections::BTreeMap;

const REPS: usize = 5;
const OUT_FILE: &str = "BENCH_pass_profile.json";

struct PassSample {
    total_ns: u128,
    runs: usize,
    ops_before: usize,
    ops_after: usize,
}

fn main() {
    let registry = hir::hir_registry();
    let mut kernels_json = Vec::new();
    // Aggregate mean per pass name across the whole suite.
    let mut aggregate: BTreeMap<String, PassSample> = BTreeMap::new();

    for b in kernels::compiled_benchmarks() {
        // name -> accumulated samples over REPS runs (passes can repeat in
        // the pipeline; repeated instances are folded together).
        let mut samples: BTreeMap<String, PassSample> = BTreeMap::new();
        for _ in 0..REPS {
            let mut m = (b.build_hir)();
            let mut diags = ir::DiagnosticEngine::new();
            ir::verify_module(&m, &registry, &mut diags).expect("verify");
            hir_verify::verify_schedule(&m, &mut diags).expect("schedule");
            let mut pm = hir_opt::standard_pipeline();
            pm.run(&mut m, &registry, &mut diags).expect("pipeline");
            for t in pm.timings() {
                let s = samples.entry(t.name.clone()).or_insert(PassSample {
                    total_ns: 0,
                    runs: 0,
                    ops_before: t.ops_before,
                    ops_after: t.ops_after,
                });
                s.total_ns += t.duration.as_nanos();
                s.runs += 1;
                s.ops_before = s.ops_before.max(t.ops_before);
                s.ops_after = s.ops_after.min(t.ops_after);
            }
            // Codegen keeps the profile honest about end-to-end compile cost.
            hir_codegen::generate_design(&m, &hir_codegen::CodegenOptions::default())
                .expect("codegen");
        }

        println!("{}", b.name);
        let mut pass_json = Vec::new();
        for (name, s) in &samples {
            let mean_ns = s.total_ns / s.runs as u128;
            println!(
                "  {:<20} mean {:>10}  ops {} -> {}",
                name,
                obs::format_duration_ns(mean_ns as u64),
                s.ops_before,
                s.ops_after,
            );
            pass_json.push(format!(
                r#"      {{"pass":"{}","mean_ns":{},"runs":{},"ops_before":{},"ops_after":{}}}"#,
                escape(name),
                mean_ns,
                s.runs,
                s.ops_before,
                s.ops_after,
            ));
            let agg = aggregate.entry(name.clone()).or_insert(PassSample {
                total_ns: 0,
                runs: 0,
                ops_before: 0,
                ops_after: 0,
            });
            agg.total_ns += s.total_ns;
            agg.runs += s.runs;
        }
        kernels_json.push(format!(
            "    {{\"kernel\":\"{}\",\"func\":\"{}\",\"reps\":{},\"passes\":[\n{}\n    ]}}",
            escape(b.name),
            escape(b.hir_func),
            REPS,
            pass_json.join(",\n"),
        ));
    }

    let mut agg_json = Vec::new();
    for (name, s) in &aggregate {
        agg_json.push(format!(
            r#"    {{"pass":"{}","mean_ns":{},"runs":{}}}"#,
            escape(name),
            s.total_ns / s.runs as u128,
            s.runs,
        ));
    }

    let doc = format!(
        "{{\n  \"kernels\": [\n{}\n  ],\n  \"aggregate\": [\n{}\n  ]\n}}\n",
        kernels_json.join(",\n"),
        agg_json.join(",\n"),
    );
    // The emitter and the parser live in the same crate: prove the file is
    // well-formed before writing it.
    obs::json::parse(&doc).expect("generated JSON is valid");
    std::fs::write(OUT_FILE, &doc).expect("write profile");
    println!("\nwrote {OUT_FILE}");
}
