//! Profiles the standard optimization pipeline over the kernels suite.
//!
//! Compiles every benchmark through verify → optimize → codegen several
//! times and writes `BENCH_pass_profile.json`: per-pass mean wall time and
//! op counts for each kernel, a total-pipeline wall-clock row, a GEMM
//! scaling section (N = 8/16/32) that documents near-linear pass cost, a
//! multi-kernel section timing the parallel per-function pipeline at
//! 1/2/max worker threads, and the aggregate mean per pass across the
//! suite. A human-readable summary goes to stdout.
//!
//! The multi-kernel section doubles as the determinism gate: the run
//! *fails* (exit 1) unless every thread count produces byte-identical
//! printed IR, diagnostics, and per-pass `ops_after`.
//!
//! Flags:
//!   --quick            fewer repetitions (CI smoke mode)
//!   --out=PATH         write the JSON somewhere other than the default
//!   --check-ops=PATH   compare per-kernel/per-pass `ops_after` against a
//!                      previously written profile; exit 1 on any drift

use obs::json::escape;
use std::collections::BTreeMap;
use std::time::Instant;

const OUT_FILE: &str = "BENCH_pass_profile.json";
const GEMM_SCALING_NS: [u64; 3] = [8, 16, 32];
/// Functions in the synthetic replica workload: enough to keep a 4+-core
/// runner's worker pool saturated through the whole pipeline.
const REPLICAS: usize = 8;

struct PassSample {
    total_ns: u128,
    runs: usize,
    ops_before: usize,
    ops_after: usize,
}

struct KernelProfile {
    samples: BTreeMap<String, PassSample>,
    /// Mean wall-clock of one full pipeline run (verify + optimize).
    total_ns: u128,
}

/// Run verify → standard pipeline `reps` times over freshly built modules.
fn profile_pipeline(build: &dyn Fn() -> ir::Module, reps: usize, codegen: bool) -> KernelProfile {
    let registry = hir::hir_registry();
    let mut samples: BTreeMap<String, PassSample> = BTreeMap::new();
    let mut total_ns = 0u128;
    for _ in 0..reps {
        let mut m = build();
        let mut diags = ir::DiagnosticEngine::new();
        let start = Instant::now();
        ir::verify_module(&m, &registry, &mut diags).expect("verify");
        hir_verify::verify_schedule(&m, &mut diags).expect("schedule");
        let mut pm = hir_opt::standard_pipeline();
        pm.run(&mut m, &registry, &mut diags).expect("pipeline");
        total_ns += start.elapsed().as_nanos();
        // Passes can repeat in the pipeline; repeated instances fold together.
        for t in pm.timings() {
            let s = samples.entry(t.name.clone()).or_insert(PassSample {
                total_ns: 0,
                runs: 0,
                ops_before: t.ops_before,
                ops_after: t.ops_after,
            });
            s.total_ns += t.duration.as_nanos();
            s.runs += 1;
            s.ops_before = s.ops_before.max(t.ops_before);
            s.ops_after = s.ops_after.min(t.ops_after);
        }
        if codegen {
            // Codegen keeps the profile honest about end-to-end compile cost.
            hir_codegen::generate_design(&m, &hir_codegen::CodegenOptions::default())
                .expect("codegen");
        }
    }
    KernelProfile {
        samples,
        total_ns: total_ns / reps as u128,
    }
}

/// All five benchmark kernels spliced into one module: the realistic
/// multi-function workload for the parallel per-function pipeline.
fn suite_module() -> ir::Module {
    let mods: Vec<ir::Module> = kernels::compiled_benchmarks()
        .iter()
        .map(|b| (b.build_hir)())
        .collect();
    ir::Module::splice_top(&mods)
}

/// A synthetic module of [`REPLICAS`] renamed GEMM functions: uniform
/// per-function cost, so worker-pool scaling shows up cleanly.
fn replica_module() -> ir::Module {
    let mods: Vec<ir::Module> = (0..REPLICAS)
        .map(|_| kernels::gemm::hir_gemm(kernels::sizes::GEMM_N, 32))
        .collect();
    let mut m = ir::Module::splice_top(&mods);
    let tops: Vec<ir::OpId> = m.top_ops().to_vec();
    for (i, t) in tops.into_iter().enumerate() {
        m.set_attr(t, ir::SYM_NAME, ir::Attribute::string(format!("gemm_r{i}")));
    }
    m
}

/// One multi-kernel measurement at a fixed worker-thread count.
struct ThreadRun {
    threads: usize,
    mean_ns: u128,
    /// Printed IR after the pipeline (first repetition).
    printed: String,
    /// Rendered diagnostics (first repetition).
    diags: String,
    /// Aggregated `(pass, ops_after)` per pipeline position.
    ops_after: Vec<(String, usize)>,
}

/// Run the standard per-function pipeline on `build()` at `threads` workers.
fn run_function_pipeline(build: &dyn Fn() -> ir::Module, reps: usize, threads: usize) -> ThreadRun {
    let registry = hir::hir_registry();
    let mut total = 0u128;
    let mut printed = String::new();
    let mut diags_text = String::new();
    let mut ops_after = Vec::new();
    for rep in 0..reps {
        let mut m = build();
        let mut diags = ir::DiagnosticEngine::new();
        let mut fp = hir_opt::standard_function_pipeline(threads);
        let t0 = Instant::now();
        fp.run(&mut m, &registry, &mut diags).expect("pipeline");
        total += t0.elapsed().as_nanos();
        if rep == 0 {
            printed = ir::print_module(&m);
            diags_text = diags.render();
            ops_after = fp
                .timings()
                .iter()
                .map(|t| (t.name.clone(), t.ops_after))
                .collect();
        }
    }
    ThreadRun {
        threads,
        mean_ns: total / reps as u128,
        printed,
        diags: diags_text,
        ops_after,
    }
}

/// Profile one multi-function workload at 1/2/max threads and enforce that
/// every thread count is byte-identical to threads=1. Returns the JSON
/// object for the `multi_kernel` section.
fn profile_multi_kernel(name: &str, build: &dyn Fn() -> ir::Module, reps: usize) -> String {
    let functions = build().top_ops().len();
    // Scaling rows at 1, 2, and all available cores. threads=2 stays even on
    // a single-core machine (two OS threads): it exercises the worker pool
    // and the determinism gate either way.
    let max = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut counts = vec![1usize, 2];
    if max > 2 {
        counts.push(max);
    }

    let runs: Vec<ThreadRun> = counts
        .iter()
        .map(|&t| run_function_pipeline(build, reps, t))
        .collect();
    let base = &runs[0];
    println!("{name} ({functions} functions)");
    for r in &runs {
        // The determinism gate: any divergence from the single-thread run
        // is a merge-order bug, not a tuning issue.
        if r.printed != base.printed || r.diags != base.diags || r.ops_after != base.ops_after {
            eprintln!(
                "determinism violation: {name} at threads={} differs from threads=1",
                r.threads
            );
            std::process::exit(1);
        }
        println!(
            "  threads={:<2} total pipeline mean {:>10}  (speedup {:.2}x)",
            r.threads,
            obs::format_duration_ns(r.mean_ns as u64),
            base.mean_ns as f64 / r.mean_ns as f64,
        );
    }

    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                r#"      {{"threads":{},"mean_ns":{},"speedup_vs_1":{:.3}}}"#,
                r.threads,
                r.mean_ns,
                base.mean_ns as f64 / r.mean_ns as f64,
            )
        })
        .collect();
    let passes: Vec<String> = base
        .ops_after
        .iter()
        .map(|(pass, ops)| format!(r#"      {{"pass":"{}","ops_after":{ops}}}"#, escape(pass)))
        .collect();
    format!(
        "    {{\"kernel\":\"{}\",\"functions\":{},\"reps\":{},\"deterministic\":true,\"rows\":[\n{}\n    ],\"passes\":[\n{}\n    ]}}",
        escape(name),
        functions,
        reps,
        rows.join(",\n"),
        passes.join(",\n"),
    )
}

/// Extract `(kernel, pass) -> ops_after` from a parsed profile document.
fn ops_after_map(doc: &obs::json::Value) -> BTreeMap<(String, String), usize> {
    let mut out = BTreeMap::new();
    for section in ["kernels", "gemm_scaling", "multi_kernel"] {
        let Some(kernels) = doc.get(section).and_then(|v| v.as_array()) else {
            continue;
        };
        for k in kernels {
            let Some(name) = k.get("kernel").and_then(|v| v.as_str()) else {
                continue;
            };
            let Some(passes) = k.get("passes").and_then(|v| v.as_array()) else {
                continue;
            };
            for p in passes {
                if let (Some(pass), Some(ops)) = (
                    p.get("pass").and_then(|v| v.as_str()),
                    p.get("ops_after").and_then(|v| v.as_f64()),
                ) {
                    out.insert((name.to_string(), pass.to_string()), ops as usize);
                }
            }
        }
    }
    out
}

fn kernel_json(name: &str, func: &str, reps: usize, prof: &KernelProfile) -> String {
    let mut pass_json = Vec::new();
    for (pass, s) in &prof.samples {
        pass_json.push(format!(
            r#"      {{"pass":"{}","mean_ns":{},"runs":{},"ops_before":{},"ops_after":{}}}"#,
            escape(pass),
            s.total_ns / s.runs as u128,
            s.runs,
            s.ops_before,
            s.ops_after,
        ));
    }
    format!(
        "    {{\"kernel\":\"{}\",\"func\":\"{}\",\"reps\":{},\"total_pipeline_ns\":{},\"passes\":[\n{}\n    ]}}",
        escape(name),
        escape(func),
        reps,
        prof.total_ns,
        pass_json.join(",\n"),
    )
}

fn print_profile(name: &str, prof: &KernelProfile) {
    println!("{name}");
    for (pass, s) in &prof.samples {
        println!(
            "  {:<20} mean {:>10}  ops {} -> {}",
            pass,
            obs::format_duration_ns((s.total_ns / s.runs as u128) as u64),
            s.ops_before,
            s.ops_after,
        );
    }
    println!(
        "  {:<20} mean {:>10}",
        "total pipeline",
        obs::format_duration_ns(prof.total_ns as u64),
    );
}

fn main() {
    let mut reps = 5usize;
    let mut out_file = OUT_FILE.to_string();
    let mut check_ops: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            reps = 2;
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out_file = path.to_string();
        } else if let Some(path) = arg.strip_prefix("--check-ops=") {
            check_ops = Some(path.to_string());
        } else {
            eprintln!("unknown flag {arg} (expected --quick, --out=, --check-ops=)");
            std::process::exit(2);
        }
    }

    let mut kernels_json = Vec::new();
    // Aggregate mean per pass name across the whole suite.
    let mut aggregate: BTreeMap<String, PassSample> = BTreeMap::new();

    for b in kernels::compiled_benchmarks() {
        let prof = profile_pipeline(&b.build_hir, reps, true);
        print_profile(b.name, &prof);
        for (pass, s) in &prof.samples {
            let agg = aggregate.entry(pass.clone()).or_insert(PassSample {
                total_ns: 0,
                runs: 0,
                ops_before: 0,
                ops_after: 0,
            });
            agg.total_ns += s.total_ns;
            agg.runs += s.runs;
        }
        kernels_json.push(kernel_json(b.name, b.hir_func, reps, &prof));
    }

    // GEMM scaling: the op count grows ~N², so near-linear pass hot paths
    // show up as total pipeline time growing ~4x per N doubling (and far
    // from the ~16x a quadratic pass would cost).
    println!("\nGEMM scaling");
    let mut scaling_json = Vec::new();
    for n in GEMM_SCALING_NS {
        let build = move || kernels::gemm::hir_gemm(n, 32);
        // Codegen is skipped here: this section isolates pipeline scaling.
        let prof = profile_pipeline(&build, reps, false);
        let ops = prof
            .samples
            .values()
            .map(|s| s.ops_before)
            .max()
            .unwrap_or(0);
        println!(
            "  N={:<3} ops {:>6}  total pipeline mean {:>10}",
            n,
            ops,
            obs::format_duration_ns(prof.total_ns as u64),
        );
        scaling_json.push(kernel_json(
            &format!("GEMM N={n}"),
            kernels::gemm::FUNC,
            reps,
            &prof,
        ));
    }

    // Multi-kernel workloads through the parallel per-function pipeline:
    // thread-scaling rows plus the byte-identical determinism gate.
    println!("\nmulti-kernel (parallel function pipeline)");
    let multi_json = [
        profile_multi_kernel("suite", &suite_module, reps),
        profile_multi_kernel(&format!("gemm_x{REPLICAS}"), &replica_module, reps),
    ];

    let mut agg_json = Vec::new();
    for (name, s) in &aggregate {
        agg_json.push(format!(
            r#"    {{"pass":"{}","mean_ns":{},"runs":{}}}"#,
            escape(name),
            s.total_ns / s.runs as u128,
            s.runs,
        ));
    }

    let doc = format!(
        "{{\n  \"kernels\": [\n{}\n  ],\n  \"gemm_scaling\": [\n{}\n  ],\n  \"multi_kernel\": [\n{}\n  ],\n  \"aggregate\": [\n{}\n  ]\n}}\n",
        kernels_json.join(",\n"),
        scaling_json.join(",\n"),
        multi_json.join(",\n"),
        agg_json.join(",\n"),
    );
    // The emitter and the parser live in the same crate: prove the file is
    // well-formed before writing it.
    let parsed = obs::json::parse(&doc).expect("generated JSON is valid");

    if let Some(baseline_path) = check_ops {
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let baseline = obs::json::parse(&baseline_text).expect("baseline JSON is valid");
        let want = ops_after_map(&baseline);
        let got = ops_after_map(&parsed);
        let mut drift = 0;
        for ((kernel, pass), ops) in &want {
            match got.get(&(kernel.clone(), pass.clone())) {
                Some(g) if g == ops => {}
                Some(g) => {
                    eprintln!("ops drift: {kernel} / {pass}: baseline {ops}, now {g}");
                    drift += 1;
                }
                None => {
                    eprintln!("ops drift: {kernel} / {pass}: missing from new profile");
                    drift += 1;
                }
            }
        }
        if drift > 0 {
            eprintln!("{drift} kernel/pass pairs drifted from {baseline_path}");
            std::process::exit(1);
        }
        println!(
            "ops check: {} kernel/pass pairs match {baseline_path}",
            want.len()
        );
    }

    std::fs::write(&out_file, &doc).expect("write profile");
    println!("\nwrote {out_file}");
}
