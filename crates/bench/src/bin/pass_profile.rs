//! Profiles the standard optimization pipeline over the kernels suite.
//!
//! Compiles every benchmark through verify → optimize → codegen several
//! times and writes `BENCH_pass_profile.json`: per-pass mean wall time and
//! op counts for each kernel, a total-pipeline wall-clock row, a GEMM
//! scaling section (N = 8/16/32) that documents near-linear pass cost, and
//! the aggregate mean per pass across the suite. A human-readable summary
//! goes to stdout.
//!
//! Flags:
//!   --quick            fewer repetitions (CI smoke mode)
//!   --out=PATH         write the JSON somewhere other than the default
//!   --check-ops=PATH   compare per-kernel/per-pass `ops_after` against a
//!                      previously written profile; exit 1 on any drift

use obs::json::escape;
use std::collections::BTreeMap;
use std::time::Instant;

const OUT_FILE: &str = "BENCH_pass_profile.json";
const GEMM_SCALING_NS: [u64; 3] = [8, 16, 32];

struct PassSample {
    total_ns: u128,
    runs: usize,
    ops_before: usize,
    ops_after: usize,
}

struct KernelProfile {
    samples: BTreeMap<String, PassSample>,
    /// Mean wall-clock of one full pipeline run (verify + optimize).
    total_ns: u128,
}

/// Run verify → standard pipeline `reps` times over freshly built modules.
fn profile_pipeline(build: &dyn Fn() -> ir::Module, reps: usize, codegen: bool) -> KernelProfile {
    let registry = hir::hir_registry();
    let mut samples: BTreeMap<String, PassSample> = BTreeMap::new();
    let mut total_ns = 0u128;
    for _ in 0..reps {
        let mut m = build();
        let mut diags = ir::DiagnosticEngine::new();
        let start = Instant::now();
        ir::verify_module(&m, &registry, &mut diags).expect("verify");
        hir_verify::verify_schedule(&m, &mut diags).expect("schedule");
        let mut pm = hir_opt::standard_pipeline();
        pm.run(&mut m, &registry, &mut diags).expect("pipeline");
        total_ns += start.elapsed().as_nanos();
        // Passes can repeat in the pipeline; repeated instances fold together.
        for t in pm.timings() {
            let s = samples.entry(t.name.clone()).or_insert(PassSample {
                total_ns: 0,
                runs: 0,
                ops_before: t.ops_before,
                ops_after: t.ops_after,
            });
            s.total_ns += t.duration.as_nanos();
            s.runs += 1;
            s.ops_before = s.ops_before.max(t.ops_before);
            s.ops_after = s.ops_after.min(t.ops_after);
        }
        if codegen {
            // Codegen keeps the profile honest about end-to-end compile cost.
            hir_codegen::generate_design(&m, &hir_codegen::CodegenOptions::default())
                .expect("codegen");
        }
    }
    KernelProfile {
        samples,
        total_ns: total_ns / reps as u128,
    }
}

/// Extract `(kernel, pass) -> ops_after` from a parsed profile document.
fn ops_after_map(doc: &obs::json::Value) -> BTreeMap<(String, String), usize> {
    let mut out = BTreeMap::new();
    for section in ["kernels", "gemm_scaling"] {
        let Some(kernels) = doc.get(section).and_then(|v| v.as_array()) else {
            continue;
        };
        for k in kernels {
            let Some(name) = k.get("kernel").and_then(|v| v.as_str()) else {
                continue;
            };
            let Some(passes) = k.get("passes").and_then(|v| v.as_array()) else {
                continue;
            };
            for p in passes {
                if let (Some(pass), Some(ops)) = (
                    p.get("pass").and_then(|v| v.as_str()),
                    p.get("ops_after").and_then(|v| v.as_f64()),
                ) {
                    out.insert((name.to_string(), pass.to_string()), ops as usize);
                }
            }
        }
    }
    out
}

fn kernel_json(name: &str, func: &str, reps: usize, prof: &KernelProfile) -> String {
    let mut pass_json = Vec::new();
    for (pass, s) in &prof.samples {
        pass_json.push(format!(
            r#"      {{"pass":"{}","mean_ns":{},"runs":{},"ops_before":{},"ops_after":{}}}"#,
            escape(pass),
            s.total_ns / s.runs as u128,
            s.runs,
            s.ops_before,
            s.ops_after,
        ));
    }
    format!(
        "    {{\"kernel\":\"{}\",\"func\":\"{}\",\"reps\":{},\"total_pipeline_ns\":{},\"passes\":[\n{}\n    ]}}",
        escape(name),
        escape(func),
        reps,
        prof.total_ns,
        pass_json.join(",\n"),
    )
}

fn print_profile(name: &str, prof: &KernelProfile) {
    println!("{name}");
    for (pass, s) in &prof.samples {
        println!(
            "  {:<20} mean {:>10}  ops {} -> {}",
            pass,
            obs::format_duration_ns((s.total_ns / s.runs as u128) as u64),
            s.ops_before,
            s.ops_after,
        );
    }
    println!(
        "  {:<20} mean {:>10}",
        "total pipeline",
        obs::format_duration_ns(prof.total_ns as u64),
    );
}

fn main() {
    let mut reps = 5usize;
    let mut out_file = OUT_FILE.to_string();
    let mut check_ops: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            reps = 2;
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out_file = path.to_string();
        } else if let Some(path) = arg.strip_prefix("--check-ops=") {
            check_ops = Some(path.to_string());
        } else {
            eprintln!("unknown flag {arg} (expected --quick, --out=, --check-ops=)");
            std::process::exit(2);
        }
    }

    let mut kernels_json = Vec::new();
    // Aggregate mean per pass name across the whole suite.
    let mut aggregate: BTreeMap<String, PassSample> = BTreeMap::new();

    for b in kernels::compiled_benchmarks() {
        let prof = profile_pipeline(&b.build_hir, reps, true);
        print_profile(b.name, &prof);
        for (pass, s) in &prof.samples {
            let agg = aggregate.entry(pass.clone()).or_insert(PassSample {
                total_ns: 0,
                runs: 0,
                ops_before: 0,
                ops_after: 0,
            });
            agg.total_ns += s.total_ns;
            agg.runs += s.runs;
        }
        kernels_json.push(kernel_json(b.name, b.hir_func, reps, &prof));
    }

    // GEMM scaling: the op count grows ~N², so near-linear pass hot paths
    // show up as total pipeline time growing ~4x per N doubling (and far
    // from the ~16x a quadratic pass would cost).
    println!("\nGEMM scaling");
    let mut scaling_json = Vec::new();
    for n in GEMM_SCALING_NS {
        let build = move || kernels::gemm::hir_gemm(n, 32);
        // Codegen is skipped here: this section isolates pipeline scaling.
        let prof = profile_pipeline(&build, reps, false);
        let ops = prof
            .samples
            .values()
            .map(|s| s.ops_before)
            .max()
            .unwrap_or(0);
        println!(
            "  N={:<3} ops {:>6}  total pipeline mean {:>10}",
            n,
            ops,
            obs::format_duration_ns(prof.total_ns as u64),
        );
        scaling_json.push(kernel_json(
            &format!("GEMM N={n}"),
            kernels::gemm::FUNC,
            reps,
            &prof,
        ));
    }

    let mut agg_json = Vec::new();
    for (name, s) in &aggregate {
        agg_json.push(format!(
            r#"    {{"pass":"{}","mean_ns":{},"runs":{}}}"#,
            escape(name),
            s.total_ns / s.runs as u128,
            s.runs,
        ));
    }

    let doc = format!(
        "{{\n  \"kernels\": [\n{}\n  ],\n  \"gemm_scaling\": [\n{}\n  ],\n  \"aggregate\": [\n{}\n  ]\n}}\n",
        kernels_json.join(",\n"),
        scaling_json.join(",\n"),
        agg_json.join(",\n"),
    );
    // The emitter and the parser live in the same crate: prove the file is
    // well-formed before writing it.
    let parsed = obs::json::parse(&doc).expect("generated JSON is valid");

    if let Some(baseline_path) = check_ops {
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        let baseline = obs::json::parse(&baseline_text).expect("baseline JSON is valid");
        let want = ops_after_map(&baseline);
        let got = ops_after_map(&parsed);
        let mut drift = 0;
        for ((kernel, pass), ops) in &want {
            match got.get(&(kernel.clone(), pass.clone())) {
                Some(g) if g == ops => {}
                Some(g) => {
                    eprintln!("ops drift: {kernel} / {pass}: baseline {ops}, now {g}");
                    drift += 1;
                }
                None => {
                    eprintln!("ops drift: {kernel} / {pass}: missing from new profile");
                    drift += 1;
                }
            }
        }
        if drift > 0 {
            eprintln!("{drift} kernel/pass pairs drifted from {baseline_path}");
            std::process::exit(1);
        }
        println!(
            "ops check: {} kernel/pass pairs match {baseline_path}",
            want.len()
        );
    }

    std::fs::write(&out_file, &doc).expect("write profile");
    println!("\nwrote {out_file}");
}
