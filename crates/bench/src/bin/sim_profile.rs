//! Profiles every simulator engine on the generated GEMM testbench: the
//! bytecode baseline, the tree-walk oracle, the event-driven scheduler
//! (quiescent cones skipped), and the batched engine (N independent
//! stimulus lanes evaluated bit-parallel). Same design, same stimulus
//! (lane 0), every engine runs to completion and must produce the reference
//! GEMM result. The measurements are written to `BENCH_sim_profile.json` so
//! CI can archive engine-throughput baselines next to the pass profile.
//!
//! Flags:
//!   --quick       one repetition instead of three
//!   --n=SIZE      GEMM size (power of two, default 16)
//!   --lanes=N     stimulus lanes for the batched engine (default 16)
//!   --out=PATH    write the JSON somewhere other than the default
//!   --gate-event  exit 1 unless event-driven cycles/s >= bytecode cycles/s
//!                 (the CI no-regression drift gate)
//!   --gate-sched-off=PCT
//!                 exit 1 if a stats-off event run re-measured *after* the
//!                 sched-stats runs is more than PCT% slower than the
//!                 recorded event row (the zero-cost-when-off gate: the
//!                 compiled-in scheduler-stats plane must not tax the off
//!                 path)

use hir_codegen::testbench::{Harness, HarnessArg};
use obs::json::escape;
use std::time::Instant;

const OUT_FILE: &str = "BENCH_sim_profile.json";

struct EngineRun {
    label: &'static str,
    cycles: u64,
    best_ns: u128,
    cycles_per_s: f64,
    lanes: usize,
    /// Aggregate throughput: (cycles x lanes) per second.
    lane_cycles_per_s: f64,
}

fn main() {
    let mut reps = 3usize;
    let mut n = 16u64;
    let mut lanes = 16usize;
    let mut out_file = OUT_FILE.to_string();
    let mut gate_event = false;
    let mut gate_sched_off: Option<f64> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            reps = 1;
        } else if arg == "--gate-event" {
            gate_event = true;
        } else if let Some(v) = arg.strip_prefix("--gate-sched-off=") {
            gate_sched_off = Some(v.parse().expect("--gate-sched-off=PCT"));
        } else if let Some(v) = arg.strip_prefix("--n=") {
            n = v.parse().expect("--n=SIZE");
        } else if let Some(v) = arg.strip_prefix("--lanes=") {
            lanes = v.parse().expect("--lanes=N");
            assert!((1..=64).contains(&lanes), "--lanes accepts 1..=64");
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out_file = path.to_string();
        } else {
            eprintln!(
                "unknown flag {arg} (expected --quick, --n=, --lanes=, --out=, --gate-event, --gate-sched-off=)"
            );
            std::process::exit(2);
        }
    }

    let nn = (n * n) as usize;
    let mut m = kernels::gemm::hir_gemm(n, 32);
    let (design, _) = kernels::compile_hir(&mut m, true).expect("compile");
    let func = kernels::find_func(&m, kernels::gemm::FUNC);
    let a: Vec<i128> = (0..nn as i128).map(|x| x % 9 - 4).collect();
    let b: Vec<i128> = (0..nn as i128).map(|x| 2 * x % 7 - 3).collect();
    let args = [
        HarnessArg::mem_from(&a),
        HarnessArg::mem_from(&b),
        HarnessArg::zero_mem(nn),
    ];
    let expect = kernels::gemm::reference(n, &a, &b);

    let report_row = |r: &EngineRun| {
        println!(
            "{:<12} {:>8} cycles in {:>8.4}s  ({:>12.0} cycles/s, {:>14.0} lane-cycles/s)",
            r.label,
            r.cycles,
            r.best_ns as f64 / 1e9,
            r.cycles_per_s,
            r.lane_cycles_per_s
        );
    };

    type Measured = (
        EngineRun,
        Option<verilog::TelemetryReport>,
        Option<verilog::SchedStatsReport>,
    );
    let measure =
        |engine: verilog::Engine, label: &'static str, telemetry: bool, sched: bool| -> Measured {
            let mut best = u128::MAX;
            let mut cycles = 0u64;
            let mut telem = None;
            let mut sched_rep = None;
            for _ in 0..reps {
                let mut h = Harness::new(&design, &m, func, &args).expect("harness");
                h.set_engine(engine);
                if telemetry {
                    h.enable_telemetry(false);
                }
                if sched {
                    h.enable_sched_stats();
                }
                let t0 = Instant::now();
                let report = h.run(1_000_000).expect("run");
                best = best.min(t0.elapsed().as_nanos());
                cycles = report.cycles;
                assert_eq!(report.mems[&2], expect, "{label}: wrong GEMM result");
                if telemetry {
                    telem = h.telemetry_report(None);
                }
                if sched {
                    sched_rep = h.sched_stats_report();
                }
            }
            let rate = cycles as f64 / (best as f64 / 1e9);
            let run = EngineRun {
                label,
                cycles,
                best_ns: best,
                cycles_per_s: rate,
                lanes: 1,
                lane_cycles_per_s: rate,
            };
            report_row(&run);
            (run, telem, sched_rep)
        };

    // One batched pass simulates `lanes` independent GEMMs: lane 0 carries
    // the baseline stimulus, later lanes offset matrix A per lane so every
    // lane computes (and checks) a different product.
    let measure_batched = || -> EngineRun {
        let lane_args: Vec<Vec<HarnessArg>> = (0..lanes)
            .map(|lane| {
                let al: Vec<i128> = a.iter().map(|v| v + lane as i128).collect();
                vec![
                    HarnessArg::mem_from(&al),
                    HarnessArg::mem_from(&b),
                    HarnessArg::zero_mem(nn),
                ]
            })
            .collect();
        let expects: Vec<Vec<i128>> = lane_args
            .iter()
            .map(|la| match &la[0] {
                HarnessArg::Mem(al) => kernels::gemm::reference(n, al, &b),
                _ => unreachable!(),
            })
            .collect();
        let mut best = u128::MAX;
        let mut cycles = 0u64;
        for _ in 0..reps {
            let mut h =
                Harness::new_batched(&design, &m, func, &lane_args).expect("batched harness");
            let t0 = Instant::now();
            let reports = h.run_batched(1_000_000).expect("batched run");
            best = best.min(t0.elapsed().as_nanos());
            cycles = reports[0].cycles;
            for (lane, (rep, exp)) in reports.iter().zip(&expects).enumerate() {
                assert_eq!(rep.mems[&2], *exp, "batched lane {lane}: wrong GEMM result");
            }
        }
        let rate = cycles as f64 / (best as f64 / 1e9);
        let run = EngineRun {
            label: "batched",
            cycles,
            best_ns: best,
            cycles_per_s: rate,
            lanes,
            lane_cycles_per_s: rate * lanes as f64,
        };
        report_row(&run);
        run
    };

    let tape = {
        let h = Harness::new(&design, &m, func, &args).expect("harness");
        let (na, st, nal, sp, nr) = h.sim().tape_stats();
        println!("assigns {na} (settle tape {st}), always {nal} (step tape {sp}), regs {nr}");
        (na, st, nal, sp, nr)
    };
    println!("GEMM N={n} testbench, best of {reps}, {lanes} batched lanes");
    let (bc, _, _) = measure(verilog::Engine::Bytecode, "bytecode", false, false);
    let (tw, _, _) = measure(verilog::Engine::TreeWalk, "tree-walk", false, false);
    let (ev, _, _) = measure(verilog::Engine::Event, "event", false, false);
    {
        // Scheduler activity: how much of the cone graph the event engine
        // actually runs per cycle (the skip ratio the speedup comes from).
        let mut h = Harness::new(&design, &m, func, &args).expect("harness");
        h.set_engine(verilog::Engine::Event);
        let rep = h.run(1_000_000).expect("run");
        {
            // Quiescent floor: cost of a step when nothing is pending.
            let t0 = Instant::now();
            h.sim_mut().run(532).expect("idle run");
            println!(
                "event quiescent floor: {:.0} ns/cycle",
                t0.elapsed().as_nanos() as f64 / 532.0
            );
        }
        if let Some((sruns, pruns, scones, pcones, sinsns, pinsns)) = h.sim().event_activity() {
            let cy = rep.cycles as f64;
            println!(
                "event activity: {:.1}/{} settle cones ({:.0} insns) and {:.1}/{} step cones ({:.0} insns) per cycle",
                sruns as f64 / cy,
                scones,
                sinsns as f64 / cy,
                pruns as f64 / cy,
                pcones,
                pinsns as f64 / cy,
            );
        }
    }
    let bt = measure_batched();
    let (bct, _, _) = measure(verilog::Engine::Bytecode, "bc+telem", true, false);
    let (evt, telem, _) = measure(verilog::Engine::Event, "ev+telem", true, false);
    // The scheduler's own statistics plane, measured like telemetry: the
    // event engine with `--sched-stats` on, against the plain event row.
    let (evs, _, sched) = measure(verilog::Engine::Event, "ev+sched", false, true);
    let speedup = bc.cycles_per_s / tw.cycles_per_s;
    let speedup_event = ev.cycles_per_s / bc.cycles_per_s;
    let speedup_batched = bt.lane_cycles_per_s / bc.cycles_per_s;
    println!("speedup    bytecode/tree-walk {speedup:.1}x, event/bytecode {speedup_event:.1}x, batched lane-cycles/bytecode {speedup_batched:.1}x");
    // Telemetry slowdown (counters on vs off, same engine). Under the
    // bytecode engine the counting interpreter replaces the plain tape loop;
    // under the event engine telemetry piggybacks on the dirty-set, so the
    // recorded overhead is the event-mode figure.
    let overhead_bc_pct = 100.0 * (1.0 - bct.cycles_per_s / bc.cycles_per_s);
    let overhead_pct = 100.0 * (1.0 - evt.cycles_per_s / ev.cycles_per_s);
    println!(
        "telemetry overhead {overhead_pct:.1}% (event-driven; bytecode {overhead_bc_pct:.1}%)"
    );
    let telem = telem.expect("telemetry report from instrumented run");
    let overall = telem.overall_quiescence();
    let (worst_name, worst_frac) = telem
        .worst_cone()
        .map(|(name, frac)| (name.to_string(), frac))
        .unwrap_or_default();
    println!("quiescence overall {overall:.3}, worst cone {worst_name} ({worst_frac:.3})");
    // Scheduler-overhead baseline for the ROADMAP item 2 hunt: how much of
    // the event engine's cycle goes to wake walks and commit compares, how
    // many wakes were spurious, and what the stats plane itself costs.
    let sched = sched.expect("sched stats report from instrumented run");
    let overhead_sched_pct = 100.0 * (1.0 - evs.cycles_per_s / ev.cycles_per_s);
    let share = sched.cycle_share();
    println!(
        "sched stats overhead {overhead_sched_pct:.1}% (event-driven); spurious wake rate {:.1}%",
        sched.spurious_wake_rate() * 100.0
    );
    println!(
        "sched cycle share: interpreter {:.1}% | wake walks {:.1}% | commit compares {:.1}%",
        share[0].2 * 100.0,
        share[1].2 * 100.0,
        share[2].2 * 100.0
    );
    println!(
        "reader walks: {} net wakes (mean len {} max {}), {} mem wakes (mean len {} max {})",
        sched.net_wake_walk.count(),
        sched.net_wake_walk.mean(),
        sched.net_wake_walk.max(),
        sched.mem_wake_walk.count(),
        sched.mem_wake_walk.mean(),
        sched.mem_wake_walk.max()
    );

    let engines: Vec<String> = [&bc, &tw, &ev, &bt, &bct, &evt, &evs]
        .iter()
        .map(|r| {
            format!(
                r#"    {{"engine":"{}","cycles":{},"best_ns":{},"cycles_per_s":{:.0},"lanes":{},"lane_cycles_per_s":{:.0}}}"#,
                escape(r.label),
                r.cycles,
                r.best_ns,
                r.cycles_per_s,
                r.lanes,
                r.lane_cycles_per_s,
            )
        })
        .collect();
    let sched_json = format!(
        "{{\"overhead_on_pct\":{:.1},\"spurious_wake_rate\":{:.6},\"cycle_share\":{{\"interpreter\":{:.6},\"wake_walks\":{:.6},\"commit_compares\":{:.6}}},\"net_wake_walk\":{},\"mem_wake_walk\":{},\"dirty_cones\":{}}}",
        overhead_sched_pct,
        sched.spurious_wake_rate(),
        share[0].2,
        share[1].2,
        share[2].2,
        sched.net_wake_walk.to_json(),
        sched.mem_wake_walk.to_json(),
        sched.dirty_cones.to_json(),
    );
    let doc = format!(
        "{{\n  \"gemm_n\": {n},\n  \"reps\": {reps},\n  \"tape\": {{\"assigns\":{},\"settle_tape\":{},\"always\":{},\"step_tape\":{},\"regs\":{}}},\n  \"engines\": [\n{}\n  ],\n  \"speedup_bytecode_vs_treewalk\": {:.2},\n  \"speedup_event_vs_bytecode\": {:.2},\n  \"speedup_batched_lane_cycles_vs_bytecode\": {:.2},\n  \"telemetry\": {{\"overhead_pct\":{:.1},\"overhead_pct_bytecode\":{:.1},\"toggle_coverage\":{:.6}}},\n  \"quiescence\": {{\"overall\":{:.6},\"worst_cone\":\"{}\",\"worst_fraction\":{:.6}}},\n  \"sched\": {}\n}}\n",
        tape.0,
        tape.1,
        tape.2,
        tape.3,
        tape.4,
        engines.join(",\n"),
        speedup,
        speedup_event,
        speedup_batched,
        overhead_pct,
        overhead_bc_pct,
        telem.toggle_coverage(),
        overall,
        escape(&worst_name),
        worst_frac,
        sched_json,
    );
    // Same rule as pass_profile: prove the document parses before writing.
    obs::json::parse(&doc).expect("generated JSON is valid");
    std::fs::write(&out_file, &doc).expect("write profile");
    println!("wrote {out_file}");

    if gate_event && ev.cycles_per_s < bc.cycles_per_s {
        eprintln!(
            "sim_profile: REGRESSION: event engine ({:.0} cycles/s) is slower than bytecode ({:.0} cycles/s)",
            ev.cycles_per_s, bc.cycles_per_s
        );
        std::process::exit(1);
    }
    if let Some(pct) = gate_sched_off {
        // Zero-cost-when-off check: re-measure the plain event row now that
        // the stats plane has been exercised; it must sit within the noise
        // band of the row recorded above, or the off path grew a tax. A
        // real tax fails every attempt; scheduler/frequency noise does not,
        // so the gate takes the best of a few tries before failing.
        let mut slowdown_pct = f64::INFINITY;
        for attempt in 1..=3 {
            let (off, _, _) = measure(verilog::Engine::Event, "ev (off)", false, false);
            slowdown_pct = slowdown_pct.min(100.0 * (1.0 - off.cycles_per_s / ev.cycles_per_s));
            println!("sched-stats-off re-measurement #{attempt}: {slowdown_pct:+.1}% vs recorded event row (gate {pct}%)");
            if slowdown_pct <= pct {
                break;
            }
        }
        if slowdown_pct > pct {
            eprintln!(
                "sim_profile: REGRESSION: stats-off event runs stayed {slowdown_pct:.1}% slower than the recorded event row ({:.0} cycles/s); --gate-sched-off={pct}",
                ev.cycles_per_s
            );
            std::process::exit(1);
        }
    }
}
