//! Compares the bytecode simulator engine against the tree-walk oracle on
//! the generated GEMM testbench: same design, same stimulus, both engines
//! run to completion, and the winner is reported in cycles per second.
//!
//! Flags:
//!   --quick   one repetition instead of three
//!   --n=SIZE  GEMM size (power of two, default 16)

use hir_codegen::testbench::{Harness, HarnessArg};
use std::time::Instant;

fn main() {
    let mut reps = 3usize;
    let mut n = 16u64;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            reps = 1;
        } else if let Some(v) = arg.strip_prefix("--n=") {
            n = v.parse().expect("--n=SIZE");
        } else {
            eprintln!("unknown flag {arg} (expected --quick, --n=)");
            std::process::exit(2);
        }
    }

    let nn = (n * n) as usize;
    let mut m = kernels::gemm::hir_gemm(n, 32);
    let (design, _) = kernels::compile_hir(&mut m, true).expect("compile");
    let func = kernels::find_func(&m, kernels::gemm::FUNC);
    let a: Vec<i128> = (0..nn as i128).map(|x| x % 9 - 4).collect();
    let b: Vec<i128> = (0..nn as i128).map(|x| 2 * x % 7 - 3).collect();
    let args = [
        HarnessArg::mem_from(&a),
        HarnessArg::mem_from(&b),
        HarnessArg::zero_mem(nn),
    ];
    let expect = kernels::gemm::reference(n, &a, &b);

    let measure = |engine: verilog::Engine, label: &str| -> f64 {
        let mut best = f64::MAX;
        let mut cycles = 0u64;
        for _ in 0..reps {
            let mut h = Harness::new(&design, &m, func, &args).expect("harness");
            h.set_engine(engine);
            let t0 = Instant::now();
            let report = h.run(1_000_000).expect("run");
            best = best.min(t0.elapsed().as_secs_f64());
            cycles = report.cycles;
            assert_eq!(report.mems[&2], expect, "{label}: wrong GEMM result");
        }
        let rate = cycles as f64 / best;
        println!("{label:<10} {cycles:>8} cycles in {best:>8.4}s  ({rate:>12.0} cycles/s)");
        rate
    };

    {
        let h = Harness::new(&design, &m, func, &args).expect("harness");
        let (na, st, nal, sp, nr) = h.sim().tape_stats();
        println!("assigns {na} (settle tape {st}), always {nal} (step tape {sp}), regs {nr}");
    }
    println!("GEMM N={n} testbench, best of {reps}");
    let bc = measure(verilog::Engine::Bytecode, "bytecode");
    let tw = measure(verilog::Engine::TreeWalk, "tree-walk");
    println!("speedup    {:.1}x", bc / tw);
}
