//! Compares the bytecode simulator engine against the tree-walk oracle on
//! the generated GEMM testbench: same design, same stimulus, both engines
//! run to completion, and the winner is reported in cycles per second. The
//! measurements are also written to `BENCH_sim_profile.json` so CI can
//! archive engine-throughput baselines next to the pass profile.
//!
//! Flags:
//!   --quick     one repetition instead of three
//!   --n=SIZE    GEMM size (power of two, default 16)
//!   --out=PATH  write the JSON somewhere other than the default

use hir_codegen::testbench::{Harness, HarnessArg};
use obs::json::escape;
use std::time::Instant;

const OUT_FILE: &str = "BENCH_sim_profile.json";

struct EngineRun {
    label: &'static str,
    cycles: u64,
    best_ns: u128,
    cycles_per_s: f64,
}

fn main() {
    let mut reps = 3usize;
    let mut n = 16u64;
    let mut out_file = OUT_FILE.to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            reps = 1;
        } else if let Some(v) = arg.strip_prefix("--n=") {
            n = v.parse().expect("--n=SIZE");
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out_file = path.to_string();
        } else {
            eprintln!("unknown flag {arg} (expected --quick, --n=, --out=)");
            std::process::exit(2);
        }
    }

    let nn = (n * n) as usize;
    let mut m = kernels::gemm::hir_gemm(n, 32);
    let (design, _) = kernels::compile_hir(&mut m, true).expect("compile");
    let func = kernels::find_func(&m, kernels::gemm::FUNC);
    let a: Vec<i128> = (0..nn as i128).map(|x| x % 9 - 4).collect();
    let b: Vec<i128> = (0..nn as i128).map(|x| 2 * x % 7 - 3).collect();
    let args = [
        HarnessArg::mem_from(&a),
        HarnessArg::mem_from(&b),
        HarnessArg::zero_mem(nn),
    ];
    let expect = kernels::gemm::reference(n, &a, &b);

    let measure = |engine: verilog::Engine,
                   label: &'static str,
                   telemetry: bool|
     -> (EngineRun, Option<verilog::TelemetryReport>) {
        let mut best = u128::MAX;
        let mut cycles = 0u64;
        let mut telem = None;
        for _ in 0..reps {
            let mut h = Harness::new(&design, &m, func, &args).expect("harness");
            h.set_engine(engine);
            if telemetry {
                h.enable_telemetry(false);
            }
            let t0 = Instant::now();
            let report = h.run(1_000_000).expect("run");
            best = best.min(t0.elapsed().as_nanos());
            cycles = report.cycles;
            assert_eq!(report.mems[&2], expect, "{label}: wrong GEMM result");
            if telemetry {
                telem = h.telemetry_report(None);
            }
        }
        let rate = cycles as f64 / (best as f64 / 1e9);
        println!(
            "{label:<10} {cycles:>8} cycles in {:>8.4}s  ({rate:>12.0} cycles/s)",
            best as f64 / 1e9
        );
        (
            EngineRun {
                label,
                cycles,
                best_ns: best,
                cycles_per_s: rate,
            },
            telem,
        )
    };

    let tape = {
        let h = Harness::new(&design, &m, func, &args).expect("harness");
        let (na, st, nal, sp, nr) = h.sim().tape_stats();
        println!("assigns {na} (settle tape {st}), always {nal} (step tape {sp}), regs {nr}");
        (na, st, nal, sp, nr)
    };
    println!("GEMM N={n} testbench, best of {reps}");
    let (bc, _) = measure(verilog::Engine::Bytecode, "bytecode", false);
    let (tw, _) = measure(verilog::Engine::TreeWalk, "tree-walk", false);
    let (bt, telem) = measure(verilog::Engine::Bytecode, "bc+telem", true);
    let speedup = bc.cycles_per_s / tw.cycles_per_s;
    println!("speedup    {speedup:.1}x");
    // Telemetry slowdown (counters on vs off, same engine): the instrumented
    // interpreter replaces the plain tape loop, so this measures its full cost.
    let overhead_pct = 100.0 * (1.0 - bt.cycles_per_s / bc.cycles_per_s);
    println!("telemetry overhead {overhead_pct:.1}%");
    let telem = telem.expect("telemetry report from instrumented run");
    let overall = telem.overall_quiescence();
    let (worst_name, worst_frac) = telem
        .worst_cone()
        .map(|(name, frac)| (name.to_string(), frac))
        .unwrap_or_default();
    println!("quiescence overall {overall:.3}, worst cone {worst_name} ({worst_frac:.3})");

    let engines: Vec<String> = [&bc, &tw, &bt]
        .iter()
        .map(|r| {
            format!(
                r#"    {{"engine":"{}","cycles":{},"best_ns":{},"cycles_per_s":{:.0}}}"#,
                escape(r.label),
                r.cycles,
                r.best_ns,
                r.cycles_per_s,
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"gemm_n\": {n},\n  \"reps\": {reps},\n  \"tape\": {{\"assigns\":{},\"settle_tape\":{},\"always\":{},\"step_tape\":{},\"regs\":{}}},\n  \"engines\": [\n{}\n  ],\n  \"speedup_bytecode_vs_treewalk\": {:.2},\n  \"telemetry\": {{\"overhead_pct\":{:.1},\"toggle_coverage\":{:.6}}},\n  \"quiescence\": {{\"overall\":{:.6},\"worst_cone\":\"{}\",\"worst_fraction\":{:.6}}}\n}}\n",
        tape.0,
        tape.1,
        tape.2,
        tape.3,
        tape.4,
        engines.join(",\n"),
        speedup,
        overhead_pct,
        telem.toggle_coverage(),
        overall,
        escape(&worst_name),
        worst_frac,
    );
    // Same rule as pass_profile: prove the document parses before writing.
    obs::json::parse(&doc).expect("generated JSON is valid");
    std::fs::write(&out_file, &doc).expect("write profile");
    println!("wrote {out_file}");
}
