//! Ablation study: what each HIR optimization pass contributes.
//!
//! For every benchmark, compiles four configurations — no optimization,
//! full pipeline, and the full pipeline with one pass family knocked out —
//! and reports the resource deltas attributable to each pass (the design
//! choices DESIGN.md calls out).

use ir::{DiagnosticEngine, Module, PassManager};
use synth::Resources;

fn compile_with(m: &mut Module, pm: Option<&mut PassManager>) -> Resources {
    let registry = hir::hir_registry();
    let mut diags = DiagnosticEngine::new();
    ir::verify_module(m, &registry, &mut diags).expect("structural");
    hir_verify::verify_schedule(m, &mut diags).expect("schedule");
    if let Some(pm) = pm {
        pm.run(m, &registry, &mut diags).expect("passes");
    }
    let design =
        hir_codegen::generate_design(m, &hir_codegen::CodegenOptions::default()).expect("codegen");
    let top = design.modules.last().expect("module").name.clone();
    synth::estimate_design(&design, &top, &synth::CostModel::default())
}

fn pipeline_without(skip: &str) -> PassManager {
    let mut pm = PassManager::new();
    pm.add(hir_opt::CanonicalizePass).add(hir_opt::CsePass);
    if skip != "delay-share" {
        pm.add(hir_opt::DelaySharePass::new());
    }
    if skip != "precision" {
        pm.add(hir_opt::PrecisionPass::new());
    }
    if skip != "port-demote" {
        pm.add(hir_opt::PortDemotePass::new());
    }
    pm.add(hir_opt::CanonicalizePass).add(hir_opt::CsePass);
    pm
}

fn main() {
    println!("## Ablation: per-pass resource contributions\n");
    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "Benchmark", "no-opt", "full", "-precision", "-delay-share", "-port-demote"
    );
    println!("{}", "-".repeat(90));
    for b in kernels::compiled_benchmarks() {
        let fmt = |r: Resources| format!("{}/{}", r.lut, r.ff);
        let mut m = (b.build_hir)();
        let no_opt = compile_with(&mut m, None);
        let mut m = (b.build_hir)();
        let full = compile_with(&mut m, Some(&mut pipeline_without("none")));
        let mut m = (b.build_hir)();
        let no_prec = compile_with(&mut m, Some(&mut pipeline_without("precision")));
        let mut m = (b.build_hir)();
        let no_share = compile_with(&mut m, Some(&mut pipeline_without("delay-share")));
        let mut m = (b.build_hir)();
        let no_demote = compile_with(&mut m, Some(&mut pipeline_without("port-demote")));
        println!(
            "{:<18} {:>12} {:>12} {:>14} {:>14} {:>14}",
            b.name,
            fmt(no_opt),
            fmt(full),
            fmt(no_prec),
            fmt(no_share),
            fmt(no_demote)
        );
    }
    println!("\ncells are LUT/FF; a column above 'full' shows what that pass was saving.");
}
