//! Regenerates the paper's **Figure 2**: the pipeline-imbalance diagnostic
//! for the multiply-accumulate with a 3-stage multiplier against a
//! 2-cycle-delayed addend.

fn main() {
    let m = kernels::errors::figure2_mac(3);
    println!("=== Figure 2a: the design (paper-style pretty print) ===\n");
    println!("{}", hir::pretty_module(&m));
    println!("=== Figure 2b: diagnostic reported by the schedule verifier ===\n");
    let mut diags = ir::DiagnosticEngine::new();
    let _ = hir_verify::verify_schedule(&m, &mut diags);
    println!("{}", diags.render());
    println!("=== With the matching 2-stage multiplier the design verifies ===");
    let fixed = kernels::errors::figure2_mac(2);
    let mut diags = ir::DiagnosticEngine::new();
    assert!(hir_verify::verify_schedule(&fixed, &mut diags).is_ok());
    println!("ok: adder inputs arrive in the same cycle");
}
