//! Regenerates the paper's **Table 4**: resource usage of the matrix
//! transpose across four configurations. The paper reports
//! (LUT, FF): Vivado HLS (41, 92), HLS manual-opt (7, 51),
//! HIR no-opt (32, 72), HIR auto-opt (8, 18).

use bench::{render_resource_table, ResourceRow};
use kernels::{sizes, transpose};

fn main() {
    let model = synth::CostModel::default();
    let n = sizes::TRANSPOSE_N;
    let mut rows = Vec::new();

    // Vivado HLS stand-in, default (32-bit int counters).
    let c = hls::compile(
        &transpose::hls_transpose(n, false),
        &hls::SchedOptions::default(),
    )
    .expect("HLS compile");
    rows.push(ResourceRow {
        label: "Vivado HLS (baseline)".into(),
        r: synth::estimate_design(&c.design, &c.top, &model),
    });

    // Vivado HLS stand-in, manually width-optimized source.
    let c = hls::compile(
        &transpose::hls_transpose(n, true),
        &hls::SchedOptions::default(),
    )
    .expect("HLS compile");
    rows.push(ResourceRow {
        label: "Vivado HLS (manual opt)".into(),
        r: synth::estimate_design(&c.design, &c.top, &model),
    });

    // HIR without optimization passes.
    let mut m = transpose::hir_transpose(n, 32);
    let (d, _) = kernels::compile_hir(&mut m, false).expect("HIR compile");
    rows.push(ResourceRow {
        label: "HIR (no opt)".into(),
        r: synth::estimate_design(&d, &kernels::hir_top(transpose::FUNC), &model),
    });

    // HIR with the full pass pipeline (precision opt narrows everything).
    let mut m = transpose::hir_transpose(n, 32);
    let (d, _) = kernels::compile_hir(&mut m, true).expect("HIR compile");
    rows.push(ResourceRow {
        label: "HIR (auto opt)".into(),
        r: synth::estimate_design(&d, &kernels::hir_top(transpose::FUNC), &model),
    });

    println!(
        "{}",
        render_resource_table("Table 4: Matrix transpose resource usage", &rows)
    );
    println!("Paper (LUT, FF): HLS (41, 92) | HLS manual (7, 51) | HIR no-opt (32, 72) | HIR auto (8, 18)");
    println!(
        "Expected shape: manual/auto optimization sharply cuts FFs; HIR auto-opt is the leanest."
    );
}
