//! Regenerates the paper's **Figure 3**: how the elements of
//! `!hir.memref<3*2*i32, packing=[1]>` (dimension 0 distributed,
//! dimension 1 packed) spread across banks.

use hir::types::{Dim, MemKind, MemrefInfo, Port};

fn main() {
    let m = MemrefInfo::new(
        vec![Dim::Distributed(3), Dim::Packed(2)],
        ir::Type::int(32),
        Port::Read,
        MemKind::BlockRam,
    );
    println!("A is of type {m}\n");
    println!(
        "{} banks, {} elements per bank\n",
        m.num_banks(),
        m.bank_size()
    );
    for bank in 0..m.num_banks() {
        let mut cells = Vec::new();
        for addr in 0..m.bank_size() {
            for i in 0..3u64 {
                for j in 0..2u64 {
                    if m.bank_index(&[i, j]) == bank && m.linear_index(&[i, j]) == addr {
                        cells.push(format!("A[{i}][{j}]"));
                    }
                }
            }
        }
        println!("bank {bank}: {}", cells.join("  "));
    }
    println!("\nElements sharing a distributed index land in the same bank (paper Fig. 3).");
}
