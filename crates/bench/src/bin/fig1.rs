//! Regenerates the paper's **Figure 1**: the schedule-verifier diagnostic
//! for the array-add design whose write consumes a stale induction
//! variable.

fn main() {
    let m = kernels::errors::figure1_array_add(false);
    println!("=== Figure 1a: the design (paper-style pretty print) ===\n");
    println!("{}", hir::pretty_module(&m));
    println!("=== Figure 1b: diagnostic reported by the schedule verifier ===\n");
    let mut diags = ir::DiagnosticEngine::new();
    let _ = hir_verify::verify_schedule(&m, &mut diags);
    println!("{}", diags.render());
    println!("=== The corrected design verifies cleanly ===");
    let fixed = kernels::errors::figure1_array_add(true);
    let mut diags = ir::DiagnosticEngine::new();
    assert!(hir_verify::verify_schedule(&fixed, &mut diags).is_ok());
    println!("ok: no schedule errors after delaying the address by one cycle");
}
