//! Parameter sweep: how compile time and resources scale with design size
//! for both compilers (the asymptotic claim behind Table 6 — scheduling
//! searches grow faster than schedule-is-given code generation).

use bench::median_time;

fn main() {
    if cfg!(debug_assertions) {
        eprintln!("note: run with --release for representative timings\n");
    }
    println!("## GEMM size sweep (N x N PE grid)\n");
    println!(
        "{:>3}  {:>12} {:>12} {:>8}  {:>10} {:>10} {:>6}",
        "N", "HIR compile", "HLS compile", "ratio", "LUT(HIR)", "FF(HIR)", "DSP"
    );
    for n in [2u64, 4, 8, 16] {
        let hir_time = median_time(3, || {
            let mut m = kernels::gemm::hir_gemm(n, 32);
            kernels::compile_hir(&mut m, false).expect("HIR")
        });
        let hls_time = median_time(3, || {
            hls::compile(
                &kernels::gemm::hls_gemm(n, true),
                &hls::SchedOptions::default(),
            )
            .expect("HLS")
        });
        let mut m = kernels::gemm::hir_gemm(n, 32);
        let (d, _) = kernels::compile_hir(&mut m, true).expect("HIR");
        let r = synth::estimate_design(
            &d,
            &kernels::hir_top(kernels::gemm::FUNC),
            &synth::CostModel::default(),
        );
        println!(
            "{:>3}  {:>12} {:>12} {:>7.1}x  {:>10} {:>10} {:>6}",
            n,
            format!("{:.2} ms", hir_time.as_secs_f64() * 1e3),
            format!("{:.2} ms", hls_time.as_secs_f64() * 1e3),
            hls_time.as_secs_f64() / hir_time.as_secs_f64(),
            r.lut,
            r.ff,
            r.dsp
        );
    }

    println!("\n## Stencil length sweep\n");
    println!(
        "{:>5}  {:>12} {:>12} {:>8}",
        "N", "HIR compile", "HLS compile", "ratio"
    );
    for n in [16u64, 64, 256, 1024] {
        let hir_time = median_time(3, || {
            let mut m = kernels::stencil::hir_stencil(n, 32);
            kernels::compile_hir(&mut m, false).expect("HIR")
        });
        let hls_time = median_time(3, || {
            hls::compile(
                &kernels::stencil::hls_stencil(n, true),
                &hls::SchedOptions::default(),
            )
            .expect("HLS")
        });
        println!(
            "{:>5}  {:>12} {:>12} {:>7.1}x",
            n,
            format!("{:.3} ms", hir_time.as_secs_f64() * 1e3),
            format!("{:.3} ms", hls_time.as_secs_f64() * 1e3),
            hls_time.as_secs_f64() / hir_time.as_secs_f64(),
        );
    }
    println!("\nDSPs scale exactly as 3*N^2 (the PE grid). Compile time grows with design");
    println!("size in both flows; the scheduling overhead is a modest factor here because");
    println!("the baseline shares HIR's backend and lacks a commercial frontend's fixed");
    println!("costs — see EXPERIMENTS.md, Table 6, for the full caveat.");
}
