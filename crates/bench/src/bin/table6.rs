//! Regenerates the paper's **Table 6**: code-generation time of the HIR
//! compiler versus the HLS baseline, and the speedup. The paper reports
//! speedups of 333x-2166x against Vivado HLS 2019.1; our baseline is a
//! from-scratch scheduler rather than a full commercial frontend, so the
//! measured ratios are smaller but the shape — HIR orders of magnitude
//! faster, the smallest ratio on the largest design (GEMM) — holds.

use bench::median_time;
use kernels::compiled_benchmarks;

fn main() {
    if cfg!(debug_assertions) {
        eprintln!("note: run with --release for representative timings\n");
    }
    println!("## Table 6: code-generation times (median of 5 runs)\n");
    println!("The HIR column measures the paper's quantity: turning an already");
    println!("hand-scheduled design into Verilog (verification + code generation).");
    println!("The HLS column includes the baseline's scheduling searches.\n");
    println!(
        "{:<18}  {:>12}  {:>12}  {:>9}",
        "Benchmark", "HIR", "HLS baseline", "Speedup"
    );
    println!("{}", "-".repeat(57));
    for b in compiled_benchmarks() {
        let hir_time = median_time(5, || {
            let mut m = (b.build_hir)();
            kernels::compile_hir(&mut m, false).expect("HIR compile")
        });
        let hls_time = median_time(5, || {
            hls::compile(&(b.build_hls)(), &hls::SchedOptions::default()).expect("HLS compile")
        });
        let speedup = hls_time.as_secs_f64() / hir_time.as_secs_f64();
        println!(
            "{:<18}  {:>12}  {:>12}  {:>8.1}x",
            b.name,
            format!("{:.3} ms", hir_time.as_secs_f64() * 1e3),
            format!("{:.3} ms", hls_time.as_secs_f64() * 1e3),
            speedup
        );
    }
    println!("\nPaper: transpose 2166x, stencil 1142x, histogram 1857x, GEMM 333x, conv 1076x");
    println!("(against the full Vivado HLS 2019.1 frontend).");
}
