//! # `bench` — the paper-evaluation harness
//!
//! One binary per table/figure of the paper's evaluation section:
//!
//! * `table4` — matrix-transpose resource usage across the four
//!   configurations (HLS default, HLS manual-opt, HIR no-opt, HIR auto-opt);
//! * `table5` — LUT/FF/DSP/BRAM for all six benchmarks, HLS vs HIR (and the
//!   hand-written Verilog FIFO baseline);
//! * `table6` — code-generation time, HIR vs the HLS baseline;
//! * `fig1` / `fig2` — the schedule-verifier diagnostics;
//! * `fig3` — memory banking layout of a distributed-dimension memref.
//!
//! Criterion benches (`cargo bench`) measure the same compile-time quantity
//! with statistical rigor.

use std::time::{Duration, Instant};
use synth::Resources;

/// A resource row of Tables 4/5.
#[derive(Clone, Debug)]
pub struct ResourceRow {
    pub label: String,
    pub r: Resources,
}

/// Render rows as a paper-style table.
pub fn render_resource_table(title: &str, rows: &[ResourceRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(10)
        .max(10);
    out.push_str(&format!(
        "{:<w$}  {:>8}  {:>8}  {:>6}  {:>6}\n",
        "Design", "LUT", "FF", "DSP", "BRAM"
    ));
    out.push_str(&format!("{}\n", "-".repeat(w + 34)));
    for row in rows {
        out.push_str(&format!(
            "{:<w$}  {:>8}  {:>8}  {:>6}  {:>6}\n",
            row.label, row.r.lut, row.r.ff, row.r.dsp, row.r.bram
        ));
    }
    out
}

/// Median wall time of `f` over `runs` invocations (after one warmup).
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    let _ = f(); // warmup
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let s = Instant::now();
            let _ = f();
            s.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Compile a benchmark's HIR form (optimized) and estimate resources.
///
/// # Panics
/// Panics on compile errors (benchmarks are expected to be valid).
pub fn hir_resources(b: &kernels::Benchmark) -> Resources {
    let mut m = (b.build_hir)();
    let (design, _) = kernels::compile_hir(&mut m, true).expect("HIR compile");
    synth::estimate_design(
        &design,
        &kernels::hir_top(b.hir_func),
        &synth::CostModel::default(),
    )
}

/// Compile a benchmark's HLS form and estimate resources.
///
/// # Panics
/// Panics on compile errors.
pub fn hls_resources(b: &kernels::Benchmark) -> Resources {
    let k = (b.build_hls)();
    let c = hls::compile(&k, &hls::SchedOptions::default()).expect("HLS compile");
    synth::estimate_design(&c.design, &c.top, &synth::CostModel::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let rows = vec![ResourceRow {
            label: "X".into(),
            r: Resources {
                lut: 1,
                ff: 2,
                dsp: 3,
                bram: 4,
            },
        }];
        let t = render_resource_table("T", &rows);
        assert!(t.contains("LUT"));
        assert!(t.contains('X'));
    }

    #[test]
    fn median_is_stable() {
        let d = median_time(5, || std::hint::black_box(40 + 2));
        assert!(d < Duration::from_millis(50));
    }
}
