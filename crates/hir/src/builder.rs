//! `HirBuilder`: an ergonomic API for constructing HIR designs, used by the
//! paper-listing kernels, the examples and the tests.
//!
//! The builder owns the [`ir::Module`] while building and hands it back via
//! [`HirBuilder::finish`].
//!
//! # Examples
//!
//! The paper's Listing 1 (matrix transpose) reduces to:
//!
//! ```
//! use hir::{HirBuilder, types::{MemrefInfo, Port, MemKind}};
//! use ir::Type;
//!
//! let mut hb = HirBuilder::new();
//! let a = MemrefInfo::packed(&[16, 16], Type::int(32), Port::Read, MemKind::BlockRam);
//! let c = a.with_port(Port::Write);
//! let f = hb.func("transpose", &[("Ai", a.to_type()), ("Co", c.to_type())], &[]);
//! let t = f.time_var(hb.module());
//! let args = f.args(hb.module());
//! let (c0, c16, c1) = (hb.const_val(0), hb.const_val(16), hb.const_val(1));
//! let i_loop = hb.for_loop(c0, c16, c1, t, 1, Type::int(32));
//! hb.in_loop(i_loop, |hb, i, ti| {
//!     let j_loop = hb.for_loop(c0, c16, c1, ti, 1, Type::int(32));
//!     hb.in_loop(j_loop, |hb, j, tj| {
//!         let v = hb.mem_read(args[0], &[i, j], tj, 0);
//!         let j1 = hb.delay(j, 1, tj, 0);
//!         hb.mem_write(v, args[1], &[j1, i], tj, 1);
//!         hb.yield_at(tj, 1);
//!     });
//!     let tf = hir::ops::ForOp::wrap(hb.module(), j_loop.id()).unwrap().result_time(hb.module());
//!     hb.yield_at(tf, 1);
//! });
//! hb.return_(&[]);
//! let module = hb.finish();
//! assert_eq!(module.top_ops().len(), 1);
//! ```

use crate::dialect::{attrkey, opname, CmpPredicate};
use crate::ops::{ForOp, FuncOp, IfOp, UnrollForOp};
use crate::types::{const_type, is_const, time_type, Dim, MemKind, MemrefInfo, Port};
use ir::{AttrMap, Attribute, BlockId, Location, Module, OpId, SymbolTable, Type, ValueId};
use std::collections::HashMap;

/// Builder for HIR modules. See module docs for an example.
#[derive(Debug)]
pub struct HirBuilder {
    module: Module,
    /// Insertion stack: innermost block last.
    stack: Vec<BlockId>,
    /// Cached `hir.constant` values for the current function.
    const_cache: HashMap<i128, ValueId>,
    /// Entry block of the current function: constants are hoisted here so
    /// they dominate every use in nested regions.
    entry: Option<BlockId>,
    /// Insertion index for the next hoisted constant.
    const_pos: usize,
    /// Location applied to subsequently created ops.
    loc: Location,
}

impl HirBuilder {
    /// Start a fresh module.
    pub fn new() -> Self {
        HirBuilder {
            module: Module::new(),
            stack: Vec::new(),
            const_cache: HashMap::new(),
            entry: None,
            const_pos: 0,
            loc: Location::unknown(),
        }
    }

    /// Continue building into an existing module.
    pub fn from_module(module: Module) -> Self {
        HirBuilder {
            module,
            stack: Vec::new(),
            const_cache: HashMap::new(),
            entry: None,
            const_pos: 0,
            loc: Location::unknown(),
        }
    }

    /// Read access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Finish building and take the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Set the source location applied to subsequently created ops.
    pub fn set_loc(&mut self, loc: Location) {
        self.loc = loc;
    }

    fn block(&self) -> BlockId {
        *self
            .stack
            .last()
            .expect("no insertion block: call func() first")
    }

    fn push_op(
        &mut self,
        name: &str,
        operands: Vec<ValueId>,
        results: Vec<Type>,
        attrs: AttrMap,
    ) -> OpId {
        let op = self
            .module
            .create_op(name, operands, results, attrs, self.loc.clone());
        self.module.append_op(self.block(), op);
        op
    }

    // ------------------------------------------------------------- functions

    /// Begin a function; subsequent ops go into its body until the next
    /// `func`/`extern_func` call. Returns the function handle.
    pub fn func(&mut self, name: &str, args: &[(&str, Type)], result_delays: &[i64]) -> FuncOp {
        let mut attrs = AttrMap::new();
        attrs.insert(ir::SYM_NAME.into(), Attribute::string(name));
        attrs.insert(
            attrkey::ARG_NAMES.into(),
            Attribute::Array(args.iter().map(|(n, _)| Attribute::string(*n)).collect()),
        );
        if !result_delays.is_empty() {
            attrs.insert(
                attrkey::RESULT_DELAYS.into(),
                Attribute::Array(
                    result_delays
                        .iter()
                        .map(|&d| Attribute::index(d as i128))
                        .collect(),
                ),
            );
        }
        let f = self
            .module
            .create_op(opname::FUNC, vec![], vec![], attrs, self.loc.clone());
        self.module.push_top(f);
        let region = self.module.add_region(f);
        let mut arg_types: Vec<Type> = args.iter().map(|(_, t)| t.clone()).collect();
        arg_types.push(time_type());
        let entry = self.module.add_block(region, arg_types);
        self.stack.clear();
        self.stack.push(entry);
        self.const_cache.clear();
        self.entry = Some(entry);
        self.const_pos = 0;
        FuncOp(f)
    }

    /// Declare an external (blackbox Verilog) function.
    pub fn extern_func(
        &mut self,
        name: &str,
        arg_types: &[Type],
        result_types: &[Type],
        result_delays: &[i64],
    ) -> FuncOp {
        assert_eq!(
            result_types.len(),
            result_delays.len(),
            "one delay per result"
        );
        let mut attrs = AttrMap::new();
        attrs.insert(ir::SYM_NAME.into(), Attribute::string(name));
        attrs.insert(attrkey::EXTERNAL.into(), Attribute::Unit);
        attrs.insert(
            attrkey::ARG_TYPES.into(),
            Attribute::Array(
                arg_types
                    .iter()
                    .map(|t| Attribute::Type(t.clone()))
                    .collect(),
            ),
        );
        attrs.insert(
            attrkey::RESULT_TYPES.into(),
            Attribute::Array(
                result_types
                    .iter()
                    .map(|t| Attribute::Type(t.clone()))
                    .collect(),
            ),
        );
        attrs.insert(
            attrkey::RESULT_DELAYS.into(),
            Attribute::Array(
                result_delays
                    .iter()
                    .map(|&d| Attribute::index(d as i128))
                    .collect(),
            ),
        );
        let f = self
            .module
            .create_op(opname::FUNC, vec![], vec![], attrs, self.loc.clone());
        self.module.push_top(f);
        FuncOp(f)
    }

    /// Terminate the current function body.
    pub fn return_(&mut self, values: &[ValueId]) {
        self.push_op(opname::RETURN, values.to_vec(), vec![], AttrMap::new());
    }

    // ------------------------------------------------------------- constants

    /// A `!hir.const` constant (cached per function and hoisted to the
    /// entry block so it dominates uses in every nested region).
    pub fn const_val(&mut self, v: i64) -> ValueId {
        if let Some(&cached) = self.const_cache.get(&(v as i128)) {
            return cached;
        }
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::VALUE.into(), Attribute::index(v as i128));
        let op = self.module.create_op(
            opname::CONSTANT,
            vec![],
            vec![const_type()],
            attrs,
            self.loc.clone(),
        );
        let entry = self.entry.expect("no function open: call func() first");
        self.module.insert_op(entry, self.const_pos, op);
        self.const_pos += 1;
        let val = self.module.op(op).results()[0];
        self.const_cache.insert(v as i128, val);
        val
    }

    /// A typed integer constant (e.g. an `i32` literal for the datapath).
    pub fn typed_const(&mut self, v: i64, ty: Type) -> ValueId {
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::VALUE.into(), Attribute::Int(v as i128, ty.clone()));
        let op = self.push_op(opname::CONSTANT, vec![], vec![ty], attrs);
        self.module.op(op).results()[0]
    }

    // --------------------------------------------------------------- compute

    fn binary_result_type(&self, a: ValueId, b: ValueId) -> Type {
        let ta = self.module.value_type(a);
        let tb = self.module.value_type(b);
        match (is_const(&ta), is_const(&tb)) {
            (true, true) => const_type(),
            (true, false) => tb,
            (false, true) => ta,
            (false, false) => {
                if ta.is_float() {
                    assert_eq!(ta, tb, "float binary op operands must match");
                    return ta;
                }
                let wa = ta.int_width().expect("binary op on non-integer");
                let wb = tb.int_width().expect("binary op on non-integer");
                if wa >= wb {
                    ta
                } else {
                    tb
                }
            }
        }
    }

    fn binary(&mut self, name: &str, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.binary_result_type(a, b);
        let op = self.push_op(name, vec![a, b], vec![ty], AttrMap::new());
        self.module.op(op).results()[0]
    }

    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(opname::ADD, a, b)
    }
    pub fn sub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(opname::SUB, a, b)
    }
    pub fn mult(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(opname::MULT, a, b)
    }
    pub fn and(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(opname::AND, a, b)
    }
    pub fn or(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(opname::OR, a, b)
    }
    pub fn xor(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(opname::XOR, a, b)
    }
    pub fn shl(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(opname::SHL, a, b)
    }
    pub fn shr(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(opname::SHR, a, b)
    }

    pub fn not(&mut self, a: ValueId) -> ValueId {
        let ty = self.module.value_type(a);
        let op = self.push_op(opname::NOT, vec![a], vec![ty], AttrMap::new());
        self.module.op(op).results()[0]
    }

    pub fn cmp(&mut self, pred: CmpPredicate, a: ValueId, b: ValueId) -> ValueId {
        let mut attrs = AttrMap::new();
        attrs.insert(
            attrkey::PREDICATE.into(),
            Attribute::string(pred.mnemonic()),
        );
        let op = self.push_op(opname::CMP, vec![a, b], vec![Type::i1()], attrs);
        self.module.op(op).results()[0]
    }

    pub fn select(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.module.value_type(a);
        let op = self.push_op(opname::SELECT, vec![cond, a, b], vec![ty], AttrMap::new());
        self.module.op(op).results()[0]
    }

    pub fn trunc(&mut self, v: ValueId, ty: Type) -> ValueId {
        let op = self.push_op(opname::TRUNC, vec![v], vec![ty], AttrMap::new());
        self.module.op(op).results()[0]
    }

    pub fn zext(&mut self, v: ValueId, ty: Type) -> ValueId {
        let op = self.push_op(opname::ZEXT, vec![v], vec![ty], AttrMap::new());
        self.module.op(op).results()[0]
    }

    pub fn sext(&mut self, v: ValueId, ty: Type) -> ValueId {
        let op = self.push_op(opname::SEXT, vec![v], vec![ty], AttrMap::new());
        self.module.op(op).results()[0]
    }

    pub fn slice(&mut self, v: ValueId, hi: u32, lo: u32) -> ValueId {
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::HI.into(), Attribute::index(hi as i128));
        attrs.insert(attrkey::LO.into(), Attribute::index(lo as i128));
        let op = self.push_op(opname::SLICE, vec![v], vec![Type::int(hi - lo + 1)], attrs);
        self.module.op(op).results()[0]
    }

    // -------------------------------------------------------------- schedule

    /// `hir.delay %v by <by> at %t offset <offset>`.
    pub fn delay(&mut self, v: ValueId, by: i64, t: ValueId, offset: i64) -> ValueId {
        let ty = self.module.value_type(v);
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::BY.into(), Attribute::index(by as i128));
        attrs.insert(attrkey::OFFSET.into(), Attribute::index(offset as i128));
        let op = self.push_op(opname::DELAY, vec![v, t], vec![ty], attrs);
        self.module.op(op).results()[0]
    }

    // ---------------------------------------------------------------- memory

    /// Allocate a tensor with the given dims/elem/kind, one result per port.
    pub fn alloc(
        &mut self,
        dims: &[Dim],
        elem: Type,
        kind: MemKind,
        ports: &[Port],
    ) -> Vec<ValueId> {
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::KIND.into(), Attribute::string(kind.mnemonic()));
        let types: Vec<Type> = ports
            .iter()
            .map(|&p| MemrefInfo::new(dims.to_vec(), elem.clone(), p, kind).to_type())
            .collect();
        let op = self.push_op(opname::ALLOC, vec![], types, attrs);
        self.module.op(op).results().to_vec()
    }

    /// Convenience: a 1-d or n-d fully packed read+write pair.
    pub fn alloc_rw(&mut self, shape: &[u64], elem: Type, kind: MemKind) -> (ValueId, ValueId) {
        let dims: Vec<Dim> = shape.iter().map(|&n| Dim::Packed(n)).collect();
        let ports = self.alloc(&dims, elem, kind, &[Port::Read, Port::Write]);
        (ports[0], ports[1])
    }

    /// `hir.mem_read %mem[indices] at %t offset <offset>`.
    pub fn mem_read(
        &mut self,
        mem: ValueId,
        indices: &[ValueId],
        t: ValueId,
        offset: i64,
    ) -> ValueId {
        let info = MemrefInfo::from_type(&self.module.value_type(mem)).expect("memref operand");
        let mut operands = vec![mem];
        operands.extend_from_slice(indices);
        operands.push(t);
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::OFFSET.into(), Attribute::index(offset as i128));
        let op = self.push_op(opname::MEM_READ, operands, vec![info.elem], attrs);
        self.module.op(op).results()[0]
    }

    /// `hir.mem_write %v to %mem[indices] at %t offset <offset>`.
    pub fn mem_write(
        &mut self,
        v: ValueId,
        mem: ValueId,
        indices: &[ValueId],
        t: ValueId,
        offset: i64,
    ) {
        let mut operands = vec![v, mem];
        operands.extend_from_slice(indices);
        operands.push(t);
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::OFFSET.into(), Attribute::index(offset as i128));
        self.push_op(opname::MEM_WRITE, operands, vec![], attrs);
    }

    // --------------------------------------------------------------- control

    /// Create a `hir.for` loop. Populate the body with [`HirBuilder::in_loop`].
    pub fn for_loop(
        &mut self,
        lb: ValueId,
        ub: ValueId,
        step: ValueId,
        t: ValueId,
        offset: i64,
        iv_type: Type,
    ) -> ForOp {
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::OFFSET.into(), Attribute::index(offset as i128));
        let op = self.push_op(opname::FOR, vec![lb, ub, step, t], vec![time_type()], attrs);
        let region = self.module.add_region(op);
        self.module.add_block(region, vec![iv_type, time_type()]);
        ForOp(op)
    }

    /// Build the body of a `hir.for`: the closure receives `(builder,
    /// induction var, iteration time)` and must call
    /// [`HirBuilder::yield_at`] exactly once (anywhere in the body — the
    /// paper's §4.2: textual order carries no meaning).
    pub fn in_loop(&mut self, lp: ForOp, f: impl FnOnce(&mut Self, ValueId, ValueId)) {
        let body = lp.body(&self.module);
        let iv = lp.induction_var(&self.module);
        let ti = lp.iter_time(&self.module);
        self.stack.push(body);
        f(self, iv, ti);
        self.stack.pop();
    }

    /// Create a `hir.unroll_for` loop with static bounds.
    pub fn unroll_for(
        &mut self,
        lb: i64,
        ub: i64,
        step: i64,
        t: ValueId,
        offset: i64,
    ) -> UnrollForOp {
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::LB.into(), Attribute::index(lb as i128));
        attrs.insert(attrkey::UB.into(), Attribute::index(ub as i128));
        attrs.insert(attrkey::STEP.into(), Attribute::index(step as i128));
        attrs.insert(attrkey::OFFSET.into(), Attribute::index(offset as i128));
        let op = self.push_op(opname::UNROLL_FOR, vec![t], vec![time_type()], attrs);
        let region = self.module.add_region(op);
        self.module
            .add_block(region, vec![const_type(), time_type()]);
        UnrollForOp(op)
    }

    /// Build the body of a `hir.unroll_for`.
    pub fn in_unroll(&mut self, lp: UnrollForOp, f: impl FnOnce(&mut Self, ValueId, ValueId)) {
        let body = lp.body(&self.module);
        let iv = lp.induction_var(&self.module);
        let ti = lp.iter_time(&self.module);
        self.stack.push(body);
        f(self, iv, ti);
        self.stack.pop();
    }

    /// `hir.yield at %t offset <offset>`: schedule the next iteration.
    pub fn yield_at(&mut self, t: ValueId, offset: i64) {
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::OFFSET.into(), Attribute::index(offset as i128));
        self.push_op(opname::YIELD, vec![t], vec![], attrs);
    }

    /// `hir.call @callee(args) at %t offset <offset>`. Result types are
    /// resolved from the callee's signature (which must already be defined).
    pub fn call(
        &mut self,
        callee: &str,
        args: &[ValueId],
        t: ValueId,
        offset: i64,
    ) -> Vec<ValueId> {
        let table = SymbolTable::build(&self.module);
        let callee_op = table
            .lookup(callee)
            .unwrap_or_else(|| panic!("call to undefined function '@{callee}'"));
        let f = FuncOp::wrap(&self.module, callee_op).expect("callee is not a hir.func");
        let result_types = f.result_types(&self.module);
        let mut operands = args.to_vec();
        operands.push(t);
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::CALLEE.into(), Attribute::symbol(callee));
        attrs.insert(attrkey::OFFSET.into(), Attribute::index(offset as i128));
        let op = self.push_op(opname::CALL, operands, result_types, attrs);
        self.module.op(op).results().to_vec()
    }

    /// Create a `hir.if`; populate branches with [`HirBuilder::in_then`] /
    /// [`HirBuilder::in_else`].
    pub fn if_op(&mut self, cond: ValueId, t: ValueId, offset: i64, with_else: bool) -> IfOp {
        let mut attrs = AttrMap::new();
        attrs.insert(attrkey::OFFSET.into(), Attribute::index(offset as i128));
        let op = self.push_op(opname::IF, vec![cond, t], vec![], attrs);
        let then_region = self.module.add_region(op);
        self.module.add_block(then_region, vec![]);
        if with_else {
            let else_region = self.module.add_region(op);
            self.module.add_block(else_region, vec![]);
        }
        IfOp(op)
    }

    /// Build the then-branch of an `hir.if`.
    pub fn in_then(&mut self, ifop: IfOp, f: impl FnOnce(&mut Self)) {
        let block = ifop.then_block(&self.module);
        self.stack.push(block);
        f(self);
        self.stack.pop();
    }

    /// Build the else-branch of an `hir.if`.
    ///
    /// # Panics
    /// Panics if the op was created without an else region.
    pub fn in_else(&mut self, ifop: IfOp, f: impl FnOnce(&mut Self)) {
        let block = ifop
            .else_block(&self.module)
            .expect("if has no else region");
        self.stack.push(block);
        f(self);
        self.stack.pop();
    }

    /// Add an else region to an `hir.if` created without one.
    ///
    /// # Panics
    /// Panics if the op already has an else region.
    pub fn add_else_block(&mut self, ifop: IfOp) -> BlockId {
        assert!(
            ifop.else_block(&self.module).is_none(),
            "hir.if already has an else region"
        );
        let region = self.module.add_region(ifop.id());
        self.module.add_block(region, vec![])
    }

    // ------------------------------------------------------------ low level

    /// Push an explicit insertion block (parser/tooling use; pair with
    /// [`HirBuilder::pop_block`]).
    pub fn push_block(&mut self, block: BlockId) {
        self.stack.push(block);
    }

    /// Pop the innermost insertion block.
    ///
    /// # Panics
    /// Panics when the stack would become unbalanced (no function open).
    pub fn pop_block(&mut self) {
        assert!(self.stack.len() > 1, "cannot pop the function body block");
        self.stack.pop();
    }

    /// Create an arbitrary HIR op at the insertion point and return its
    /// first result. Escape hatch for parsers and generic tooling.
    ///
    /// # Panics
    /// Panics if the op produces no results.
    pub fn raw_op(
        &mut self,
        name: &str,
        operands: Vec<ValueId>,
        results: Vec<Type>,
        attrs: AttrMap,
    ) -> ValueId {
        let op = self.push_op(name, operands, results, attrs);
        self.module.op(op).results()[0]
    }
}

impl Default for HirBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::hir_registry;
    use ir::DiagnosticEngine;

    #[test]
    fn constants_are_cached_per_function() {
        let mut hb = HirBuilder::new();
        hb.func("a", &[], &[]);
        let c1 = hb.const_val(5);
        let c2 = hb.const_val(5);
        assert_eq!(c1, c2);
        hb.return_(&[]);
        hb.func("b", &[], &[]);
        let c3 = hb.const_val(5);
        assert_ne!(c1, c3, "cache must reset per function");
        hb.return_(&[]);
    }

    #[test]
    fn built_transpose_verifies() {
        // The doc-test example, checked against the structural verifier.
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[16, 16], Type::int(32), Port::Read, MemKind::BlockRam);
        let c = a.with_port(Port::Write);
        let f = hb.func(
            "transpose",
            &[("Ai", a.to_type()), ("Co", c.to_type())],
            &[],
        );
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c16, c1) = (hb.const_val(0), hb.const_val(16), hb.const_val(1));
        let i_loop = hb.for_loop(c0, c16, c1, t, 1, Type::int(32));
        hb.in_loop(i_loop, |hb, i, ti| {
            let j_loop = hb.for_loop(c0, c16, c1, ti, 1, Type::int(32));
            hb.in_loop(j_loop, |hb, j, tj| {
                let v = hb.mem_read(args[0], &[i, j], tj, 0);
                let j1 = hb.delay(j, 1, tj, 0);
                hb.mem_write(v, args[1], &[j1, i], tj, 1);
                hb.yield_at(tj, 1);
            });
            let tf = j_loop.result_time(hb.module());
            hb.yield_at(tf, 1);
        });
        hb.return_(&[]);
        let module = hb.finish();

        let reg = hir_registry();
        let mut diags = DiagnosticEngine::new();
        assert!(
            ir::verify_module(&module, &reg, &mut diags).is_ok(),
            "verifier errors:\n{}",
            diags.render()
        );
    }

    #[test]
    fn call_resolves_result_types() {
        let mut hb = HirBuilder::new();
        hb.extern_func(
            "mult2stage",
            &[Type::int(32), Type::int(32)],
            &[Type::int(32)],
            &[2],
        );
        let f = hb.func("mac", &[("a", Type::int(32)), ("b", Type::int(32))], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let results = hb.call("mult2stage", &[args[0], args[1]], t, 0);
        assert_eq!(results.len(), 1);
        assert_eq!(hb.module().value_type(results[0]), Type::int(32));
        hb.return_(&[]);
    }

    #[test]
    #[should_panic(expected = "undefined function")]
    fn call_to_unknown_function_panics() {
        let mut hb = HirBuilder::new();
        let f = hb.func("f", &[], &[]);
        let t = f.time_var(hb.module());
        hb.call("nope", &[], t, 0);
    }

    #[test]
    fn unroll_for_iterations() {
        let mut hb = HirBuilder::new();
        let f = hb.func("u", &[], &[]);
        let t = f.time_var(hb.module());
        let lp = hb.unroll_for(0, 8, 2, t, 0);
        hb.in_unroll(lp, |hb, _iv, ti| hb.yield_at(ti, 0));
        hb.return_(&[]);
        let m = hb.finish();
        let lp = UnrollForOp::wrap(&m, m.collect_all_ops()[1]).unwrap();
        assert_eq!(lp.iterations(&m), vec![0, 2, 4, 6]);
    }
}
