//! Cycle-accurate interpreter for HIR designs.
//!
//! The interpreter executes a top-level `hir.func` the way the generated
//! hardware would: loop iterations are launched by `hir.yield` at their
//! scheduled cycles (so pipelined loops genuinely overlap), memory writes
//! become visible at the end of their cycle, and the undefined behaviours of
//! paper §4.5 (out-of-bounds access, reads of uninitialized memory, port
//! conflicts) are detected and reported as [`SimError`]s — playing the role
//! of the assertions the code generator emits into Verilog.
//!
//! Functional results from this interpreter are cross-checked in the test
//! suite against both software references and the Verilog simulator running
//! the generated RTL.

use crate::dialect::opname;
use crate::ops::{
    self, AllocOp, CallOp, ComputeKind, ConstantOp, DelayOp, ForOp, FuncOp, IfOp, MemReadOp,
    MemWriteOp, UnrollForOp, YieldOp,
};
use crate::types::MemrefInfo;
use ir::{Module, OpId, SymbolTable, ValueId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::rc::Rc;

/// A runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    /// Integer (sign-extended to i128 from its type's width).
    Int(i128),
    /// Float.
    Float(f64),
    /// A time instant (absolute cycle).
    Time(u64),
}

impl Val {
    /// Integer payload.
    ///
    /// # Panics
    /// Panics if the value is not an integer.
    pub fn as_int(&self) -> i128 {
        match self {
            Val::Int(v) => *v,
            other => panic!("expected integer value, got {other:?}"),
        }
    }

    /// Time payload.
    ///
    /// # Panics
    /// Panics if the value is not a time instant.
    pub fn as_time(&self) -> u64 {
        match self {
            Val::Time(t) => *t,
            other => panic!("expected time value, got {other:?}"),
        }
    }
}

/// Simulation failure: a detected undefined behaviour or an engine limit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimError {
    pub cycle: u64,
    pub message: String,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.message)
    }
}

impl std::error::Error for SimError {}

type SimResult<T> = Result<T, SimError>;

/// An argument passed to the simulated top-level function.
#[derive(Clone, Debug)]
pub enum ArgValue {
    /// Scalar integer argument.
    Int(i128),
    /// A fresh tensor backing a memref argument; `None` = uninitialized.
    Tensor(Vec<Option<i128>>),
    /// Alias the tensor of an earlier argument (another port onto it).
    SharedWith(usize),
}

impl ArgValue {
    /// An initialized tensor from plain data.
    pub fn tensor_from(data: &[i128]) -> Self {
        ArgValue::Tensor(data.iter().map(|&v| Some(v)).collect())
    }

    /// An uninitialized tensor of the given size.
    pub fn uninit_tensor(len: usize) -> Self {
        ArgValue::Tensor(vec![None; len])
    }
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Cycle of the last activity (the design's latency).
    pub cycles: u64,
    /// Values returned by the function's `hir.return`.
    pub results: Vec<i128>,
    /// Final contents of each tensor-backed argument, by argument index.
    pub tensors: HashMap<usize, Vec<Option<i128>>>,
    /// Total number of scheduled-op executions (activity measure).
    pub ops_executed: u64,
}

/// Behavioural function type of an [`ExternalModel`].
pub type ExternalFn = dyn Fn(&[Val]) -> Vec<Val>;

/// Model of an external (blackbox Verilog) function.
pub struct ExternalModel {
    /// Combinational function from arguments to results; timing is taken
    /// from the declaration's `result_delays`.
    pub eval: Rc<ExternalFn>,
}

impl ExternalModel {
    pub fn new(eval: impl Fn(&[Val]) -> Vec<Val> + 'static) -> Self {
        ExternalModel {
            eval: Rc::new(eval),
        }
    }
}

impl fmt::Debug for ExternalModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExternalModel(..)")
    }
}

/// Interpreter options.
#[derive(Clone, Debug)]
pub struct InterpOptions {
    /// Abort if simulation exceeds this many cycles (hang protection).
    pub max_cycles: u64,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            max_cycles: 10_000_000,
        }
    }
}

/// The interpreter. Holds the module, external models and options.
pub struct Interpreter<'m> {
    module: &'m Module,
    symbols: SymbolTable,
    externals: HashMap<String, ExternalModel>,
    options: InterpOptions,
}

impl<'m> Interpreter<'m> {
    pub fn new(module: &'m Module) -> Self {
        Interpreter {
            module,
            symbols: SymbolTable::build(module),
            externals: HashMap::new(),
            options: InterpOptions::default(),
        }
    }

    /// Register a behavioural model for an external function.
    pub fn with_external(mut self, name: impl Into<String>, model: ExternalModel) -> Self {
        self.externals.insert(name.into(), model);
        self
    }

    /// Override engine options.
    pub fn with_options(mut self, options: InterpOptions) -> Self {
        self.options = options;
        self
    }

    /// Simulate calling `func_name` at cycle 0 with the given arguments.
    ///
    /// # Errors
    /// Returns a [`SimError`] on detected undefined behaviour (§4.5) or when
    /// `max_cycles` is exceeded.
    pub fn run(&self, func_name: &str, args: &[ArgValue]) -> SimResult<SimReport> {
        let func_op = self.symbols.lookup(func_name).ok_or_else(|| SimError {
            cycle: 0,
            message: format!("no function named '@{func_name}'"),
        })?;
        let func = FuncOp::wrap(self.module, func_op).ok_or_else(|| SimError {
            cycle: 0,
            message: format!("'@{func_name}' is not a hir.func"),
        })?;
        let mut engine = Engine::new(self);
        engine.start(func, args)?;
        engine.run_to_completion()?;
        engine.report(func, args)
    }
}

// ------------------------------------------------------------------- engine

type FrameId = usize;
type TensorId = usize;
type PortId = usize;

#[derive(Clone, Debug)]
enum Slot {
    Val(Val),
    Mem {
        tensor: TensorId,
        port: PortId,
    },
    /// Value bound in another frame (call results aliasing return operands).
    Alias {
        frame: FrameId,
        value: ValueId,
    },
}

#[derive(Debug, Default)]
struct Frame {
    bindings: HashMap<ValueId, Slot>,
    parent: Option<FrameId>,
}

#[derive(Debug)]
struct Tensor {
    data: Vec<Option<i128>>,
    info: MemrefInfo,
}

#[derive(Clone, Debug)]
enum Event {
    /// Try to start iteration `iv` of a loop whose body runs in a child of
    /// `frame`.
    StartIter { op: OpId, frame: FrameId, iv: i128 },
    /// Execute a scheduled op in `frame`.
    Exec { op: OpId, frame: FrameId },
}

struct PendingWrite {
    tensor: TensorId,
    flat: u64,
    value: i128,
}

struct Engine<'m, 'i> {
    interp: &'i Interpreter<'m>,
    frames: Vec<Frame>,
    tensors: Vec<Tensor>,
    next_port: PortId,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    events: Vec<Event>,
    seq: u64,
    now: u64,
    pending_writes: Vec<PendingWrite>,
    /// (port, bank) -> address accessed this cycle.
    port_usage: HashMap<(PortId, u64), u64>,
    /// Ops waiting on a time value to be bound: (frame, value) -> events.
    waiters: HashMap<(FrameId, ValueId), Vec<Event>>,
    /// Loop instances currently executing, per (loop op, function-instance
    /// frame): re-entering an active instance is undefined behaviour
    /// (§4.5). Keying on the call's root frame lets concurrent calls to
    /// the same function (task parallelism) each run their own instance.
    active_loops: HashMap<(OpId, FrameId), bool>,
    /// Frame of the top-level call, to read back results.
    top_frame: FrameId,
    ops_executed: u64,
    last_activity: u64,
}

impl<'m, 'i> Engine<'m, 'i> {
    fn new(interp: &'i Interpreter<'m>) -> Self {
        Engine {
            interp,
            frames: Vec::new(),
            tensors: Vec::new(),
            next_port: 0,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            seq: 0,
            now: 0,
            pending_writes: Vec::new(),
            port_usage: HashMap::new(),
            waiters: HashMap::new(),
            active_loops: HashMap::new(),
            top_frame: 0,
            ops_executed: 0,
            last_activity: 0,
        }
    }

    fn m(&self) -> &'m Module {
        self.interp.module
    }

    fn err(&self, message: impl Into<String>) -> SimError {
        SimError {
            cycle: self.now,
            message: message.into(),
        }
    }

    fn new_frame(&mut self, parent: Option<FrameId>) -> FrameId {
        self.frames.push(Frame {
            bindings: HashMap::new(),
            parent,
        });
        self.frames.len() - 1
    }

    fn bind(&mut self, frame: FrameId, value: ValueId, slot: Slot) {
        self.frames[frame].bindings.insert(value, slot);
        // Release any ops waiting on this time value.
        if let Some(waiting) = self.waiters.remove(&(frame, value)) {
            for ev in waiting {
                self.requeue_waiter(ev);
            }
        }
    }

    fn requeue_waiter(&mut self, ev: Event) {
        // Re-dispatch through scheduling so the (now known) time resolves.
        match ev {
            Event::Exec { op, frame } => {
                // Scheduling logic recomputes the cycle.
                self.schedule_op(op, frame);
            }
            Event::StartIter { .. } => unreachable!("iterations never wait on time values"),
        }
    }

    fn push_event(&mut self, cycle: u64, ev: Event) {
        let idx = self.events.len();
        self.events.push(ev);
        self.queue.push(Reverse((cycle, self.seq, idx)));
        self.seq += 1;
    }

    // ------------------------------------------------------------ start/run

    fn start(&mut self, func: FuncOp, args: &[ArgValue]) -> SimResult<()> {
        let m = self.m();
        let frame = self.new_frame(None);
        self.top_frame = frame;
        let formal_args = func.args(m);
        if formal_args.len() != args.len() {
            return Err(self.err(format!(
                "function takes {} arguments, got {}",
                formal_args.len(),
                args.len()
            )));
        }
        let mut arg_tensors: Vec<Option<TensorId>> = Vec::new();
        for (i, (formal, actual)) in formal_args.iter().zip(args).enumerate() {
            let ty = m.value_type(*formal);
            match (MemrefInfo::from_type(&ty), actual) {
                (Some(info), ArgValue::Tensor(data)) => {
                    if data.len() as u64 != info.num_elements() {
                        return Err(self.err(format!(
                            "argument {i}: tensor has {} elements, memref expects {}",
                            data.len(),
                            info.num_elements()
                        )));
                    }
                    let tensor = self.tensors.len();
                    self.tensors.push(Tensor {
                        data: data.clone(),
                        info,
                    });
                    arg_tensors.push(Some(tensor));
                    let port = self.next_port;
                    self.next_port += 1;
                    self.bind(frame, *formal, Slot::Mem { tensor, port });
                }
                (Some(_), ArgValue::SharedWith(j)) => {
                    let tensor = arg_tensors.get(*j).copied().flatten().ok_or_else(|| {
                        self.err(format!("argument {i}: SharedWith({j}) is not a tensor"))
                    })?;
                    arg_tensors.push(Some(tensor));
                    let port = self.next_port;
                    self.next_port += 1;
                    self.bind(frame, *formal, Slot::Mem { tensor, port });
                }
                (None, ArgValue::Int(v)) => {
                    arg_tensors.push(None);
                    self.bind(frame, *formal, Slot::Val(Val::Int(*v)));
                }
                _ => {
                    return Err(self.err(format!(
                        "argument {i}: kind mismatch between {ty} and {actual:?}"
                    )))
                }
            }
        }
        self.bind(frame, func.time_var(m), Slot::Val(Val::Time(0)));
        self.enter_block(func.body(m), frame)?;
        Ok(())
    }

    fn run_to_completion(&mut self) -> SimResult<()> {
        while let Some(&Reverse((cycle, _, _))) = self.queue.peek() {
            if cycle > self.now {
                self.advance_to(cycle)?;
            }
            let Reverse((_, _, idx)) = self.queue.pop().unwrap();
            let ev = self.events[idx].clone();
            self.dispatch(ev)?;
        }
        // Apply writes of the final cycle.
        self.apply_pending_writes();
        if !self.waiters.is_empty() {
            return Err(self.err(format!(
                "{} scheduled op(s) never executed: their time variables were never bound \
                 (dead schedule)",
                self.waiters.values().map(Vec::len).sum::<usize>()
            )));
        }
        Ok(())
    }

    fn advance_to(&mut self, cycle: u64) -> SimResult<()> {
        self.apply_pending_writes();
        self.port_usage.clear();
        self.now = cycle;
        if cycle > self.interp.options.max_cycles {
            return Err(self.err(format!(
                "simulation exceeded {} cycles (design may not terminate)",
                self.interp.options.max_cycles
            )));
        }
        Ok(())
    }

    fn apply_pending_writes(&mut self) {
        for w in self.pending_writes.drain(..) {
            self.tensors[w.tensor].data[w.flat as usize] = Some(w.value);
        }
    }

    fn report(&mut self, func: FuncOp, args: &[ArgValue]) -> SimResult<SimReport> {
        let m = self.m();
        let ret = func
            .return_op(m)
            .ok_or_else(|| self.err("function has no return"))?;
        let mut results = Vec::new();
        for &v in m.op(ret).operands() {
            results.push(self.eval(self.top_frame, v)?.as_int());
        }
        let mut tensors = HashMap::new();
        for (i, (formal, actual)) in func.args(m).iter().zip(args).enumerate() {
            if matches!(actual, ArgValue::Tensor(_)) {
                if let Some(Slot::Mem { tensor, .. }) =
                    self.frames[self.top_frame].bindings.get(formal)
                {
                    tensors.insert(i, self.tensors[*tensor].data.clone());
                }
            }
        }
        Ok(SimReport {
            cycles: self.last_activity,
            results,
            tensors,
            ops_executed: self.ops_executed,
        })
    }

    // ----------------------------------------------------------- scheduling

    /// Schedule every schedulable op of a block into `frame`. Allocs are
    /// materialized immediately so every port is bound in the right scope.
    fn enter_block(&mut self, block: ir::BlockId, frame: FrameId) -> SimResult<()> {
        for &op in self.m().block(block).ops() {
            if let Some(alloc) = AllocOp::wrap(self.m(), op) {
                self.materialize_alloc(alloc, frame);
                continue;
            }
            self.schedule_op(op, frame);
        }
        Ok(())
    }

    fn materialize_alloc(&mut self, alloc: AllocOp, frame: FrameId) {
        let m = self.m();
        let info = alloc.info(m);
        let tensor = self.tensors.len();
        self.tensors.push(Tensor {
            data: vec![None; info.num_elements() as usize],
            info,
        });
        for port_val in alloc.ports(m) {
            let port = self.next_port;
            self.next_port += 1;
            self.bind(frame, port_val, Slot::Mem { tensor, port });
        }
    }

    /// Compute the absolute cycle of a scheduled op and queue it; ops whose
    /// time operand is not yet bound are parked in the waiter table.
    fn schedule_op(&mut self, op: OpId, frame: FrameId) {
        let m = self.m();
        let name = m.op(op).name().as_str();
        match name {
            opname::CONSTANT | opname::RETURN => return, // unscheduled
            _ => {}
        }
        let Some(time) = ops::time_operand(m, op) else {
            return; // combinational op: evaluated lazily
        };
        let offset = ops::time_offset(m, op);
        match self.resolve_time(frame, time) {
            Some(base) => {
                let cycle = base + offset as u64;
                self.push_event(cycle, Event::Exec { op, frame });
            }
            None => {
                // Park until the time value is bound in its owning frame.
                let owner = self.owning_frame(frame, time);
                self.waiters
                    .entry((owner, time))
                    .or_default()
                    .push(Event::Exec { op, frame });
            }
        }
    }

    /// The frame in whose scope `value` will be bound (walks parents).
    fn owning_frame(&self, frame: FrameId, value: ValueId) -> FrameId {
        // A value is bound in the innermost frame that already contains it,
        // or — for not-yet-bound loop results — in the frame where the loop
        // op itself was scheduled. Since loop results are bound into the
        // *same* frame that scheduled the waiting op's sibling loop op, the
        // current frame chain's innermost frame that will receive it is
        // `frame` itself unless a parent already binds it.
        let mut cur = Some(frame);
        while let Some(f) = cur {
            if self.frames[f].bindings.contains_key(&value) {
                return f;
            }
            cur = self.frames[f].parent;
        }
        frame
    }

    /// The function-instance (root) frame enclosing `frame`.
    fn root_frame(&self, frame: FrameId) -> FrameId {
        let mut cur = frame;
        while let Some(p) = self.frames[cur].parent {
            cur = p;
        }
        cur
    }

    fn resolve_time(&self, frame: FrameId, time: ValueId) -> Option<u64> {
        let mut cur = Some(frame);
        while let Some(f) = cur {
            if let Some(slot) = self.frames[f].bindings.get(&time) {
                return match slot {
                    Slot::Val(Val::Time(t)) => Some(*t),
                    Slot::Alias { frame, value } => self.resolve_time(*frame, *value),
                    _ => None,
                };
            }
            cur = self.frames[f].parent;
        }
        None
    }

    // ------------------------------------------------------------- dispatch

    fn dispatch(&mut self, ev: Event) -> SimResult<()> {
        self.last_activity = self.last_activity.max(self.now);
        match ev {
            Event::StartIter { op, frame, iv } => self.start_iteration(op, frame, iv),
            Event::Exec { op, frame } => self.exec(op, frame),
        }
    }

    fn exec(&mut self, op: OpId, frame: FrameId) -> SimResult<()> {
        self.ops_executed += 1;
        let m = self.m();
        match m.op(op).name().as_str() {
            opname::FOR => {
                let lp = ForOp(op);
                let lb = self.eval(frame, lp.lower_bound(m))?.as_int();
                let ub = self.eval(frame, lp.upper_bound(m))?.as_int();
                if lb > ub {
                    return Err(self.err(format!(
                        "undefined behaviour: loop lower bound {lb} exceeds upper bound {ub}"
                    )));
                }
                // §4.5: a new instance must not start while one is active.
                let root = self.root_frame(frame);
                if self.active_loops.insert((op, root), true).is_some() {
                    return Err(self.err(
                        "undefined behaviour: loop instance re-entered before the previous                          instance completed"
                            .to_string(),
                    ));
                }
                self.start_iteration(op, frame, lb)
            }
            opname::UNROLL_FOR => {
                let lp = UnrollForOp(op);
                self.start_iteration(op, frame, lp.lb(m) as i128)
            }
            opname::YIELD => self.exec_yield(op, frame),
            opname::MEM_READ => self.exec_mem_read(op, frame),
            opname::MEM_WRITE => self.exec_mem_write(op, frame),
            opname::CALL => self.exec_call(op, frame),
            opname::IF => self.exec_if(op, frame),
            opname::DELAY => {
                // Functionally the identity; eagerly evaluate so downstream
                // mem ops see it even across if-branch frames.
                let d = DelayOp(op);
                let v = self.eval(frame, d.input(m))?;
                self.bind(frame, d.result(m), Slot::Val(v));
                Ok(())
            }
            opname::ALLOC => unreachable!("alloc is handled at block entry"),
            other => Err(self.err(format!("cannot execute op '{other}'"))),
        }
    }

    fn loop_parts(&self, op: OpId) -> (ValueId, ValueId, ValueId, ir::BlockId) {
        let m = self.m();
        if let Some(lp) = ForOp::wrap(m, op) {
            (
                lp.induction_var(m),
                lp.iter_time(m),
                lp.result_time(m),
                lp.body(m),
            )
        } else {
            let lp = UnrollForOp(op);
            (
                lp.induction_var(m),
                lp.iter_time(m),
                lp.result_time(m),
                lp.body(m),
            )
        }
    }

    fn start_iteration(&mut self, op: OpId, frame: FrameId, iv: i128) -> SimResult<()> {
        let m = self.m();
        let (iv_val, iter_time, result_time, body) = self.loop_parts(op);
        let ub = if let Some(lp) = ForOp::wrap(m, op) {
            self.eval(frame, lp.upper_bound(m))?.as_int()
        } else {
            UnrollForOp(op).ub(m) as i128
        };
        if iv >= ub {
            // Loop complete: bind %tf to the current cycle in the parent.
            let root = self.root_frame(frame);
            self.active_loops.remove(&(op, root));
            self.bind(frame, result_time, Slot::Val(Val::Time(self.now)));
            return Ok(());
        }
        let iter_frame = self.new_frame(Some(frame));
        self.bind(iter_frame, iv_val, Slot::Val(Val::Int(iv)));
        self.bind(iter_frame, iter_time, Slot::Val(Val::Time(self.now)));
        self.enter_block(body, iter_frame)
    }

    fn exec_yield(&mut self, op: OpId, frame: FrameId) -> SimResult<()> {
        let m = self.m();
        let _ = YieldOp(op);
        // The yield's frame is a loop iteration frame; find the loop op.
        let loop_op = m.block_parent_op(m.op(op).parent().expect("yield inside a block"));
        let (iv_val, _, _, _) = self.loop_parts(loop_op);
        let iv = self.eval(frame, iv_val)?.as_int();
        let step = if let Some(lp) = ForOp::wrap(m, loop_op) {
            self.eval(frame, lp.step(m))?.as_int()
        } else {
            UnrollForOp(loop_op).step(m) as i128
        };
        let parent = self.frames[frame]
            .parent
            .expect("iteration frame has a parent");
        // The next iteration starts now (the yield's scheduled time).
        self.push_event(
            self.now,
            Event::StartIter {
                op: loop_op,
                frame: parent,
                iv: iv + step,
            },
        );
        Ok(())
    }

    fn memref_slot(&mut self, frame: FrameId, mem: ValueId) -> SimResult<(TensorId, PortId)> {
        // Walk frames; if unbound, the memref must come from an alloc that
        // has not been materialized yet (allocs materialize on first touch).
        let mut cur = Some(frame);
        while let Some(f) = cur {
            if let Some(slot) = self.frames[f].bindings.get(&mem) {
                return match slot {
                    Slot::Mem { tensor, port } => Ok((*tensor, *port)),
                    Slot::Alias { frame, value } => {
                        let (frame, value) = (*frame, *value);
                        self.memref_slot(frame, value)
                    }
                    other => Err(self.err(format!("value bound to non-memref slot {other:?}"))),
                };
            }
            cur = self.frames[f].parent;
        }
        Err(self.err("memref value has no binding (alloc outside the executed scope?)"))
    }

    fn eval_indices(
        &mut self,
        frame: FrameId,
        indices: &[ValueId],
        info: &MemrefInfo,
    ) -> SimResult<Vec<u64>> {
        let mut out = Vec::with_capacity(indices.len());
        for (dim, &idx) in info.dims.iter().zip(indices) {
            let mut v = self.eval(frame, idx)?.as_int();
            // Addresses are unsigned: reinterpret the value's bit pattern
            // under its type width (hardware address buses carry raw bits).
            if v < 0 {
                if let Some(w) = self.m().value_type(idx).int_width() {
                    if w < 128 {
                        v &= (1i128 << w) - 1;
                    }
                }
            }
            if v < 0 || v as u64 >= dim.size() {
                return Err(self.err(format!(
                    "undefined behaviour: index {v} out of bounds for dimension of size {}",
                    dim.size()
                )));
            }
            out.push(v as u64);
        }
        Ok(out)
    }

    fn check_port(&mut self, port: PortId, bank: u64, addr: u64) -> SimResult<()> {
        match self.port_usage.get(&(port, bank)) {
            Some(&prev) if prev != addr => Err(self.err(format!(
                "undefined behaviour: port conflict — two accesses at addresses {prev} and \
                 {addr} on the same memory port in the same cycle"
            ))),
            _ => {
                self.port_usage.insert((port, bank), addr);
                Ok(())
            }
        }
    }

    fn exec_mem_read(&mut self, op: OpId, frame: FrameId) -> SimResult<()> {
        let m = self.m();
        let rd = MemReadOp(op);
        let (tensor, port) = self.memref_slot(frame, rd.memref(m))?;
        let info = self.tensors[tensor].info.clone();
        let index = self.eval_indices(frame, &rd.indices(m), &info)?;
        let bank = info.bank_index(&index);
        let addr = info.linear_index(&index);
        self.check_port(port, bank, addr)?;
        let flat = info.flat_index(&index);
        let value = self.tensors[tensor].data[flat as usize].ok_or_else(|| {
            self.err(format!(
                "undefined behaviour: read of uninitialized memory at index {index:?}"
            ))
        })?;
        self.bind(frame, rd.result(m), Slot::Val(Val::Int(value)));
        Ok(())
    }

    fn exec_mem_write(&mut self, op: OpId, frame: FrameId) -> SimResult<()> {
        let m = self.m();
        let wr = MemWriteOp(op);
        let (tensor, port) = self.memref_slot(frame, wr.memref(m))?;
        let info = self.tensors[tensor].info.clone();
        let index = self.eval_indices(frame, &wr.indices(m), &info)?;
        let bank = info.bank_index(&index);
        let addr = info.linear_index(&index);
        self.check_port(port, bank, addr)?;
        let flat = info.flat_index(&index);
        let value = self.eval(frame, wr.value(m))?.as_int();
        self.pending_writes.push(PendingWrite {
            tensor,
            flat,
            value,
        });
        Ok(())
    }

    fn exec_call(&mut self, op: OpId, frame: FrameId) -> SimResult<()> {
        let m = self.m();
        let call = CallOp(op);
        let callee_name = call.callee(m);
        let callee_op = self
            .interp
            .symbols
            .lookup(&callee_name)
            .ok_or_else(|| self.err(format!("call to unknown function '@{callee_name}'")))?;
        let callee = FuncOp::wrap(m, callee_op)
            .ok_or_else(|| self.err(format!("'@{callee_name}' is not a function")))?;

        if callee.is_external(m) {
            let model = self.interp.externals.get(&callee_name).ok_or_else(|| {
                self.err(format!(
                    "no behavioural model registered for external '@{callee_name}'"
                ))
            })?;
            let mut args = Vec::new();
            for a in call.args(m) {
                args.push(self.eval(frame, a)?);
            }
            let results = (model.eval)(&args);
            let call_results = m.op(op).results().to_vec();
            if results.len() != call_results.len() {
                return Err(self.err(format!(
                    "external model for '@{callee_name}' returned {} values, expected {}",
                    results.len(),
                    call_results.len()
                )));
            }
            for (res_val, v) in call_results.into_iter().zip(results) {
                self.bind(frame, res_val, Slot::Val(v));
            }
            return Ok(());
        }

        let callee_frame = self.new_frame(None);
        let formals = callee.args(m);
        let actuals = call.args(m);
        if formals.len() != actuals.len() {
            return Err(self.err(format!(
                "call to '@{callee_name}' passes {} arguments, function takes {}",
                actuals.len(),
                formals.len()
            )));
        }
        for (formal, actual) in formals.iter().zip(&actuals) {
            let ty = m.value_type(*formal);
            if MemrefInfo::from_type(&ty).is_some() {
                let (tensor, port) = self.memref_slot(frame, *actual)?;
                self.bind(callee_frame, *formal, Slot::Mem { tensor, port });
            } else {
                // Bind lazily: scalars are sampled per the callee's schedule.
                self.bind(
                    callee_frame,
                    *formal,
                    Slot::Alias {
                        frame,
                        value: *actual,
                    },
                );
            }
        }
        self.bind(
            callee_frame,
            callee.time_var(m),
            Slot::Val(Val::Time(self.now)),
        );
        self.enter_block(callee.body(m), callee_frame)?;
        // Alias the call's results to the callee's return operands.
        if let Some(ret) = callee.return_op(m) {
            let ret_operands = m.op(ret).operands().to_vec();
            for (res, ret_val) in m.op(op).results().to_vec().into_iter().zip(ret_operands) {
                self.bind(
                    frame,
                    res,
                    Slot::Alias {
                        frame: callee_frame,
                        value: ret_val,
                    },
                );
            }
        }
        Ok(())
    }

    fn exec_if(&mut self, op: OpId, frame: FrameId) -> SimResult<()> {
        let m = self.m();
        let i = IfOp(op);
        let cond = self.eval(frame, i.condition(m))?.as_int() != 0;
        let block = if cond {
            Some(i.then_block(m))
        } else {
            i.else_block(m)
        };
        if let Some(b) = block {
            let child = self.new_frame(Some(frame));
            self.enter_block(b, child)?;
        }
        Ok(())
    }

    // ----------------------------------------------------------- evaluation

    fn eval(&mut self, frame: FrameId, value: ValueId) -> SimResult<Val> {
        // Bound already?
        let mut cur = Some(frame);
        while let Some(f) = cur {
            if let Some(slot) = self.frames[f].bindings.get(&value) {
                return match slot {
                    Slot::Val(v) => Ok(v.clone()),
                    Slot::Alias { frame, value } => {
                        let (frame, value) = (*frame, *value);
                        self.eval(frame, value)
                    }
                    Slot::Mem { .. } => {
                        Err(self.err("memref used where a data value was expected"))
                    }
                };
            }
            cur = self.frames[f].parent;
        }
        // Otherwise compute from the defining op.
        let m = self.m();
        let def = m.defining_op(value).ok_or_else(|| {
            self.err("block argument has no binding (value used outside its scope?)")
        })?;
        if let Some(c) = ConstantOp::wrap(m, def) {
            let attr = c.value_attr(m);
            let v = match attr {
                ir::Attribute::Int(v, _) => Val::Int(v),
                ir::Attribute::Float(v, _) => Val::Float(v),
                other => return Err(self.err(format!("bad constant payload {other}"))),
            };
            self.bind(frame, value, Slot::Val(v.clone()));
            return Ok(v);
        }
        if let Some(d) = DelayOp::wrap(m, def) {
            let v = self.eval(frame, d.input(m))?;
            self.bind(frame, value, Slot::Val(v.clone()));
            return Ok(v);
        }
        let Some(kind) = ops::compute_kind(m, def) else {
            return Err(self.err(format!(
                "value of '{}' requested before its scheduled execution",
                m.op(def).name()
            )));
        };
        let operands = m.op(def).operands().to_vec();
        let mut vals = Vec::with_capacity(operands.len());
        for o in &operands {
            vals.push(self.eval(frame, *o)?);
        }
        let result_ty = m.value_type(value);
        let v =
            eval_compute(kind, &vals, &result_ty, m, def).map_err(|message| self.err(message))?;
        self.bind(frame, value, Slot::Val(v.clone()));
        Ok(v)
    }
}

/// Sign-extend `v` interpreted as a `width`-bit two's-complement value.
fn wrap_to_width(v: i128, width: u32) -> i128 {
    if width >= 128 {
        return v;
    }
    let mask = (1i128 << width) - 1;
    let truncated = v & mask;
    let sign = 1i128 << (width - 1);
    if truncated & sign != 0 {
        truncated - (1i128 << width)
    } else {
        truncated
    }
}

fn eval_compute(
    kind: ComputeKind,
    vals: &[Val],
    result_ty: &ir::Type,
    m: &Module,
    op: OpId,
) -> Result<Val, String> {
    use crate::dialect::attrkey;
    // Float path.
    if result_ty.is_float() || vals.iter().any(|v| matches!(v, Val::Float(_))) {
        let f = |v: &Val| match v {
            Val::Float(x) => *x,
            Val::Int(x) => *x as f64,
            Val::Time(_) => f64::NAN,
        };
        return Ok(match kind {
            ComputeKind::Add => Val::Float(f(&vals[0]) + f(&vals[1])),
            ComputeKind::Sub => Val::Float(f(&vals[0]) - f(&vals[1])),
            ComputeKind::Mult => Val::Float(f(&vals[0]) * f(&vals[1])),
            ComputeKind::Select => {
                if vals[0].as_int() != 0 {
                    vals[1].clone()
                } else {
                    vals[2].clone()
                }
            }
            other => return Err(format!("unsupported float op {other:?}")),
        });
    }
    let a = vals[0].as_int();
    let raw = match kind {
        ComputeKind::Add => a + vals[1].as_int(),
        ComputeKind::Sub => a - vals[1].as_int(),
        ComputeKind::Mult => a * vals[1].as_int(),
        ComputeKind::And => a & vals[1].as_int(),
        ComputeKind::Or => a | vals[1].as_int(),
        ComputeKind::Xor => a ^ vals[1].as_int(),
        ComputeKind::Not => !a,
        ComputeKind::Shl => a << vals[1].as_int().clamp(0, 127),
        ComputeKind::Shr => a >> vals[1].as_int().clamp(0, 127),
        ComputeKind::Cmp(pred) => i128::from(pred.eval(a, vals[1].as_int())),
        ComputeKind::Select => {
            if a != 0 {
                vals[1].as_int()
            } else {
                vals[2].as_int()
            }
        }
        ComputeKind::Trunc | ComputeKind::Sext => a,
        ComputeKind::Zext => {
            // Zero-extension reinterprets the source bits as unsigned.
            let in_w = m
                .value_type(m.op(op).operands()[0])
                .int_width()
                .ok_or("zext of non-integer")?;
            if in_w >= 128 {
                a
            } else {
                a & ((1i128 << in_w) - 1)
            }
        }
        ComputeKind::Slice => {
            let hi = m
                .op(op)
                .attr(attrkey::HI)
                .and_then(|x| x.as_int())
                .ok_or("missing hi")?;
            let lo = m
                .op(op)
                .attr(attrkey::LO)
                .and_then(|x| x.as_int())
                .ok_or("missing lo")?;
            // Bit slices are raw (zero-extended) bits, never sign-extended.
            return Ok(Val::Int(
                ((a as u128 >> lo) as i128) & ((1i128 << (hi - lo + 1)) - 1),
            ));
        }
    };
    Ok(match result_ty.int_width() {
        Some(w) => Val::Int(wrap_to_width(raw, w)),
        None => Val::Int(raw), // !hir.const arithmetic is unbounded
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HirBuilder;
    use crate::types::{MemKind, MemrefInfo, Port};
    use ir::Type;

    #[test]
    fn wrap_widths() {
        assert_eq!(wrap_to_width(255, 8), -1);
        assert_eq!(wrap_to_width(127, 8), 127);
        assert_eq!(wrap_to_width(128, 8), -128);
        assert_eq!(wrap_to_width(256, 8), 0);
        assert_eq!(wrap_to_width(5, 32), 5);
    }

    /// Array add (paper Figure 1a, with a *correct* schedule): C[i] = A[i]+B[i].
    fn array_add_module(ii: i64) -> Module {
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[128], Type::int(32), Port::Read, MemKind::BlockRam);
        let b = a.clone();
        let c = a.with_port(Port::Write);
        let f = hb.func(
            "array_add",
            &[("A", a.to_type()), ("B", b.to_type()), ("C", c.to_type())],
            &[],
        );
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c128, c1) = (hb.const_val(0), hb.const_val(128), hb.const_val(1));
        let lp = hb.for_loop(c0, c128, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            let va = hb.mem_read(args[0], &[i], ti, 0);
            let vb = hb.mem_read(args[1], &[i], ti, 0);
            let sum = hb.add(va, vb);
            // Correct schedule: delay the address so it matches the data.
            let i1 = hb.delay(i, 1, ti, 0);
            hb.mem_write(sum, args[2], &[i1], ti, 1);
            hb.yield_at(ti, ii);
        });
        hb.return_(&[]);
        hb.finish()
    }

    #[test]
    fn array_add_computes_and_pipelines() {
        let m = array_add_module(1);
        let interp = Interpreter::new(&m);
        let a: Vec<i128> = (0..128).collect();
        let b: Vec<i128> = (0..128).map(|x| 1000 - x).collect();
        let report = interp
            .run(
                "array_add",
                &[
                    ArgValue::tensor_from(&a),
                    ArgValue::tensor_from(&b),
                    ArgValue::uninit_tensor(128),
                ],
            )
            .expect("simulation");
        let c = &report.tensors[&2];
        for i in 0..128 {
            assert_eq!(c[i], Some(1000), "C[{i}]");
        }
        // II=1 pipelined: ~128 iterations + small constant.
        assert!(
            report.cycles <= 128 + 5,
            "latency {} too high",
            report.cycles
        );

        // II=2 takes roughly twice as long.
        let m2 = array_add_module(2);
        let interp2 = Interpreter::new(&m2);
        let report2 = interp2
            .run(
                "array_add",
                &[
                    ArgValue::tensor_from(&a),
                    ArgValue::tensor_from(&b),
                    ArgValue::uninit_tensor(128),
                ],
            )
            .expect("simulation");
        assert!(
            report2.cycles >= 2 * 128 - 2,
            "II=2 latency {}",
            report2.cycles
        );
    }

    #[test]
    fn uninitialized_read_is_detected() {
        let m = array_add_module(1);
        let interp = Interpreter::new(&m);
        let err = interp
            .run(
                "array_add",
                &[
                    ArgValue::uninit_tensor(128),
                    ArgValue::uninit_tensor(128),
                    ArgValue::uninit_tensor(128),
                ],
            )
            .unwrap_err();
        assert!(err.message.contains("uninitialized"), "{err}");
    }

    #[test]
    fn out_of_bounds_detected() {
        // Loop bound exceeds the memref size.
        let mut hb = HirBuilder::new();
        let a = MemrefInfo::packed(&[4], Type::int(32), Port::Read, MemKind::BlockRam);
        let f = hb.func("oob", &[("A", a.to_type())], &[]);
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let (c0, c8, c1) = (hb.const_val(0), hb.const_val(8), hb.const_val(1));
        let lp = hb.for_loop(c0, c8, c1, t, 1, Type::int(8));
        hb.in_loop(lp, |hb, i, ti| {
            hb.mem_read(args[0], &[i], ti, 0);
            hb.yield_at(ti, 1);
        });
        hb.return_(&[]);
        let m = hb.finish();
        let interp = Interpreter::new(&m);
        let err = interp
            .run("oob", &[ArgValue::tensor_from(&[1, 2, 3, 4])])
            .unwrap_err();
        assert!(err.message.contains("out of bounds"), "{err}");
    }

    #[test]
    fn external_call_model() {
        let mut hb = HirBuilder::new();
        hb.extern_func(
            "mult2",
            &[Type::int(32), Type::int(32)],
            &[Type::int(32)],
            &[2],
        );
        let f = hb.func(
            "mac",
            &[
                ("a", Type::int(32)),
                ("b", Type::int(32)),
                ("c", Type::int(32)),
            ],
            &[3],
        );
        let t = f.time_var(hb.module());
        let args = f.args(hb.module());
        let prod = hb.call("mult2", &[args[0], args[1]], t, 0);
        let c2 = hb.delay(args[2], 2, t, 0);
        let sum = hb.add(prod[0], c2);
        hb.return_(&[sum]);
        let m = hb.finish();
        let interp = Interpreter::new(&m).with_external(
            "mult2",
            ExternalModel::new(|args| vec![Val::Int(args[0].as_int() * args[1].as_int())]),
        );
        let report = interp
            .run(
                "mac",
                &[ArgValue::Int(6), ArgValue::Int(7), ArgValue::Int(100)],
            )
            .expect("simulation");
        assert_eq!(report.results, vec![142]);
    }

    #[test]
    fn banked_memref_parallel_access_allowed() {
        use crate::types::Dim;
        // Two writes in the same cycle to different banks must be legal.
        let mut hb = HirBuilder::new();
        let f = hb.func("banked", &[], &[0]);
        let t = f.time_var(hb.module());
        let ports = hb.alloc(
            &[Dim::Distributed(2), Dim::Packed(4)],
            Type::int(32),
            MemKind::LutRam,
            &[Port::Read, Port::Write],
        );
        let (c0, c1) = (hb.const_val(0), hb.const_val(1));
        let v = hb.typed_const(42, Type::int(32));
        hb.mem_write(v, ports[1], &[c0, c0], t, 0);
        hb.mem_write(v, ports[1], &[c1, c0], t, 0); // different bank, same cycle
        let rd = hb.mem_read(ports[0], &[c1, c0], t, 2);
        hb.return_(&[rd]);
        let m = hb.finish();
        let report = Interpreter::new(&m).run("banked", &[]).expect("simulation");
        assert_eq!(report.results, vec![42]);
    }

    #[test]
    fn port_conflict_detected() {
        let mut hb = HirBuilder::new();
        let f = hb.func("conflict", &[], &[]);
        let t = f.time_var(hb.module());
        let (r, w) = hb.alloc_rw(&[8], Type::int(32), MemKind::BlockRam);
        let _ = r;
        let (c0, c1) = (hb.const_val(0), hb.const_val(1));
        let v = hb.typed_const(1, Type::int(32));
        hb.mem_write(v, w, &[c0], t, 0);
        hb.mem_write(v, w, &[c1], t, 0); // same port, same cycle, different addr
        hb.return_(&[]);
        let m = hb.finish();
        let err = Interpreter::new(&m).run("conflict", &[]).unwrap_err();
        assert!(err.message.contains("port conflict"), "{err}");
    }

    #[test]
    fn nested_sequential_loops_iterate_fully() {
        // Sum of i*j over 4x4 via accumulator in a register memref.
        let mut hb = HirBuilder::new();
        let f = hb.func("nested", &[], &[0]);
        let t = f.time_var(hb.module());
        let (acc_r, acc_w) = hb.alloc_rw(&[1], Type::int(32), MemKind::Reg);
        let (c0, c4, c1) = (hb.const_val(0), hb.const_val(4), hb.const_val(1));
        let zero = hb.typed_const(0, Type::int(32));
        hb.mem_write(zero, acc_w, &[c0], t, 0);
        let outer = hb.for_loop(c0, c4, c1, t, 1, Type::int(8));
        hb.in_loop(outer, |hb, i, ti| {
            let inner = hb.for_loop(c0, c4, c1, ti, 1, Type::int(8));
            hb.in_loop(inner, |hb, j, tj| {
                let prod = hb.mult(i, j);
                let prod32 = hb.sext(prod, Type::int(32));
                let cur = hb.mem_read(acc_r, &[c0], tj, 0);
                let next = hb.add(cur, prod32);
                hb.mem_write(next, acc_w, &[c0], tj, 0);
                hb.yield_at(tj, 1); // reg read latency 0: II=1 accumulate
            });
            let tf = inner.result_time(hb.module());
            hb.yield_at(tf, 1);
        });
        let t_outer_done = outer.result_time(hb.module());
        let result = hb.mem_read(acc_r, &[c0], t_outer_done, 1);
        hb.return_(&[result]);
        let m = hb.finish();
        let report = Interpreter::new(&m).run("nested", &[]).expect("simulation");
        let expect: i128 = (0..4).flat_map(|i| (0..4).map(move |j| i * j)).sum();
        assert_eq!(report.results, vec![expect]);
    }

    #[test]
    fn unroll_for_runs_iterations_in_parallel() {
        use crate::types::Dim;
        let mut hb = HirBuilder::new();
        let f = hb.func("unrolled", &[], &[]);
        let t = f.time_var(hb.module());
        let ports = hb.alloc(
            &[Dim::Distributed(4)],
            Type::int(32),
            MemKind::Reg,
            &[Port::Read, Port::Write],
        );
        let lp = hb.unroll_for(0, 4, 1, t, 0);
        hb.in_unroll(lp, |hb, iv, ti| {
            let v = hb.typed_const(7, Type::int(32));
            let scaled = hb.mult(v, iv);
            hb.mem_write(scaled, ports[1], &[iv], ti, 0);
            hb.yield_at(ti, 0); // all iterations at the same instant
        });
        let done = lp.result_time(hb.module());
        let c2 = hb.const_val(2);
        let rd = hb.mem_read(ports[0], &[c2], done, 1);
        hb.return_(&[rd]);
        let m = hb.finish();
        let report = Interpreter::new(&m)
            .run("unrolled", &[])
            .expect("simulation");
        assert_eq!(report.results, vec![14]);
        // All four writes in cycle 0, read in cycle 1.
        assert!(
            report.cycles <= 2,
            "unrolled loop should finish immediately, took {}",
            report.cycles
        );
    }

    #[test]
    fn if_op_gates_writes() {
        let mut hb = HirBuilder::new();
        let f = hb.func("cond", &[("x", Type::int(32))], &[0]);
        let t = f.time_var(hb.module());
        let x = f.args(hb.module())[0];
        let (r, w) = hb.alloc_rw(&[1], Type::int(32), MemKind::Reg);
        let c0 = hb.const_val(0);
        let ten = hb.typed_const(10, Type::int(32));
        let cond = hb.cmp(crate::dialect::CmpPredicate::Lt, x, ten);
        let small = hb.typed_const(1, Type::int(32));
        let big = hb.typed_const(2, Type::int(32));
        let ifop = hb.if_op(cond, t, 0, true);
        hb.in_then(ifop, |hb| hb.mem_write(small, w, &[c0], t, 0));
        hb.in_else(ifop, |hb| hb.mem_write(big, w, &[c0], t, 0));
        let rd = hb.mem_read(r, &[c0], t, 1);
        hb.return_(&[rd]);
        let m = hb.finish();
        let r1 = Interpreter::new(&m)
            .run("cond", &[ArgValue::Int(5)])
            .unwrap();
        assert_eq!(r1.results, vec![1]);
        let r2 = Interpreter::new(&m)
            .run("cond", &[ArgValue::Int(50)])
            .unwrap();
        assert_eq!(r2.results, vec![2]);
    }

    #[test]
    fn hang_protection() {
        // A loop with a huge bound exceeds a tiny max_cycles budget.
        let m = array_add_module(1);
        let interp = Interpreter::new(&m).with_options(InterpOptions { max_cycles: 10 });
        let a: Vec<i128> = (0..128).collect();
        let err = interp
            .run(
                "array_add",
                &[
                    ArgValue::tensor_from(&a),
                    ArgValue::tensor_from(&a),
                    ArgValue::uninit_tensor(128),
                ],
            )
            .unwrap_err();
        assert!(err.message.contains("exceeded"), "{err}");
    }
}
