//! # `hir` — an explicitly scheduled hardware IR (the paper's contribution)
//!
//! HIR (Majumder & Bondhugula, ASPLOS 2023) is an MLIR dialect for describing
//! FPGA accelerators at a level between HDLs and HLS: the *algorithm* is
//! written with high-level constructs (loops, multidimensional memrefs,
//! function calls) while the *schedule* — the clock cycle at which every
//! operation executes — is explicit, expressed through **time variables** and
//! static offsets. The compiler generates the controllers; the programmer
//! (or DSL frontend) keeps full control of pipelining, initiation intervals
//! and resource binding.
//!
//! This crate provides:
//!
//! * the dialect definition ([`dialect`]) over the [`ir`] infrastructure,
//! * the HIR type system ([`types`]): `!hir.time`, `!hir.const` and banked
//!   `!hir.memref`s,
//! * typed op wrappers ([`ops`]) and an ergonomic construction API
//!   ([`HirBuilder`]),
//! * a paper-style pretty printer ([`pretty`]),
//! * and a **cycle-accurate interpreter** ([`interp`]) that executes designs
//!   with pipelined loop overlap and detects the undefined behaviours of
//!   paper §4.5 at runtime.
//!
//! Schedule *verification* (paper §6.1) lives in the `hir-verify` crate,
//! optimizations (§6.2–6.4) in `hir-opt`, and Verilog code generation (§4.6)
//! in `hir-codegen`.

pub mod builder;
pub mod dialect;
pub mod interp;
pub mod ops;
pub mod parse;
pub mod pretty;
pub mod types;

pub use builder::HirBuilder;
pub use dialect::{attrkey, hir_dialect, hir_registry, opname, CmpPredicate};
pub use interp::{ArgValue, ExternalModel, InterpOptions, Interpreter, SimError, SimReport, Val};
pub use parse::{parse_pretty, parse_pretty_recover, PrettyParseError, RecoveredPretty};
pub use pretty::{pretty_func, pretty_module, pretty_op};
pub use types::{Dim, MemKind, MemrefInfo, Port};
